"""Command-line interface: ``python -m repro <command> …``.

Subcommands:

``analyze``
    Run a pointer analysis over Java-subset source or a Doop-style
    facts directory and print points-to sets, the call graph, and
    statistics.  ``--shards N`` runs the plan-driven parallel executor
    instead and checks exact parity against the sequential engine.

``facts``
    Generate a Doop-style ``.facts`` directory from source.

``emit``
    Instantiate the deduction rules for a configuration and write the
    resulting plain-Datalog program (the Section 7 front-end).

``lint``
    Statically verify a ``.dl`` Datalog program, a source program's IR,
    or the emitted configuration(s) for a source program.  Exits
    non-zero on any error-severity diagnostic (any diagnostic at all
    with ``--strict-warnings``).  ``--shard-plan`` additionally runs
    the shard-safety analysis (DL4xx) and prints the partition plan;
    ``--json`` writes one byte-stable ``repro-lint/1`` document.

``figure6``
    Regenerate the paper's Figure 6 table on the synthetic DaCapo
    analogues.

``serve``
    Long-lived query server: load a snapshot (or solve once) and answer
    JSON-lines requests on stdio or a TCP socket (``repro-serve/1``).

``check``
    Run the client-checker suite (downcasts, devirtualization, races,
    leaks, dead code) over a program or snapshot; emit ``repro-check/1``
    JSON and gate the exit code on ``--fail-on`` severity.  ``--audit``
    sweeps the configuration matrix instead and tabulates finding
    counts (the client-level companion to ``figure6``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.analysis import analyze
from repro.core.config import config_by_name

_CONFIG_CHOICES = (
    "insensitive", "1-call", "1-call+H", "2-call", "2-call+H",
    "1-object", "2-object+H", "1-type", "2-type+H",
    "1-plain-object", "2-plain-object+H", "1-hybrid", "2-hybrid+H",
    "3-call", "3-call+2H", "3-object+2H",
)

_ABSTRACTIONS = {
    "ts": "transformer-string",
    "cs": "context-string",
    "transformer-string": "transformer-string",
    "context-string": "context-string",
}


def _load_facts(args):
    from repro.frontend.doopfacts import read_facts
    from repro.frontend.factgen import facts_from_source

    if args.facts_dir:
        return read_facts(args.facts_dir)
    if not args.source:
        raise SystemExit("error: provide a source file or --facts-dir")
    with open(args.source, encoding="utf-8") as handle:
        return facts_from_source(handle.read())


def _analysis_config(args):
    return config_by_name(
        args.config,
        _ABSTRACTIONS[args.abstraction],
        eliminate_subsumed=args.eliminate_subsumed,
    )


def cmd_analyze(args) -> int:
    if args.diff:
        return _analyze_diff(args)
    if args.magic:
        return _analyze_magic(args)
    if args.shards:
        return _analyze_shards(args)
    if args.backend and args.backend != "worklist":
        return _analyze_backend(args)
    facts = _load_facts(args)
    result = analyze(facts, _analysis_config(args))
    if args.var:
        for var in args.var:
            targets = ", ".join(sorted(result.points_to(var))) or "∅"
            print(f"{var} -> {{{targets}}}")
    else:
        by_var = {}
        for (var, heap) in sorted(result.pts_ci()):
            by_var.setdefault(var, []).append(heap)
        for var, heaps in sorted(by_var.items()):
            print(f"{var} -> {{{', '.join(sorted(heaps))}}}")
    if args.call_graph:
        print("\ncall graph:")
        for (inv, method) in sorted(result.call_graph()):
            print(f"  {inv} -> {method}")
    if args.stats:
        sizes = result.relation_sizes()
        print(
            f"\n|pts|={sizes['pts']} |hpts|={sizes['hpts']}"
            f" |call|={sizes['call']} total={result.total_facts()}"
            f" time={result.seconds * 1000:.1f}ms"
            f" config={result.config.describe()}"
        )
        print(_store_stats_table(result.store_stats()))
    if args.dot:
        from repro.core.graphviz import call_graph_dot

        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(call_graph_dot(result))
        print(f"wrote call-graph DOT to {args.dot}")
    if args.save_snapshot:
        from repro.service.snapshot import (
            DERIVED_RELATIONS,
            snapshot_from_relations,
            write_snapshot,
        )

        relations = {
            name: getattr(result._solver, name)
            for name, _arity in DERIVED_RELATIONS
        }
        snapshot = snapshot_from_relations(result.config, facts, relations)
        write_snapshot(snapshot, args.save_snapshot)
        counts = snapshot.relation_counts()
        print(
            f"wrote snapshot to {args.save_snapshot}"
            f" ({sum(counts.values())} derived facts,"
            f" config {result.config.describe()})"
        )
    return 0


def _analyze_diff(args) -> int:
    """``analyze --diff OLD NEW``: the fact delta between two programs,
    applied incrementally and priced against a from-scratch solve."""
    import time

    from repro.core.analysis import PointerAnalysis
    from repro.frontend.factgen import facts_from_source
    from repro.incremental import IncrementalSolver, copy_facts, diff_facts

    old_path, new_path = args.diff
    with open(old_path, encoding="utf-8") as handle:
        old = facts_from_source(handle.read())
    with open(new_path, encoding="utf-8") as handle:
        new = facts_from_source(handle.read())
    config = _analysis_config(args)
    delta = diff_facts(old, new)
    print(f"fact delta ({old_path} -> {new_path}):")
    for line in delta.describe().splitlines():
        print(f"  {line}")
    if delta.is_empty():
        return 0

    solver = IncrementalSolver(copy_facts(old), config)
    outcome = solver.apply_delta(delta)
    start = time.perf_counter()
    scratch_result = PointerAnalysis(copy_facts(new), config).run()
    scratch_seconds = time.perf_counter() - start
    changed = ", ".join(
        f"{kind} +{len(outcome.added.get(kind, ()))}"
        f"/-{len(outcome.removed.get(kind, ()))}"
        for kind in outcome.changed_relations()
    ) or "nothing"
    print(f"\nderived changes: {changed}")
    print(
        f"engine: {outcome.rederived} rederived, {outcome.deleted} deleted,"
        f" {outcome.reused} reused"
        + (f" (fallback: {outcome.reason})" if outcome.fallback else "")
    )
    speedup = (
        scratch_seconds / outcome.seconds if outcome.seconds > 0 else 0.0
    )
    print(
        f"incremental {outcome.seconds * 1000:.2f}ms vs scratch"
        f" {scratch_seconds * 1000:.2f}ms ({speedup:.1f}x)"
    )
    scratch_solver = scratch_result._solver
    identical = all(
        rows == set(getattr(scratch_solver, kind))
        for kind, rows in solver.relation_rows().items()
    )
    print(f"parity with scratch solve: {'ok' if identical else 'MISMATCH'}")
    return 0 if identical else 1


def _analyze_shards(args) -> int:
    """``analyze --shards N``: the plan-driven sharded fixpoint.

    Compiles the configuration, builds the shard plan for
    ``--shard-key``, runs the parallel executor (multiprocessing by
    default; ``--in-process`` shares one interpreter), verifies exact
    row-set parity against the sequential engine, and prints points-to
    sets plus the plan and run-time shard-safety certificate.  Exits 1
    on a parity mismatch or a certificate violation.
    """
    import time

    from repro.compile.emit import (
        compile_context_string_analysis,
        compile_transformer_analysis,
    )
    from repro.datalog.engine import Engine
    from repro.datalog.parallel import ParallelEngine, ShardSafetyError

    facts = _load_facts(args)
    config = _analysis_config(args)
    compiler = (
        compile_transformer_analysis
        if _ABSTRACTIONS[args.abstraction] == "transformer-string"
        else compile_context_string_analysis
    )
    compiled = compiler(facts, config.flavour, config.m, config.h)
    engine = ParallelEngine(
        compiled.program, compiled.builtins, shards=args.shards,
        key=args.shard_key, processes=not args.in_process,
    )
    try:
        raw = engine.run()
    except ShardSafetyError as error:
        print(f"repro analyze: shard-safety violation: {error}",
              file=sys.stderr)
        return 1
    start = time.perf_counter()
    sequential = Engine(compiled.program, compiled.builtins).run()
    sequential_seconds = time.perf_counter() - start
    parity = raw == sequential

    decoded = compiled.decoder(raw)
    by_var = {}
    for row in decoded.get("pts", ()):
        by_var.setdefault(row[0], set()).add(row[1])
    if args.var:
        for var in args.var:
            targets = ", ".join(sorted(by_var.get(var, ()))) or "∅"
            print(f"{var} -> {{{targets}}}")
    else:
        for var, heaps in sorted(by_var.items()):
            print(f"{var} -> {{{', '.join(sorted(heaps))}}}")

    plan = engine.plan
    counts = plan.counts()
    stats = engine.stats
    print(
        f"\nshard plan (key={plan.spec.key}): {len(plan.rules)} rules —"
        f" {counts['local']} local, {counts['exchange']} exchange,"
        f" {counts['broadcast']} broadcast"
        f" ({plan.witness_count()} witnesses)"
    )
    speedup = (
        sequential_seconds / stats.seconds if stats.seconds > 0 else 0.0
    )
    print(
        f"{args.shards} shards ({stats.backend}):"
        f" {stats.seconds * 1000:.1f}ms vs sequential"
        f" {sequential_seconds * 1000:.1f}ms ({speedup:.2f}x),"
        f" rounds={stats.rounds}, skew={stats.skew():.2f},"
        f" exchanged={stats.exchanged_rows},"
        f" broadcast_volume={stats.broadcast_volume}"
    )
    print(
        f"certificate: cross-shard probes {stats.cross_shard_probes}"
        f" (shard-local rules {stats.cross_shard_probes_local}),"
        f" ownership violations {stats.ownership_violations}"
    )
    print(f"parity with sequential engine: {'ok' if parity else 'MISMATCH'}")
    return 0 if parity else 1


def _parse_magic_query(spec: str):
    """Parse ``--magic``'s ``PRED(arg, _, ...)`` query syntax.

    ``_`` (or an empty slot) is a free argument; anything else is a
    bound constant — quotes are optional, since pointer-analysis
    entity names (``T.main/x``) never contain commas or parens.
    """
    spec = spec.strip()
    if "(" not in spec or not spec.endswith(")"):
        raise SystemExit(
            "error: --magic wants PRED(arg, ...) with '_' for free"
            " arguments"
        )
    pred, _, rest = spec.partition("(")
    inner = rest[:-1].strip()
    parsed = []
    if inner:
        for token in inner.split(","):
            token = token.strip()
            if token in ("", "_", "?"):
                parsed.append(None)
            else:
                parsed.append(token.strip("'\""))
    return pred.strip(), tuple(parsed)


def _analyze_magic(args) -> int:
    """``analyze --magic PRED(args)``: demand-driven evaluation.

    Emits the configuration's Datalog, runs the magic-sets
    transformation for the query, evaluates the transformed program
    under strict lint, and verifies the answers exactly match the full
    solve's rows filtered by the query's bound constants.  The DL5xx
    cost pass runs over the *transformed* program — the magic seed is
    a body-less constant-head rule, so the demand predicates get
    seed-derived cardinality bounds.  Exits 1 on a parity mismatch.
    """
    from repro.compile.emit import (
        compile_context_string_analysis,
        compile_transformer_analysis,
    )
    from repro.datalog.builtins import DEFAULT_BUILTINS
    from repro.datalog.cost import analyze_cost
    from repro.datalog.engine import Engine
    from repro.datalog.magic import MagicSetError, magic_transform
    from repro.lint.diagnostics import LintError

    pred, query_args = _parse_magic_query(args.magic)
    facts = _load_facts(args)
    config = _analysis_config(args)
    compiler = (
        compile_transformer_analysis
        if _ABSTRACTIONS[args.abstraction] == "transformer-string"
        else compile_context_string_analysis
    )
    compiled = compiler(facts, config.flavour, config.m, config.h)
    program, builtins = compiled.program, compiled.builtins

    arities = {
        rule.head.arity for rule in program.rules if rule.head.pred == pred
    }
    if arities and len(query_args) not in arities:
        print(
            f"repro analyze: --magic: {pred!r} has arity"
            f" {sorted(arities)[0]}, query supplies {len(query_args)}"
            " arguments",
            file=sys.stderr,
        )
        return 2

    full_engine = Engine(program, builtins)
    full = full_engine.run()
    builtin_names = set(DEFAULT_BUILTINS) | set(builtins or ())
    try:
        transformed, answer_pred = magic_transform(
            program, pred, query_args, builtin_names
        )
    except MagicSetError as error:
        print(f"repro analyze: --magic: {error}", file=sys.stderr)
        return 2

    try:
        engine = Engine(transformed, builtins, strict=True)
    except LintError as error:
        print(f"repro analyze: --magic: {error}", file=sys.stderr)
        return 1
    results = engine.run()
    answers = results.get(answer_pred, set())
    expected = {
        row for row in full.get(pred, set())
        if all(
            constant is None or row[position] == constant
            for position, constant in enumerate(query_args)
        )
    }

    shown = ", ".join(
        "_" if constant is None else constant for constant in query_args
    )
    print(f"query {pred}({shown}): {len(answers)} answer(s)")
    for row in sorted(answers):
        print(f"  {pred}({', '.join(repr(value) for value in row)})")
    print(
        f"\nmagic program: {len(transformed.rules)} rules"
        f" (from {len(program.rules)}),"
        f" {engine.stats.facts_derived} facts derived vs"
        f" {full_engine.stats.facts_derived} exhaustive"
    )

    plan = analyze_cost(transformed, builtins=builtins)
    by_code: dict = {}
    for diagnostic in plan.diagnostics:
        by_code[diagnostic.code] = by_code.get(diagnostic.code, 0) + 1
    codes = ", ".join(
        f"{code}×{count}" for code, count in sorted(by_code.items())
    ) or "clean"
    print(
        f"cost pass (DL5xx) over the magic program:"
        f" {plan.reordered_count()}/{len(plan.rules)} rules reordered,"
        f" diagnostics: {codes}"
    )

    parity = answers == expected
    print(f"parity with full solve: {'ok' if parity else 'MISMATCH'}")
    return 0 if parity else 1


#: ``--backend`` names → :meth:`CompiledAnalysis.run` backend names.
_BACKENDS = {
    "engine": "interpreted",
    "compiled": "compiled",
    "kernel": "kernel",
}


def _analyze_backend(args) -> int:
    """``analyze --backend engine|compiled|kernel``: one Datalog
    backend, cross-checked against the worklist solver.

    Compiles the configuration to plain Datalog, evaluates it on the
    selected backend (the semi-naive interpreter, the generated
    tuple-row code, or the fused columnar kernels), verifies every
    derived relation fact-for-fact against the worklist solver, and
    prints points-to sets plus engine statistics.  Exits 1 on any
    mismatch — the same contract as ``--shards``.
    """
    from repro.compile.emit import (
        compile_context_string_analysis,
        compile_transformer_analysis,
    )

    facts = _load_facts(args)
    config = _analysis_config(args)
    compiler = (
        compile_transformer_analysis
        if _ABSTRACTIONS[args.abstraction] == "transformer-string"
        else compile_context_string_analysis
    )
    compiled = compiler(facts, config.flavour, config.m, config.h)
    result = compiled.run(backend=_BACKENDS[args.backend])
    solver = analyze(facts, config)

    by_var = {}
    for row in result.relations.get("pts", ()):
        by_var.setdefault(row[0], set()).add(row[1])
    if args.var:
        for var in args.var:
            targets = ", ".join(sorted(by_var.get(var, ()))) or "∅"
            print(f"{var} -> {{{targets}}}")
    else:
        for var, heaps in sorted(by_var.items()):
            print(f"{var} -> {{{', '.join(sorted(heaps))}}}")
    if args.call_graph:
        print("\ncall graph:")
        for (inv, method) in sorted(result.call_graph()):
            print(f"  {inv} -> {method}")

    stats = result.engine.stats
    print(
        f"\n{args.backend} backend: {stats.seconds * 1000:.1f}ms,"
        f" rounds={stats.rounds},"
        f" rule_evaluations={stats.rule_evaluations},"
        f" facts_derived={stats.facts_derived}"
        f" ({compiled.description})"
    )
    if args.stats:
        print(_store_stats_table(result.engine.store_stats()))

    mismatches = [
        name
        for name in ("pts", "hpts", "call", "reach", "spts", "texc")
        if getattr(result, name) != getattr(solver, name)
    ]
    if mismatches:
        print(
            f"parity with worklist solver: MISMATCH in"
            f" {', '.join(mismatches)}"
        )
        return 1
    print("parity with worklist solver: ok")
    return 0


def _store_stats_table(stats) -> str:
    """Per-relation store counters as an aligned text table."""
    header = (
        f"\n{'relation':10s}{'rows':>8s}{'inserts':>9s}{'dedup':>8s}"
        f"{'probes':>9s}{'indexes':>9s}{'entries':>9s}"
    )
    lines = [header]
    for name, row in sorted(stats.items()):
        lines.append(
            f"{name:10s}{row['rows']:>8d}{row['inserts']:>9d}"
            f"{row['dedup_hits']:>8d}{row['probes']:>9d}"
            f"{row['indexes']:>9d}{row['index_entries']:>9d}"
        )
    return "\n".join(lines)


def cmd_facts(args) -> int:
    from repro.frontend.doopfacts import write_facts
    from repro.frontend.factgen import facts_from_source

    with open(args.source, encoding="utf-8") as handle:
        facts = facts_from_source(handle.read())
    write_facts(facts, args.out)
    print(f"wrote {sum(facts.counts().values())} facts to {args.out}")
    return 0


def cmd_emit(args) -> int:
    from repro.compile.emit import compile_transformer_analysis
    from repro.core.config import config_by_name as by_name
    from repro.datalog.parser import format_program

    facts = _load_facts(args)
    config = by_name(args.config)
    compiled = compile_transformer_analysis(
        facts, config.flavour, config.m, config.h
    )
    text = format_program(compiled.program)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(compiled.program.rules)} Datalog rules to {args.out}"
        )
    else:
        print(text)
    return 0


def cmd_query(args) -> int:
    from repro.service import AnalysisService, SnapshotError

    if args.snapshot:
        try:
            service = AnalysisService.from_snapshot(args.snapshot)
        except SnapshotError as error:
            print(f"repro query: {error}", file=sys.stderr)
            return 1
        if not args.json:
            print(
                f"snapshot: {args.snapshot}"
                f" (config {service.config.describe()},"
                f" generation {service.generation})"
            )
        if args.source or args.facts_dir:
            _warn_stale_snapshot(args, service)
    else:
        # Demand-only mode: nothing is solved beyond the queried slice,
        # and repeated --var arguments share one demand instance.
        facts = _load_facts(args)
        service = AnalysisService.from_facts(
            facts, _analysis_config(args), solve=False
        )
    if args.json:
        return _query_json(args, service)
    for var in args.var:
        targets = ", ".join(sorted(service.points_to(var))) or "∅"
        print(f"{var} -> {{{targets}}}")
    stats = service.stats()
    if args.snapshot:
        latency = stats["latency_us"].get("points_to", {})
        print(
            f"\nsnapshot served: {stats['paths']['warm']} warm,"
            f" {stats['paths']['cold']} demand,"
            f" {stats['cache']['hits']} cached"
            f" (p50 {latency.get('p50_us', 0)}µs)"
        )
    else:
        demand = stats.get("demand", {})
        sliced = demand.get("sliced_facts", 0)
        total = demand.get("total_facts", 0)
        print(
            f"\ndemand slice: {sliced}/{total} input facts"
            f" ({sliced / total * 100 if total else 0:.0f}%)"
        )
    return 0


def _query_json(args, service) -> int:
    """``query --json``: one structured document on stdout (schema
    ``repro-query/1``) — per-query kind, answer, latency, cache state
    and serving path, plus the service config and snapshot generation —
    so scripts stop scraping the human format."""
    import json

    queries = []
    for var in args.var:
        outcome = service.query("points_to", var=var)
        queries.append({
            "kind": outcome.kind,
            "var": var,
            "answer": sorted(outcome.value),
            "micros": int(outcome.seconds * 1e6),
            "cached": outcome.cached,
            "path": outcome.path,
        })
    document = {
        "schema": "repro-query/1",
        "config": service.config.describe(),
        "snapshot": args.snapshot,
        "generation": service.generation,
        "queries": queries,
    }
    print(json.dumps(document, indent=2))
    return 0


def _warn_stale_snapshot(args, service) -> None:
    """``query --snapshot`` with a program too: refuse to answer
    silently when the snapshot's facts differ from the program's."""
    from repro.incremental import diff_facts

    supplied = _load_facts(args)
    delta = diff_facts(service.facts, supplied)
    if delta.is_empty():
        return
    print(
        f"warning: snapshot (generation {service.generation}) is stale"
        f" against the supplied program —"
        f" {delta.total_added} fact(s) missing,"
        f" {delta.total_removed} extra; answers below reflect the"
        " snapshot, not the program (re-solve or `serve` + `update`"
        " to refresh)",
        file=sys.stderr,
    )


def cmd_check(args) -> int:
    from repro.checkers import CheckConfig, CheckError, Severity
    from repro.service import AnalysisService, SnapshotError

    check_config = CheckConfig(
        thread_roots=tuple(args.thread_root or ()),
        taint_sources=tuple(args.taint_source or ()),
    )
    checks = None
    if args.checks:
        checks = [
            token for part in args.checks
            for token in part.split(",") if token.strip()
        ]
    if args.audit:
        return _check_audit(args, checks, check_config)
    try:
        if args.snapshot:
            service = AnalysisService.from_snapshot(args.snapshot)
        else:
            service = AnalysisService.from_facts(
                _load_facts(args), _analysis_config(args)
            )
        report = service.check(checks=checks, check_config=check_config)
    except (SnapshotError, CheckError) as error:
        print(f"repro check: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if args.explain:
        _check_explain(service, checks, check_config)
    if args.json:
        _write_json(args.json, report.to_json(), "check report")
    fail_on = (
        None if args.fail_on == "never" else Severity.parse(args.fail_on)
    )
    if report.failed(fail_on):
        print(
            f"repro check: failing (findings at or above"
            f" {fail_on.label}; see report)",
            file=sys.stderr,
        )
        return 1
    return 0


def _write_json(path: str, document, label: str) -> None:
    import json

    text = json.dumps(document, indent=2) + "\n"
    if path == "-":
        print(text, end="")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {label} to {path}")


def _check_explain(service, checks, check_config) -> None:
    """``check --explain``: derivation trees for every witness fact.

    Provenance is recorded by the solver, not stored in snapshots, so
    this re-solves the service's facts once with
    ``track_provenance=True``.
    """
    from dataclasses import replace

    from repro.checkers import run_checks

    config = replace(service.config, track_provenance=True)
    result = analyze(service.facts, config)
    traced = run_checks(
        result, service.facts, checks=checks, config=check_config
    )
    print()
    for finding in traced.findings:
        print(finding.explain(result))


def _check_audit(args, checks, check_config) -> int:
    """``check --audit``: the flavour × (m,h) × abstraction sweep.

    Exits non-zero when a checker's findings fail the precision-
    monotonicity test against the insensitive baseline, or when the two
    abstractions disagree at equal (m, h).
    """
    from repro.bench.checkbench import format_audit, run_precision_audit

    facts = _load_facts(args)
    audit = run_precision_audit(
        facts, checks=checks, check_config=check_config
    )
    subject = args.source or args.facts_dir or "program"
    print(format_audit(audit, title=f"Precision audit ({subject})"))
    if args.json:
        _write_json(args.json, audit, "audit JSON")
    healthy = (
        all(audit["monotone"].values()) and audit["abstractions_agree"]
    )
    return 0 if healthy else 1


def cmd_serve(args) -> int:
    from repro.service import AnalysisService, SnapshotError
    from repro.service.server import PROTOCOL, serve_stdio, serve_tcp

    if args.async_:
        return _serve_async(args)
    try:
        if args.snapshot:
            if len(args.snapshot) > 1:
                print(
                    "repro serve: multiple --snapshot tenants need"
                    " --async",
                    file=sys.stderr,
                )
                return 2
            service = AnalysisService.from_snapshot(
                args.snapshot[0], cache_size=args.cache_size
            )
        else:
            facts = _load_facts(args)
            service = AnalysisService.from_facts(
                facts, _analysis_config(args), solve=not args.demand,
                cache_size=args.cache_size, backend=args.backend,
            )
    except SnapshotError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 1
    covered, total = service.coverage()
    # All chatter on stderr: stdout belongs to the wire protocol.
    print(
        f"repro serve: ready ({PROTOCOL}, config"
        f" {service.config.describe()}, {covered}/{total} variables warm)",
        file=sys.stderr,
    )
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        try:
            serve_tcp(service, host or "127.0.0.1", int(port))
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        return 0
    serve_stdio(service)
    return 0


def _serve_async(args) -> int:
    """``repro serve --async``: the repro-serve/2 gateway."""
    import asyncio
    import signal

    from repro.serve import (
        AsyncGateway, GatewayConfig, PROTOCOL_V2, SnapshotRegistry,
    )
    from repro.service import AnalysisService, SnapshotError

    if not args.tcp:
        print(
            "repro serve: --async requires --tcp HOST:PORT",
            file=sys.stderr,
        )
        return 2
    registry = SnapshotRegistry(byte_budget=args.byte_budget)
    try:
        for entry in args.snapshot or ():
            alias, separator, path = entry.partition("=")
            if not separator:
                alias, path = None, entry
            digest = registry.register(path, alias=alias)
            print(
                f"repro serve: tenant {digest[:12]} <- {path}"
                + (f" (alias {alias})" if alias else ""),
                file=sys.stderr,
            )
        if args.source or args.facts_dir:
            facts = _load_facts(args)
            service = AnalysisService.from_facts(
                facts, _analysis_config(args),
                cache_size=args.cache_size, backend=args.backend,
            )
            digest = registry.add_service(service, alias="program")
            print(
                f"repro serve: tenant {digest[:12]} <- solved program"
                " (alias program)",
                file=sys.stderr,
            )
    except (SnapshotError, OSError, ValueError) as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 1
    if not registry.tenants():
        print(
            "repro serve: --async needs at least one --snapshot or a"
            " program to solve",
            file=sys.stderr,
        )
        return 2
    gateway_config = GatewayConfig(
        max_batch=args.batch_max,
        max_delay_ms=args.batch_delay_ms,
        queue_limit=args.queue_limit,
        op_timeout_s=args.op_timeout,
        workers=args.workers,
    )
    host, _, port = args.tcp.rpartition(":")

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        gateway = AsyncGateway(registry, gateway_config)
        try:
            loop.add_signal_handler(signal.SIGTERM, gateway.start_drain)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
        ready = loop.create_future()
        task = loop.create_task(
            gateway.serve(host or "127.0.0.1", int(port), ready=ready)
        )
        bound_host, bound_port = await ready
        print(
            f"repro serve: gateway listening on"
            f" {bound_host}:{bound_port} ({PROTOCOL_V2},"
            f" {len(registry.tenants())} tenant(s), batch"
            f" {gateway_config.max_batch}@{gateway_config.max_delay_ms}ms,"
            f" queue {gateway_config.queue_limit})",
            file=sys.stderr,
        )
        await task
        print("repro serve: gateway drained", file=sys.stderr)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


_LINT_MAX_LINES = 50

#: Schema identifier of the ``lint --json`` document.  One entry per
#: linted subject; diagnostics are sorted by (line, column, code,
#: message) so the serialized bytes are stable across runs.
LINT_JSON_SCHEMA = "repro-lint/1"


def _lint_print(report, args, plan=None, cost_plan=None) -> bool:
    """Print a report; returns True when it should fail the run."""
    from repro.lint.diagnostics import Severity

    min_severity = Severity.NOTE if args.verbose else Severity.WARNING
    rendered = report.render(min_severity)
    if rendered:
        lines = rendered.splitlines()
        shown = lines if args.verbose else lines[:_LINT_MAX_LINES]
        print("\n".join(shown))
        if len(shown) < len(lines):
            print(f"... and {len(lines) - len(shown)} more (use --verbose)")
    if plan is not None:
        plan_lines = plan.render().splitlines()
        shown = plan_lines if args.verbose else plan_lines[:_LINT_MAX_LINES]
        print("\n".join(shown))
        if len(shown) < len(plan_lines):
            print(
                f"... plan truncated"
                f" ({len(plan_lines) - len(shown)} more lines;"
                " use --verbose)"
            )
    if cost_plan is not None:
        cost_lines = cost_plan.render().splitlines()
        shown = cost_lines if args.verbose else cost_lines[:_LINT_MAX_LINES]
        print("\n".join(shown))
        if len(shown) < len(cost_lines):
            print(
                f"... cost plan truncated"
                f" ({len(cost_lines) - len(shown)} more lines;"
                " use --verbose)"
            )
    print(report.summary())
    if args.strict_warnings:
        return bool(report.errors or report.warnings)
    return not report.ok


def _lint_json_entry(report, plan=None, cost_plan=None):
    """One ``subjects[]`` entry of the ``repro-lint/1`` document."""
    def sort_key(diagnostic):
        pos = diagnostic.pos
        return (
            pos.line if pos else 0,
            pos.column if pos else 0,
            diagnostic.code,
            diagnostic.message,
        )

    errors, warnings = len(report.errors), len(report.warnings)
    entry = {
        "subject": report.subject,
        "ok": report.ok,
        "errors": errors,
        "warnings": warnings,
        "notes": len(report.diagnostics) - errors - warnings,
        "diagnostics": [
            {
                "code": d.code,
                "severity": str(d.severity),
                "line": d.pos.line if d.pos else None,
                "column": d.pos.column if d.pos else None,
                "rule": d.rule_index,
                "where": d.where,
                "message": d.message,
            }
            for d in sorted(report.diagnostics, key=sort_key)
        ],
    }
    if plan is not None:
        entry["shard_plan"] = plan.to_json()
    if cost_plan is not None:
        entry["cost_plan"] = cost_plan.to_json()
    return entry


def _lint_report(report, args, entries, plan=None, cost_plan=None) -> bool:
    """Route one report to text output and/or the JSON collector."""
    entries.append(_lint_json_entry(report, plan, cost_plan))
    return _lint_print(report, args, plan, cost_plan)


def _lint_shard_plan(program, builtins, args, report):
    """``--shard-plan``: merge DL4xx findings into ``report`` and
    return the plan (or ``None`` when the program is unstratifiable)."""
    from repro.lint.shards import shard_plan_or_none

    plan, diagnostics = shard_plan_or_none(
        program, builtins, key=args.shard_key
    )
    report.extend(diagnostics)
    return plan


def _lint_cost(program, builtins, report):
    """``--cost``: merge DL5xx findings into ``report`` and return the
    cost plan (or ``None`` when the program is unstratifiable)."""
    from repro.lint.cost import cost_plan_or_none

    plan, diagnostics = cost_plan_or_none(program, builtins)
    report.extend(diagnostics)
    return plan


def _lint_compiled(facts, name: str, abstraction: str):
    from repro.compile.emit import (
        compile_context_string_analysis,
        compile_transformer_analysis,
        compile_transformer_analysis_naive,
    )
    from repro.core.config import config_by_name as by_name
    from repro.datalog.lint import LintError, lint_program

    compilers = {
        "transformer-string": compile_transformer_analysis,
        "context-string": compile_context_string_analysis,
        "naive": compile_transformer_analysis_naive,
    }
    config = by_name(name)
    try:
        compiled = compilers[abstraction](
            facts, config.flavour, config.m, config.h
        )
    except LintError as error:
        # Emission itself lints (errors only); recover the full report.
        return error.report, None
    from repro.compile.emit import _INPUT_RELATIONS

    report = lint_program(
        compiled.program,
        builtins=compiled.builtins,
        subject=compiled.description,
        edb=_INPUT_RELATIONS + ("class_of", "invocation_parent"),
    )
    return report, compiled


def cmd_lint(args) -> int:
    from repro.datalog.lint import lint_program
    from repro.datalog.parser import DatalogSyntaxError, parse_datalog
    from repro.frontend.parser import ParseError

    try:
        with open(args.path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 1

    if _looks_like_snapshot(args.path, source):
        return _lint_snapshot(args.path)
    if _looks_like_check_report(args.path, source):
        return _lint_check_report(args.path)
    if _looks_like_bench_document(args.path, source):
        return _lint_bench_document(args.path)
    if _looks_like_cost_plan(args.path, source):
        return _lint_cost_plan(args.path)
    if _looks_like_kernel_cert(args.path, source):
        return _lint_kernel_cert(args.path)

    failed = False
    entries: list = []
    try:
        failed = _lint_path(source, args, entries)
    except (DatalogSyntaxError, ParseError) as error:
        # A file the parser rejects is a lint failure, not a crash.
        print(f"error[syntax] in {args.path}: {error}", file=sys.stderr)
        return 1
    if args.json:
        document = {
            "schema": LINT_JSON_SCHEMA,
            "path": args.path,
            "ok": not failed,
            "subjects": entries,
        }
        _write_json(args.json, document, "lint report")
    return 1 if failed else 0


def _looks_like_snapshot(path: str, source: str) -> bool:
    """Heuristic: a ``.snap`` file, or JSON with the snapshot schema."""
    if path.endswith(".snap"):
        return True
    head = source.lstrip()[:4096]
    return head.startswith("{") and '"repro-snapshot/' in head


def _lint_snapshot(path: str) -> int:
    """Self-check a snapshot file: schema, digest, declared counts."""
    from repro.service import SnapshotError, describe_snapshot

    try:
        report = describe_snapshot(path)
    except SnapshotError as error:
        print(f"error[snapshot] in {path}: {error}", file=sys.stderr)
        return 1
    relations = " ".join(
        f"{name}={count}" for name, count in sorted(report["relations"].items())
    )
    print(f"snapshot: {path}")
    print(f"  schema    {report['schema']}")
    print(f"  config    {report['config']}")
    print(f"  digest    {report['digest']} (verified)")
    coverage = report["coverage"]
    print(
        "  coverage  full"
        if coverage == "full"
        else f"  coverage  {coverage} variables"
    )
    print(f"  facts     {report['input_facts']} input facts")
    print(f"  relations {relations}")
    print("snapshot ok: 0 errors, 0 warnings")
    return 0


def _looks_like_bench_document(path: str, source: str) -> bool:
    """Heuristic: JSON carrying the ``repro-bench/`` schema marker.

    The marker includes the trailing slash, so trajectory files
    (``repro-bench-trajectory/``) do not match and still lint as
    ordinary JSON-free sources.  The whole source is scanned: rendered
    documents sort ``schema`` after the (large) ``body`` key."""
    stripped = source.lstrip()
    return stripped.startswith("{") and '"repro-bench/' in stripped


def _lint_bench_document(path: str) -> int:
    """Self-check a ``repro-bench/1`` document: schema, digest,
    fingerprint, entry-key consistency, warmup/steady split."""
    from repro.perf import BenchDocumentError, describe_document

    try:
        report = describe_document(path)
    except (BenchDocumentError, OSError) as error:
        print(f"error[bench] in {path}: {error}", file=sys.stderr)
        return 1
    print(f"bench document: {path}")
    print(f"  schema      {report['schema']}")
    print(f"  suite       {report['suite']}")
    print(f"  digest      {report['digest']} (verified)")
    print(f"  commit      {report['commit'] or '(none)'}")
    print(f"  fingerprint {report['fingerprint']}")
    print(
        f"  entries     {report['entries']}"
        f" ({report['certified']} certified,"
        f" {report['uncertified']} uncertified)"
    )
    print(f"  surfaces    {', '.join(report['surfaces'])}")
    if report["uncertified"]:
        print(
            f"warning[bench] in {path}: {report['uncertified']}"
            " entries are not certified against the worklist solver",
            file=sys.stderr,
        )
    print("bench document ok: 0 errors,"
          f" {1 if report['uncertified'] else 0} warnings")
    return 0


def _looks_like_cost_plan(path: str, source: str) -> bool:
    """Heuristic: JSON carrying the ``repro-cost-plan/`` marker.  The
    whole source is scanned — rendered documents sort ``schema`` after
    the (large) ``body`` key."""
    stripped = source.lstrip()
    return stripped.startswith("{") and '"repro-cost-plan/' in stripped


def _lint_cost_plan(path: str) -> int:
    """Self-check a ``repro-cost-plan/1`` document: schema, digest,
    rule/reorder counts."""
    import json

    from repro.datalog.cost import verify_cost_plan

    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        report = verify_cost_plan(document)
    except (OSError, ValueError) as error:
        print(f"error[cost-plan] in {path}: {error}", file=sys.stderr)
        return 1
    print(f"cost plan: {path}")
    print(f"  schema      {report['schema']}")
    print(f"  digest      {report['digest']} (verified)")
    print(
        f"  rules       {report['rules']}"
        f" ({report['reordered']} reordered)"
    )
    print(f"  profiles    {report['profiles']}")
    print(f"  diagnostics {report['diagnostics']}")
    print("cost plan ok: 0 errors, 0 warnings")
    return 0


def _looks_like_kernel_cert(path: str, source: str) -> bool:
    """Heuristic: JSON carrying the ``repro-kernel-cert/`` marker."""
    stripped = source.lstrip()
    return stripped.startswith("{") and '"repro-kernel-cert/' in stripped


def _lint_kernel_cert(path: str) -> int:
    """Self-check a ``repro-kernel-cert/1`` certificate.  A document
    that is internally consistent but records an *uncertified* compile
    still fails the lint — DL505 means dropped derivations."""
    import json

    from repro.compile.closure import verify_kernel_cert

    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        report = verify_kernel_cert(document)
    except (OSError, ValueError) as error:
        print(f"error[kernel-cert] in {path}: {error}", file=sys.stderr)
        return 1
    print(f"kernel certificate: {path}")
    print(f"  schema      {report['schema']}")
    print(f"  digest      {report['digest']} (verified)")
    print(
        f"  cell        {report['m']}-{report['flavour']}"
        f"+{report['h']}H"
    )
    print(
        f"  obligations {report['obligations']}"
        f" ({report['violations']} violated)"
    )
    if report["variants"] is not None:
        print(
            f"  variants    {report['variants']} required"
            f" ({report['missing']} missing)"
        )
    if not report["certified"]:
        print(
            f"error[kernel-cert] in {path}: compile is NOT certified"
            " (DL505 — see the document's diagnostics)",
            file=sys.stderr,
        )
        return 1
    print("kernel certificate ok: 0 errors, 0 warnings")
    return 0


def _looks_like_check_report(path: str, source: str) -> bool:
    """Heuristic: JSON carrying the ``repro-check/`` schema marker."""
    head = source.lstrip()[:4096]
    return head.startswith("{") and '"repro-check/' in head


def _lint_check_report(path: str) -> int:
    """Self-check a ``repro-check/1`` report: schema, digest, counts."""
    from repro.checkers import CheckError, describe_report

    try:
        report = describe_report(path)
    except (CheckError, OSError) as error:
        print(f"error[check-report] in {path}: {error}", file=sys.stderr)
        return 1
    counts = " ".join(
        f"{name}={count}" for name, count in sorted(report["counts"].items())
    )
    print(f"check report: {path}")
    print(f"  schema     {report['schema']}")
    print(f"  config     {report['config']}")
    print(f"  digest     {report['digest']} (verified)")
    print(f"  generation {report['generation']}")
    print(f"  checkers   {', '.join(report['checks'])}")
    print(f"  findings   {report['findings']} ({counts})")
    print("check report ok: 0 errors, 0 warnings")
    return 0


def _lint_path(source: str, args, entries) -> bool:
    from repro.datalog.lint import lint_program
    from repro.datalog.parser import parse_datalog

    if args.path.endswith(".dl"):
        program = parse_datalog(source, validate=False)
        # A standalone .dl file usually ships without its fact set;
        # treat every predicate that is never a rule head as a
        # populatable input so the liveness pass reports genuinely
        # dead rules instead of flagging the whole program.
        idb = program.idb_predicates()
        edb = {
            lit.pred
            for rule in program.rules
            for lit in rule.body
        } - idb
        report = lint_program(program, subject=args.path, edb=edb)
        plan = None
        if args.shard_plan:
            plan = _lint_shard_plan(program, None, args, report)
        cost_plan = None
        if args.cost:
            cost_plan = _lint_cost(program, None, report)
        return _lint_report(report, args, entries, plan, cost_plan)

    from repro.frontend.factgen import facts_from_source
    from repro.frontend.parser import parse_program
    from repro.lint.ircheck import check_ir

    ir_program = parse_program(source)
    failed = _lint_report(
        check_ir(ir_program, subject=args.path), args, entries
    )

    names = []
    if args.all_configs:
        names = [n for n in _CONFIG_CHOICES if n != "insensitive"]
    elif args.emitted or args.shard_plan or args.cost:
        names = [args.config]
    if names:
        facts = facts_from_source(source)
        abstraction_map = dict(_ABSTRACTIONS, naive="naive")
        abstractions = (
            ("transformer-string", "context-string", "naive")
            if args.all_abstractions
            else (abstraction_map[args.abstraction],)
        )
        for name in names:
            for abstraction in abstractions:
                report, compiled = _lint_compiled(facts, name, abstraction)
                plan = None
                if args.shard_plan and compiled is not None:
                    plan = _lint_shard_plan(
                        compiled.program, compiled.builtins, args, report
                    )
                cost_plan = None
                if args.cost and compiled is not None:
                    cost_plan = _lint_cost(
                        compiled.program, compiled.builtins, report
                    )
                failed = _lint_report(
                    report, args, entries, plan, cost_plan
                ) or failed
    return failed


def cmd_figure6(args) -> int:
    from repro.bench.harness import run_figure6
    from repro.bench.report import format_csv, format_figure6, format_json

    table = run_figure6(scale=args.scale, repetitions=args.repetitions)
    print(format_figure6(
        table, title=f"Figure 6 (synthetic analogues, scale={args.scale})"
    ))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(format_csv(table))
        print(f"\nwrote CSV to {args.csv}")
    if args.json:
        query_latency = None
        if not args.no_query_latency:
            from repro.bench.querybench import run_query_latency

            query_latency = run_query_latency(scale=args.scale)
        incremental = None
        if not args.no_incremental:
            from repro.bench.deltabench import run_delta_churn

            incremental = run_delta_churn(scale=args.scale)
        checks = None
        if not args.no_checks:
            from repro.bench.checkbench import run_check_audit

            checks = run_check_audit(scale=args.scale)
        parallel = None
        if not args.no_parallel:
            from repro.bench.parallelbench import (
                format_parallel, run_parallel_fixpoint,
            )

            parallel = run_parallel_fixpoint(scale=args.scale)
            print()
            print(format_parallel(parallel))
        kernels = None
        if not args.no_kernels:
            from repro.bench.kernelbench import (
                format_kernels, run_kernel_block,
            )

            kernels = run_kernel_block(scale=args.scale)
            print()
            print(format_kernels(kernels))
        serving = None
        if not args.no_serving:
            from repro.bench.loadbench import (
                format_serving, run_serving_block,
            )

            serving = run_serving_block(scale=args.scale)
            print()
            print(format_serving(serving))
        cost = None
        if not args.no_cost:
            from repro.bench.costbench import format_cost, run_cost_block

            cost = run_cost_block(scale=args.scale)
            print()
            print(format_cost(cost))
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(format_json(
                table, scale=args.scale, repetitions=args.repetitions,
                engine="solver", query_latency=query_latency,
                incremental=incremental, checks=checks,
                parallel=parallel, kernels=kernels, serving=serving,
                cost=cost,
            ))
        print(f"\nwrote JSON to {args.json}")
    return 0


def cmd_bench(args) -> int:
    handlers = {
        "run": _bench_run,
        "compare": _bench_compare,
        "gate": _bench_gate,
        "record": _bench_record,
        "trend": _bench_trend,
    }
    return handlers[args.bench_command](args)


def _bench_run(args) -> int:
    """``bench run``: execute a named suite; emit ``repro-bench/1``."""
    from repro.perf import (
        SUITES,
        bench_document,
        render_document,
        run_suite,
        validate_document,
    )

    suite = SUITES[args.suite]
    results = run_suite(
        suite,
        progress=(
            None if args.quiet
            else lambda key: print(f"  running {key}", flush=True)
        ),
    )
    document = bench_document(suite, results)
    validate_document(document)
    body = document["body"]
    certified = sum(1 for r in results if r.certified)
    print(
        f"bench run: suite {suite.name}, {len(results)} entries over"
        f" {len(suite.surfaces())} surfaces,"
        f" {certified}/{len(results)} certified"
    )
    for result in results:
        verdict = "certified" if result.certified else "UNCERTIFIED"
        print(f"  {result.key:<40} best {result.best():.4f}s ({verdict})")
    print(
        f"  commit {body['environment']['commit'] or '(none)'}"
        f"  fingerprint {body['environment']['fingerprint']}"
    )
    if args.json:
        text = render_document(document)
        if args.json == "-":
            print(text, end="")
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote bench document to {args.json}")
    return 0 if certified == len(results) else 1


def _bench_load(path: str):
    from repro.perf import BenchDocumentError, load_document

    try:
        return load_document(path)
    except (OSError, BenchDocumentError) as error:
        print(f"repro bench: {path}: {error}", file=sys.stderr)
        return None


def _bench_compare(args) -> int:
    """``bench compare``: side-by-side entries, no verdicts."""
    from repro.perf import compare_documents
    from repro.perf.gate import format_compare

    current = _bench_load(args.current)
    baseline = _bench_load(args.baseline)
    if current is None or baseline is None:
        return 1
    mode, rows = compare_documents(current, baseline)
    print(format_compare(mode, rows))
    return 0


def _bench_gate(args) -> int:
    """``bench gate``: threshold a run against the committed baseline.

    Exits 1 on any regression (timing, lost certification, or a
    dropped entry).  ``--update-baseline`` re-pins instead of gating.
    """
    from repro.perf import gate_documents, render_document
    from repro.perf.gate import format_gate

    current = _bench_load(args.current)
    if current is None:
        return 1
    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            handle.write(render_document(current))
        print(f"bench gate: baseline re-pinned at {args.baseline}")
        return 0
    baseline = _bench_load(args.baseline)
    if baseline is None:
        return 1
    per_entry = {}
    for override in args.entry_tolerance or ():
        key, _, value = override.rpartition("=")
        try:
            per_entry[key] = float(value)
        except ValueError:
            print(
                f"repro bench: bad --entry-tolerance {override!r}"
                " (want KEY=FLOAT)",
                file=sys.stderr,
            )
            return 1
    outcome = gate_documents(
        current, baseline,
        tolerance=args.tolerance,
        per_entry_tolerance=per_entry,
        inject_slowdown=args.inject_slowdown,
    )
    print(format_gate(outcome))
    return 0 if outcome.passed else 1


def _bench_record(args) -> int:
    """``bench record``: append a certified trajectory point."""
    import time as _time

    from repro.perf import (
        TrajectoryError,
        append_point,
        trajectory_point,
    )

    document = _bench_load(args.document)
    if document is None:
        return 1
    point = trajectory_point(document)
    if not point["certified"]:
        uncertified = [
            key for key, entry in point["entries"].items()
            if not entry["certified"]
        ]
        print(
            "repro bench: refusing to record an uncertified point"
            f" (not bit-identical to the worklist solver:"
            f" {', '.join(uncertified)})",
            file=sys.stderr,
        )
        return 1
    path = args.trajectory or _time.strftime("BENCH_%Y-%m-%d.json")
    try:
        append_point(path, point, description=args.description)
    except TrajectoryError as error:
        print(f"repro bench: {error}", file=sys.stderr)
        return 1
    print(
        f"recorded certified point {point['run_id']}"
        f" (commit {(point['commit'] or '?')[:8]}) in {path}"
    )
    return 0


def _bench_trend(args) -> int:
    """``bench trend``: render trajectory files (v1 migrated)."""
    import glob as _glob

    from repro.perf import TrajectoryError, format_trend, load_trajectory

    paths = args.paths or sorted(_glob.glob("BENCH_*.json"))
    if not paths:
        print("repro bench: no trajectory files found", file=sys.stderr)
        return 1
    status = 0
    for path in paths:
        try:
            document = load_trajectory(path)
        except (OSError, TrajectoryError) as error:
            print(f"repro bench: {path}: {error}", file=sys.stderr)
            status = 1
            continue
        print(f"{path}:")
        print(format_trend(document))
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context Transformations for Pointer Analysis"
        " (PLDI 2017) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("source", nargs="?", help="Java-subset source file")
        p.add_argument("--facts-dir", help="Doop-style facts directory")
        p.add_argument(
            "--config", default="2-object+H", choices=_CONFIG_CHOICES,
            help="context-sensitivity configuration (default: 2-object+H)",
        )

    p_analyze = sub.add_parser("analyze", help="run a pointer analysis")
    add_common(p_analyze)
    p_analyze.add_argument(
        "--abstraction", default="ts", choices=sorted(_ABSTRACTIONS),
        help="context abstraction (ts = transformer strings)",
    )
    p_analyze.add_argument(
        "--var", action="append",
        help="print only this variable's points-to set (repeatable)",
    )
    p_analyze.add_argument(
        "--call-graph", action="store_true", help="print the call graph"
    )
    p_analyze.add_argument(
        "--stats", action="store_true", help="print relation sizes and time"
    )
    p_analyze.add_argument(
        "--eliminate-subsumed", action="store_true",
        help="drop subsumed transformer-string facts (Section 8)",
    )
    p_analyze.add_argument(
        "--dot", help="write the call graph as Graphviz DOT to this file"
    )
    p_analyze.add_argument(
        "--save-snapshot", metavar="PATH",
        help="persist the solved result as a repro-snapshot/2 file",
    )
    p_analyze.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"),
        help="diff two source files, apply the delta incrementally and"
        " report incremental-vs-scratch timings",
    )
    p_analyze.add_argument(
        "--shards", type=int, metavar="N",
        help="run the plan-driven parallel executor over N shards and"
        " verify exact parity against the sequential engine",
    )
    p_analyze.add_argument(
        "--shard-key", default="heap", choices=("variable", "heap", "method"),
        help="partition key for --shards / the shard plan (default: heap)",
    )
    p_analyze.add_argument(
        "--in-process", action="store_true",
        help="with --shards: simulate the shards in one interpreter"
        " instead of forking worker processes",
    )
    p_analyze.add_argument(
        "--magic", metavar="PRED(ARGS)",
        help="demand-driven evaluation: run the magic-sets"
        " transformation for this query (e.g."
        " \"pts__e(T.main/x, _, _)\" — '_' marks a free argument),"
        " evaluate under strict lint, run the DL5xx cost pass over the"
        " transformed program, and verify parity against the full"
        " solve",
    )
    p_analyze.add_argument(
        "--backend", choices=("worklist", "engine", "compiled", "kernel"),
        help="execution backend: the worklist solver (default), the"
        " semi-naive Datalog interpreter, the compiled tuple-row"
        " backend, or the fused columnar kernels; non-worklist"
        " backends verify fact-for-fact parity against the worklist"
        " solver and exit 1 on mismatch",
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_query = sub.add_parser(
        "query", help="demand-driven points-to queries (no exhaustive run)"
    )
    add_common(p_query)
    p_query.add_argument(
        "--abstraction", default="ts", choices=sorted(_ABSTRACTIONS),
        help="context abstraction (ts = transformer strings)",
    )
    p_query.add_argument(
        "--var", action="append", required=True,
        help="variable to query (repeatable)",
    )
    p_query.add_argument(
        "--eliminate-subsumed", action="store_true",
        help=argparse.SUPPRESS,
    )
    p_query.add_argument(
        "--snapshot", metavar="PATH",
        help="answer from this snapshot file (no solving at all);"
        " with a source/facts program too, warns when the snapshot"
        " is stale",
    )
    p_query.add_argument(
        "--json", action="store_true",
        help="print one structured repro-query/1 document (answer,"
        " latency, cache state, snapshot generation) instead of text",
    )
    p_query.set_defaults(func=cmd_query)

    p_check = sub.add_parser(
        "check",
        help="run the client checkers (casts, devirt, races, leaks,"
        " dead code) and gate the exit code on severity",
    )
    add_common(p_check)
    p_check.add_argument(
        "--abstraction", default="ts", choices=sorted(_ABSTRACTIONS),
        help="context abstraction (ts = transformer strings)",
    )
    p_check.add_argument(
        "--eliminate-subsumed", action="store_true",
        help=argparse.SUPPRESS,
    )
    p_check.add_argument(
        "--snapshot", metavar="PATH",
        help="check against this repro-snapshot/2 file (no solving)",
    )
    p_check.add_argument(
        "--checks", action="append", metavar="NAMES",
        help="comma-separated checker names or codes to run"
        " (e.g. races,CK1; default: all)",
    )
    p_check.add_argument(
        "--json", metavar="PATH",
        help="write the repro-check/1 JSON report here ('-' = stdout)",
    )
    p_check.add_argument(
        "--fail-on", default="error",
        choices=("error", "warning", "info", "never"),
        help="exit non-zero when any finding reaches this severity"
        " (default: error)",
    )
    p_check.add_argument(
        "--explain", action="store_true",
        help="re-solve with provenance and print a derivation tree"
        " for every finding's witness facts",
    )
    p_check.add_argument(
        "--audit", action="store_true",
        help="sweep the flavour × (m,h) × abstraction matrix and"
        " tabulate finding counts (exit 1 on monotonicity violations)",
    )
    p_check.add_argument(
        "--thread-root", action="append", metavar="METHOD",
        help="extra thread-root method for the race checker"
        " (repeatable; main and *.run are automatic)",
    )
    p_check.add_argument(
        "--taint-source", action="append", metavar="SITE_OR_TYPE",
        help="taint source for the leak checker: a heap site label or"
        " type name (repeatable; default: every allocation site)",
    )
    p_check.set_defaults(func=cmd_check)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived JSON-lines query server (stdio or --tcp)",
    )
    add_common(p_serve)
    p_serve.add_argument(
        "--abstraction", default="ts", choices=sorted(_ABSTRACTIONS),
        help="context abstraction (ts = transformer strings)",
    )
    p_serve.add_argument(
        "--eliminate-subsumed", action="store_true",
        help=argparse.SUPPRESS,
    )
    p_serve.add_argument(
        "--snapshot", metavar="[ALIAS=]PATH", action="append",
        help="serve from this repro-snapshot/2 file (no solving);"
        " repeatable with --async, where ALIAS= names the tenant",
    )
    p_serve.add_argument(
        "--demand", action="store_true",
        help="skip the up-front solve; answer every query demand-driven",
    )
    p_serve.add_argument(
        "--backend", default="worklist", choices=("worklist", "kernel"),
        help="cold-solve engine (kernel = fused columnar kernels,"
        " bit-identical; default: worklist)",
    )
    p_serve.add_argument(
        "--tcp", metavar="HOST:PORT",
        help="listen on a TCP socket instead of stdio",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="LRU query-cache capacity (default: 1024)",
    )
    p_serve.add_argument(
        "--async", dest="async_", action="store_true",
        help="run the repro-serve/2 asyncio gateway (multi-tenant,"
        " micro-batched, admission-controlled); requires --tcp",
    )
    p_serve.add_argument(
        "--batch-max", type=int, default=16,
        help="gateway: flush a tenant's micro-batch at this many"
        " requests (default: 16)",
    )
    p_serve.add_argument(
        "--batch-delay-ms", type=float, default=2.0,
        help="gateway: max time a request waits for its batch to fill"
        " (default: 2.0)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=256,
        help="gateway: admitted requests before explicit overload"
        " responses (default: 256)",
    )
    p_serve.add_argument(
        "--op-timeout", type=float, default=30.0,
        help="gateway: max queue wait before a timeout response"
        " (default: 30.0s)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="gateway: executor threads running batches (default: 4)",
    )
    p_serve.add_argument(
        "--byte-budget", type=int, default=None,
        help="gateway: LRU byte budget for warm snapshot-backed"
        " tenants (default: unbounded)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_facts = sub.add_parser("facts", help="generate a Doop-style facts dir")
    p_facts.add_argument("source", help="Java-subset source file")
    p_facts.add_argument("--out", required=True, help="output directory")
    p_facts.set_defaults(func=cmd_facts)

    p_emit = sub.add_parser(
        "emit", help="emit the specialized plain-Datalog program"
    )
    add_common(p_emit)
    p_emit.add_argument("--out", help="output file (default: stdout)")
    p_emit.set_defaults(func=cmd_emit)

    p_lint = sub.add_parser(
        "lint",
        help="statically verify a .dl program, a source program's IR,"
        " or emitted configurations",
    )
    p_lint.add_argument(
        "path",
        help="a .dl Datalog program, or a Java-subset source file",
    )
    p_lint.add_argument(
        "--emitted", action="store_true",
        help="also lint the Datalog program emitted for --config",
    )
    p_lint.add_argument(
        "--all-configs", action="store_true",
        help="lint the emitted program for every known configuration",
    )
    p_lint.add_argument(
        "--config", default="2-object+H", choices=_CONFIG_CHOICES,
        help="configuration for --emitted (default: 2-object+H)",
    )
    p_lint.add_argument(
        "--abstraction", default="ts",
        choices=sorted(set(_ABSTRACTIONS) | {"naive"}),
        help="instantiation to lint (ts, cs, or the naive baseline)",
    )
    p_lint.add_argument(
        "--all-abstractions", action="store_true",
        help="lint all three instantiations of each configuration",
    )
    p_lint.add_argument(
        "--strict-warnings", "-W", action="store_true",
        help="treat warnings as fatal",
    )
    p_lint.add_argument(
        "--verbose", "-v", action="store_true",
        help="also print note-severity diagnostics",
    )
    p_lint.add_argument(
        "--shard-plan", action="store_true",
        help="run the shard-safety analysis (DL4xx), print the"
        " partition/communication plan, and merge its diagnostics"
        " into the report (lints the emitted --config for source files)",
    )
    p_lint.add_argument(
        "--shard-key", default="heap", choices=("variable", "heap", "method"),
        help="partition key for --shard-plan (default: heap)",
    )
    p_lint.add_argument(
        "--cost", action="store_true",
        help="run the static cost & cardinality analysis (DL5xx),"
        " print the join-order plan, and merge its diagnostics into"
        " the report (lints the emitted --config for source files;"
        " --json embeds the repro-cost-plan/1 document)",
    )
    p_lint.add_argument(
        "--json", metavar="PATH",
        help="write a byte-stable repro-lint/1 JSON document here"
        " ('-' = stdout); diagnostics sorted by line/column/code",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_fig = sub.add_parser("figure6", help="regenerate the Figure 6 table")
    p_fig.add_argument("--scale", type=int, default=2)
    p_fig.add_argument("--repetitions", type=int, default=1)
    p_fig.add_argument("--csv", help="also write machine-readable CSV here")
    p_fig.add_argument(
        "--json",
        help="also write machine-readable JSON here"
        " (schema repro-figure6/8, see docs/api.md)",
    )
    p_fig.add_argument(
        "--no-query-latency", action="store_true",
        help="omit the service query-latency workload from the JSON",
    )
    p_fig.add_argument(
        "--no-incremental", action="store_true",
        help="omit the incremental edit-churn workload from the JSON",
    )
    p_fig.add_argument(
        "--no-checks", action="store_true",
        help="omit the client-checker precision audit from the JSON",
    )
    p_fig.add_argument(
        "--no-parallel", action="store_true",
        help="omit the sharded-fixpoint workload from the JSON",
    )
    p_fig.add_argument(
        "--no-kernels", action="store_true",
        help="omit the kernel-backend workload from the JSON",
    )
    p_fig.add_argument(
        "--no-serving", action="store_true",
        help="omit the open-loop serving workload from the JSON",
    )
    p_fig.add_argument(
        "--no-cost", action="store_true",
        help="omit the cost-ordered evaluation workload from the JSON",
    )
    p_fig.set_defaults(func=cmd_figure6)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark corpus: run suites, gate regressions, record"
        " trajectory points",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    b_run = bench_sub.add_parser(
        "run", help="execute a named suite (emits repro-bench/1)"
    )
    b_run.add_argument(
        "--suite", default="smoke", choices=("smoke", "micro", "corpus"),
        help="which suite to run (default: smoke)",
    )
    b_run.add_argument(
        "--json",
        help="write the repro-bench/1 document here ('-' for stdout)",
    )
    b_run.add_argument(
        "--quiet", action="store_true", help="no per-cell progress lines",
    )

    b_compare = bench_sub.add_parser(
        "compare", help="side-by-side entries of two bench documents"
    )
    b_compare.add_argument("current", help="repro-bench/1 document")
    b_compare.add_argument(
        "baseline", nargs="?", default="benchmarks/baseline.json",
        help="baseline document (default: benchmarks/baseline.json)",
    )

    b_gate = bench_sub.add_parser(
        "gate", help="fail (exit 1) on regressions against the baseline"
    )
    b_gate.add_argument("current", help="repro-bench/1 document to gate")
    b_gate.add_argument(
        "--baseline", default="benchmarks/baseline.json",
        help="committed baseline (default: benchmarks/baseline.json)",
    )
    b_gate.add_argument(
        "--tolerance", type=float, default=1.0,
        help="allowed slowdown fraction per entry (default: 1.0 = 2x)",
    )
    b_gate.add_argument(
        "--entry-tolerance", action="append", metavar="KEY=FLOAT",
        help="per-entry tolerance override (repeatable)",
    )
    b_gate.add_argument(
        "--inject-slowdown", type=float, default=1.0, metavar="FACTOR",
        help="multiply non-reference timings before gating (CI"
        " self-test that the gate can fail)",
    )
    b_gate.add_argument(
        "--update-baseline", action="store_true",
        help="re-pin the baseline from the current document instead"
        " of gating",
    )

    b_record = bench_sub.add_parser(
        "record",
        help="append a certified trajectory point to BENCH_<date>.json",
    )
    b_record.add_argument("document", help="repro-bench/1 document")
    b_record.add_argument(
        "--trajectory",
        help="trajectory file (default: BENCH_<today>.json)",
    )
    b_record.add_argument(
        "--description", help="set the trajectory file's description",
    )

    b_trend = bench_sub.add_parser(
        "trend", help="render trajectory files (v1 files migrated)"
    )
    b_trend.add_argument(
        "paths", nargs="*",
        help="trajectory files (default: BENCH_*.json in cwd)",
    )
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
