"""Unified relation-store substrate shared by every execution path.

The paper's Section 7 argument is that engine-level *representation* —
per-configuration relations plus proper join indices — is what makes
transformer strings competitive.  This package is where that machinery
lives, exactly once, for all four execution paths of the reproduction:

* the worklist solver (:mod:`repro.core.solver`),
* the interpreting Datalog engine (:mod:`repro.datalog.engine`),
* the compiling Datalog back-end (:mod:`repro.datalog.codegen`),
* the CFL flows-to solver (:mod:`repro.cfl.solver`).

Components:

:class:`Interner`
    A bijective value ↔ small-int symbol table.  Fixpoints that hold
    symbols across iterations (the CFL solver) hash ints instead of
    strings/tuples; results are decoded back at the results boundary.

:class:`Relation`
    A named set of equal-arity tuples with column-subset hash indices
    (planned up front or built lazily on first probe), per-relation
    counters, and the semi-naive ``stable``/``delta``/``pending``
    lifecycle implemented once instead of once per engine.

:class:`KeyedIndex`
    A bucket index over opaque (entity, join-key) composites — the
    domain-provided prefix-compatible bucket scheme the worklist
    solver uses for transformer-string joins.

:class:`TupleStore`
    A registry tying relations, keyed indices, a shared interner and
    per-relation counters together; ``describe()`` is the uniform
    statistics surface behind ``SolverStats``, ``--stats`` and the
    bench harness.

:func:`plan_indices`
    Derives the column-subset indices a Datalog program's joins will
    probe, up front, by reusing the binding-order analysis of
    :mod:`repro.lint`.

:mod:`repro.store.serialize`
    Serialization hooks — tagged value codec (extensible via
    :func:`register_value_codec`), interner and relation payloads —
    used by the :mod:`repro.service` snapshot format to persist a
    solved store and load it back without re-solving.
"""

from repro.store.interner import Interner
from repro.store.relation import Relation, Row, multimap
from repro.store.index import KeyedIndex
from repro.store.columnar import ColumnarRelation, ColumnarStore
from repro.store.serialize import (
    SerializationError,
    canonical_bytes,
    columnar_relation_from_payload,
    columnar_relation_to_payload,
    decode_value,
    encode_value,
    interner_from_payload,
    interner_to_payload,
    register_value_codec,
    relation_from_payload,
    relation_to_payload,
)
from repro.store.stats import RelationCounters
from repro.store.store import TupleStore
from repro.store.planner import plan_indices

__all__ = [
    "ColumnarRelation",
    "ColumnarStore",
    "Interner",
    "KeyedIndex",
    "Relation",
    "RelationCounters",
    "Row",
    "SerializationError",
    "TupleStore",
    "canonical_bytes",
    "columnar_relation_from_payload",
    "columnar_relation_to_payload",
    "decode_value",
    "encode_value",
    "interner_from_payload",
    "interner_to_payload",
    "multimap",
    "plan_indices",
    "register_value_codec",
    "relation_from_payload",
    "relation_to_payload",
]
