"""Columnar relation storage for the integer kernel backend.

The paper's Section 7 implementation claim is that configuration
specialization makes every join *fully indexed and fully flattened*:
once a relation's transformer-string letters are attributes, rows are
fixed-width integer records and joins are equality probes on known
column subsets.  :class:`ColumnarRelation` is the storage half of that
claim — each attribute lives in its own ``array('q')`` of machine
ints, and indices are buckets of *row ids* instead of buckets of
tuples, so the kernel compiler (:mod:`repro.compile.kernels`) can emit
straight-line loops that read ``column[row_id]`` without materializing
tuples in the hot path.

The semi-naive ``stable``/``delta``/``pending`` lifecycle of
:class:`repro.store.relation.Relation` is preserved, but becomes three
*contiguous id ranges* — rows are append-only (no :meth:`retract`),
so ``promote()`` is two mark advances instead of a list swap:

    ids [0, stable_end)      stable
    ids [stable_end, delta_end)   delta (the current frontier)
    ids [delta_end, len)     pending

Row *tuples* still exist exactly once, as the keys of the dedup dict
(``rows``) and the shared id → row spine; ``delta``/``pending``/
``lookup`` hand them out so the interpreted join paths (the
:class:`~repro.datalog.parallel.ParallelEngine` exchange/broadcast
rules) run unchanged over a columnar store.  Only the kernels touch
the arrays.

All values must be ``int`` — callers intern first (see
``repro.datalog.kernel.intern_program``).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.store.interner import Interner
from repro.store.relation import Relation, Row
from repro.store.stats import RelationCounters

#: Index keys: a bare int for single-column indices (probed without a
#: tuple allocation), a tuple of ints otherwise.
IndexKey = Union[int, Tuple[int, ...]]


class ColumnarRelation:
    """A named set of equal-arity int tuples stored column-wise."""

    __slots__ = (
        "name", "arity", "rows", "columns", "counters", "track_delta",
        "_row_of", "_indices", "_stable_end", "_delta_end", "_delta_cache",
    )

    def __init__(
        self,
        name: str,
        arity: int,
        counters: Optional[RelationCounters] = None,
        track_delta: bool = True,
    ):
        if arity is None:
            raise ValueError(
                f"columnar relation {name!r} needs a declared arity"
            )
        self.name = name
        self.arity = arity
        #: row tuple → row id (the dedup structure; iterating yields rows).
        self.rows: Dict[Row, int] = {}
        #: one machine-int array per attribute position.
        self.columns: List[array] = [array("q") for _ in range(arity)]
        self.counters = counters if counters is not None else RelationCounters()
        self.track_delta = track_delta
        #: row id → row tuple spine (references the dict keys; no copies).
        self._row_of: List[Row] = []
        self._indices: Dict[Tuple[int, ...], Dict[IndexKey, List[int]]] = {}
        self._stable_end = 0
        self._delta_end = 0
        self._delta_cache: Optional[List[Row]] = None

    # -- basic container protocol -----------------------------------------

    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, row: Row) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._row_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarRelation({self.name!r}/{self.arity},"
            f" {len(self._row_of)} rows)"
        )

    # -- insertion ---------------------------------------------------------

    def _check_row(self, row: Row) -> None:
        if len(row) != self.arity:
            raise ValueError(
                f"arity mismatch inserting {row!r} into"
                f" {self.name}/{self.arity}"
            )
        for value in row:
            if not isinstance(value, int):
                raise TypeError(
                    f"columnar relation {self.name!r} holds ints only;"
                    f" got {value!r} — intern values first"
                )

    def _append(self, row: Row) -> int:
        """Append a (new, checked) row to every storage structure."""
        rid = len(self._row_of)
        self.rows[row] = rid
        self._row_of.append(row)
        for position, column in enumerate(self.columns):
            column.append(row[position])
        for positions, index in self._indices.items():
            key = self._index_key(positions, row)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [rid]
            else:
                bucket.append(rid)
        self.counters.inserts += 1
        return rid

    def add(self, row: Row) -> bool:
        """Insert ``row`` into the pending frontier; True iff new."""
        self._check_row(row)
        if row in self.rows:
            self.counters.dedup_hits += 1
            return False
        rid = self._append(row)
        if not self.track_delta:
            # Worklist-style callers keep their own frontier: stabilize
            # immediately, exactly like Relation(track_delta=False).add.
            if self._stable_end == rid and self._delta_end == rid:
                self._stable_end = self._delta_end = rid + 1
        return True

    def load(self, row: Row) -> bool:
        """Insert ``row`` directly as stable (no frontier tracking).

        Stability is a *contiguous prefix* of row ids, so a load is
        only stable when no frontier has been cut yet (the extensional
        case).  A late load — after evaluation has started — lands in
        pending and joins the next frontier: harmless for semi-naive
        correctness (the row is simply re-derived against), never
        wrong.
        """
        self._check_row(row)
        if row in self.rows:
            self.counters.dedup_hits += 1
            return False
        rid = self._append(row)
        if self._stable_end == rid and self._delta_end == rid:
            self._stable_end = self._delta_end = rid + 1
        return True

    def add_all(self, rows: Iterable[Row]) -> int:
        """Insert many rows; returns the number actually new."""
        return sum(1 for row in rows if self.add(row))

    def retract(self, row: Row) -> bool:
        raise NotImplementedError(
            "columnar relations are append-only; retraction (DRed) runs"
            " on repro.store.relation.Relation"
        )

    # -- semi-naive lifecycle ----------------------------------------------

    @property
    def delta(self) -> List[Row]:
        """The current frontier as row tuples (interpreted join paths)."""
        if self._delta_cache is None:
            self._delta_cache = self._row_of[self._stable_end:self._delta_end]
        return self._delta_cache

    @property
    def delta_ids(self) -> range:
        """The current frontier as row ids (the kernel scan source)."""
        return range(self._stable_end, self._delta_end)

    @property
    def pending(self) -> List[Row]:
        """Rows inserted since the frontier was cut, as row tuples."""
        return self._row_of[self._delta_end:]

    @property
    def pending_ids(self) -> range:
        return range(self._delta_end, len(self._row_of))

    @property
    def stable(self) -> Set[Row]:
        """Rows that are neither delta nor pending."""
        return set(self._row_of[:self._stable_end])

    def promote(self) -> range:
        """Advance the lifecycle; returns the new frontier's id range.

        Same contract as :meth:`Relation.promote` (the return value is
        the new delta, truthy iff non-empty) — just ids, not rows.
        """
        self._stable_end = self._delta_end
        self._delta_end = len(self._row_of)
        self._delta_cache = None
        return range(self._stable_end, self._delta_end)

    # -- lookup ------------------------------------------------------------

    @staticmethod
    def _index_key(positions: Tuple[int, ...], row: Row) -> IndexKey:
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[p] for p in positions)

    def ensure_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[IndexKey, List[int]]:
        """Materialize (or fetch) the row-id bucket index for ``positions``.

        Positions must be sorted and unique (as produced by the index
        planner).  Single-column indices key buckets by the bare int.
        """
        if positions and positions[-1] >= self.arity:
            raise ValueError(
                f"index positions {positions!r} out of range for"
                f" {self.name}/{self.arity}"
            )
        index = self._indices.get(positions)
        if index is None:
            index = {}
            for rid, row in enumerate(self._row_of):
                key = self._index_key(positions, row)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [rid]
                else:
                    bucket.append(rid)
            self._indices[positions] = index
            self.counters.index_builds += 1
        return index

    def index_view(
        self, positions: Tuple[int, ...]
    ) -> Dict[IndexKey, List[int]]:
        """The live bucket dict (kernels inline ``.get`` probes on it)."""
        return self.ensure_index(positions)

    def lookup(self, positions: Tuple[int, ...], key: Tuple) -> List[Row]:
        """Rows whose projection onto ``positions`` equals ``key``.

        Same normalization contract as :meth:`Relation.lookup`; rows
        are materialized from the id buckets.
        """
        self.counters.probes += 1
        if not positions:
            return list(self._row_of)
        normalized = Relation._normalize(positions, key)
        if normalized is None:
            return []
        positions, key = normalized
        index = self.ensure_index(positions)
        probe: IndexKey = key[0] if len(positions) == 1 else key
        ids = index.get(probe)
        if not ids:
            return []
        row_of = self._row_of
        return [row_of[i] for i in ids]

    # -- introspection -------------------------------------------------------

    def row_at(self, rid: int) -> Row:
        """The row tuple with id ``rid`` (decode side of the kernels)."""
        return self._row_of[rid]

    def index_count(self) -> int:
        return len(self._indices)

    def index_entries(self) -> int:
        return sum(len(index) for index in self._indices.values())

    def snapshot(self) -> Set[Row]:
        """A copy of the current row set."""
        return set(self._row_of)


class ColumnarStore:
    """Registry of named columnar relations (the kernel-run store).

    Mirrors :class:`repro.store.store.TupleStore`: one shared interner,
    one :class:`RelationCounters` per relation name, and ``describe()``
    as the uniform statistics surface — so engine stats plumb through
    unchanged whether a run used tuples or columns.
    """

    def __init__(self, interner: Optional[Interner] = None):
        self.interner = interner if interner is not None else Interner()
        self._relations: Dict[str, ColumnarRelation] = {}
        self._counters: Dict[str, RelationCounters] = {}

    def counters(self, name: str) -> RelationCounters:
        counters = self._counters.get(name)
        if counters is None:
            counters = RelationCounters()
            self._counters[name] = counters
        return counters

    def relation(
        self,
        name: str,
        arity: int,
        track_delta: bool = True,
    ) -> ColumnarRelation:
        """The columnar relation called ``name``, created on first request."""
        relation = self._relations.get(name)
        if relation is None:
            relation = ColumnarRelation(
                name, arity, counters=self.counters(name),
                track_delta=track_delta,
            )
            self._relations[name] = relation
        elif arity is not None and relation.arity != arity:
            raise ValueError(
                f"relation {name!r} exists with arity {relation.arity},"
                f" requested {arity}"
            )
        return relation

    def relations(self) -> Dict[str, ColumnarRelation]:
        """Live name → relation view."""
        return self._relations

    def describe(self) -> Dict[str, Dict[str, int]]:
        """Per-relation statistics (same keys as ``TupleStore.describe``)."""
        names = sorted(set(self._counters) | set(self._relations))
        out: Dict[str, Dict[str, int]] = {}
        for name in names:
            counters = self.counters(name)
            entry = counters.as_dict()
            relation = self._relations.get(name)
            entry["rows"] = len(relation) if relation is not None else 0
            entry["indexes"] = (
                relation.index_count() if relation is not None else 0
            )
            entry["index_entries"] = (
                relation.index_entries() if relation is not None else 0
            )
            out[name] = entry
        return out
