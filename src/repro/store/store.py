"""The tuple store: relations + keyed indices + interner + counters.

One :class:`TupleStore` per engine run.  It carries the run's shared
:class:`~repro.store.interner.Interner` and hands out
:class:`~repro.store.relation.Relation` and
:class:`~repro.store.index.KeyedIndex` instances with one
:class:`~repro.store.stats.RelationCounters` per relation *name* — a
relation and all indices attached to it report into the same row of
``describe()``, which is the uniform statistics surface surfaced
through ``SolverStats``, ``AnalysisResult.stats``, the bench harness
and the CLI's ``--stats`` flag.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.store.index import KeyedIndex
from repro.store.interner import Interner
from repro.store.relation import Relation
from repro.store.stats import RelationCounters


class TupleStore:
    """Registry of named relations and their indices."""

    def __init__(self, interner: Optional[Interner] = None):
        self.interner = interner if interner is not None else Interner()
        self._relations: Dict[str, Relation] = {}
        self._keyed: Dict[str, List[KeyedIndex]] = {}
        self._counters: Dict[str, RelationCounters] = {}

    def counters(self, name: str) -> RelationCounters:
        """The (shared) counters object for relation ``name``."""
        counters = self._counters.get(name)
        if counters is None:
            counters = RelationCounters()
            self._counters[name] = counters
        return counters

    def relation(
        self,
        name: str,
        arity: Optional[int] = None,
        track_delta: bool = True,
    ) -> Relation:
        """The relation called ``name``, created on first request."""
        relation = self._relations.get(name)
        if relation is None:
            relation = Relation(
                name, arity, counters=self.counters(name),
                track_delta=track_delta,
            )
            self._relations[name] = relation
        elif arity is not None and relation.arity not in (None, arity):
            raise ValueError(
                f"relation {name!r} exists with arity {relation.arity},"
                f" requested {arity}"
            )
        return relation

    def keyed_index(self, name: str, label: Optional[str] = None) -> KeyedIndex:
        """A new keyed index reporting into relation ``name``'s counters."""
        index = KeyedIndex(label or name, self.counters(name))
        self._keyed.setdefault(name, []).append(index)
        return index

    def relations(self) -> Dict[str, Relation]:
        """Live name → relation view."""
        return self._relations

    # -- statistics surface -------------------------------------------------

    def describe(self) -> Dict[str, Dict[str, int]]:
        """Per-relation statistics: rows, counters, index count/sizes.

        Keys: ``rows``, ``inserts``, ``dedup_hits``, ``probes``,
        ``index_builds``, ``indexes``, ``index_entries``.
        """
        names = sorted(set(self._counters) | set(self._relations))
        out: Dict[str, Dict[str, int]] = {}
        for name in names:
            counters = self.counters(name)
            entry = counters.as_dict()
            relation = self._relations.get(name)
            keyed = self._keyed.get(name, ())
            entry["rows"] = len(relation) if relation is not None else 0
            entry["indexes"] = (
                (relation.index_count() if relation is not None else 0)
                + len(keyed)
            )
            entry["index_entries"] = (
                (relation.index_entries() if relation is not None else 0)
                + sum(len(index) for index in keyed)
            )
            out[name] = entry
        return out
