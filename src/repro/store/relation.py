"""Delta-aware indexed relation storage.

A :class:`Relation` is a named set of equal-arity tuples plus:

* **column-subset hash indices**, planned up front via
  :meth:`ensure_index` (see :mod:`repro.store.planner`) or built
  lazily on first probe, and maintained incrementally on insert — the
  standard scheme the paper assumes when it discusses join efficiency
  (Section 7: "A standard optimization performed by a Datalog engine is
  to build indices … and to use these indices in the join");

* the **semi-naive lifecycle**: rows are partitioned into *stable*
  (seen before the current frontier), *delta* (the current frontier)
  and *pending* (discovered since the frontier was cut).
  :meth:`promote` advances the lifecycle — implemented once here
  instead of once per engine.  Worklist-style tuple-at-a-time solvers
  that keep their own frontier construct relations with
  ``track_delta=False``;

* **uniform counters** (:class:`repro.store.stats.RelationCounters`).

The lifecycle invariants (checked by property tests in
``tests/store/test_relation.py``)::

    rows  ==  stable ∪ delta ∪ pending      (disjoint union)
    promote():  stable ∪= delta;  delta = pending;  pending = ∅
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.store.stats import RelationCounters

Row = Tuple


def multimap(pairs: Iterable[Tuple]) -> Dict:
    """A one-to-many mapping ``{key: [value, …]}`` built from pairs.

    The shared helper behind the static input indices of the worklist
    and CFL solvers; lives here so no execution path hand-rolls its own
    index plumbing.
    """
    mapping: Dict = {}
    for key, value in pairs:
        bucket = mapping.get(key)
        if bucket is None:
            mapping[key] = [value]
        else:
            bucket.append(value)
    return mapping


class Relation:
    """A named tuple set with planned/lazy indices and delta lifecycle."""

    __slots__ = (
        "name", "arity", "rows", "counters", "track_delta",
        "_indices", "_delta", "_pending",
    )

    def __init__(
        self,
        name: str,
        arity: Optional[int] = None,
        counters: Optional[RelationCounters] = None,
        track_delta: bool = True,
    ):
        self.name = name
        self.arity = arity
        self.rows: Set[Row] = set()
        self.counters = counters if counters is not None else RelationCounters()
        self.track_delta = track_delta
        self._indices: Dict[Tuple[int, ...], Dict[Tuple, List[Row]]] = {}
        #: Current frontier (last promoted batch), in derivation order.
        self._delta: List[Row] = []
        #: Rows inserted since the frontier was cut, in derivation order.
        self._pending: List[Row] = []

    # -- basic container protocol -----------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: Row) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}/{self.arity}, {len(self.rows)} rows)"

    # -- insertion ---------------------------------------------------------

    def _check_arity(self, row: Row) -> None:
        if self.arity is not None and len(row) != self.arity:
            raise ValueError(
                f"arity mismatch inserting {row!r} into"
                f" {self.name}/{self.arity}"
            )

    def add(self, row: Row) -> bool:
        """Insert ``row`` into the pending frontier; True iff new."""
        self._check_arity(row)
        if row in self.rows:
            self.counters.dedup_hits += 1
            return False
        self.rows.add(row)
        self.counters.inserts += 1
        if self.track_delta:
            self._pending.append(row)
        for positions, index in self._indices.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
            else:
                bucket.append(row)
        return True

    def load(self, row: Row) -> bool:
        """Insert ``row`` directly as stable (no frontier tracking).

        Used for extensional facts installed before evaluation begins:
        they must be joinable but must not appear in any delta.
        """
        self._check_arity(row)
        if row in self.rows:
            self.counters.dedup_hits += 1
            return False
        self.rows.add(row)
        self.counters.inserts += 1
        for positions, index in self._indices.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
            else:
                bucket.append(row)
        return True

    def add_all(self, rows: Iterable[Row]) -> int:
        """Insert many rows; returns the number actually new."""
        return sum(1 for row in rows if self.add(row))

    # -- retraction ---------------------------------------------------------

    def retract(self, row: Row) -> bool:
        """Remove ``row`` everywhere it lives; True iff it was present.

        The delete half of the incremental lifecycle (DRed overdeletion
        runs through here): the row leaves the row set, every
        materialized column-subset index, *and* — when it has not yet
        been promoted past the frontier — the ``delta``/``pending``
        lists, so a retracted row can never resurface from a later
        :meth:`promote` or linger in an index bucket.
        """
        if row not in self.rows:
            return False
        self.rows.discard(row)
        self.counters.retracts += 1
        for positions, index in self._indices.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is not None:
                try:
                    bucket.remove(row)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del index[key]
        if self.track_delta:
            if row in self._pending:
                self._pending = [r for r in self._pending if r != row]
            if row in self._delta:
                self._delta = [r for r in self._delta if r != row]
        return True

    # -- semi-naive lifecycle ----------------------------------------------

    @property
    def delta(self) -> List[Row]:
        """The current frontier (rows promoted by the last :meth:`promote`)."""
        return self._delta

    @property
    def pending(self) -> List[Row]:
        """Rows inserted since the frontier was last cut."""
        return self._pending

    @property
    def stable(self) -> Set[Row]:
        """Rows that are neither delta nor pending."""
        return self.rows.difference(self._delta, self._pending)

    def promote(self) -> List[Row]:
        """Advance the lifecycle: delta joins stable, pending becomes the
        new delta (returned)."""
        self._delta = self._pending
        self._pending = []
        return self._delta

    # -- lookup ------------------------------------------------------------

    @staticmethod
    def _normalize(
        positions: Tuple[int, ...], key: Tuple
    ) -> Optional[Tuple[Tuple[int, ...], Tuple]]:
        """Sort + dedup ``positions``, remapping ``key`` alongside.

        Returns ``None`` when a duplicated position carries two
        different key values (no row can match).  Raises ``ValueError``
        when key and positions disagree in length.
        """
        if len(key) != len(positions):
            raise ValueError(
                f"lookup key {key!r} does not match positions {positions!r}"
            )
        if all(
            positions[i] < positions[i + 1] for i in range(len(positions) - 1)
        ):
            return positions, key
        merged: Dict[int, object] = {}
        for position, value in zip(positions, key):
            if position in merged:
                if merged[position] != value:
                    return None
            else:
                merged[position] = value
        ordered = tuple(sorted(merged))
        return ordered, tuple(merged[p] for p in ordered)

    def ensure_index(self, positions: Tuple[int, ...]) -> Dict[Tuple, List[Row]]:
        """Materialize (or fetch) the index keyed by ``positions``.

        Called up front by index planning; also the lazy fallback on
        first probe.  Positions must already be sorted and unique.
        """
        if self.arity is not None and positions and positions[-1] >= self.arity:
            raise ValueError(
                f"index positions {positions!r} out of range for"
                f" {self.name}/{self.arity}"
            )
        index = self._indices.get(positions)
        if index is None:
            index = {}
            for row in self.rows:
                key = tuple(row[i] for i in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
            self._indices[positions] = index
            self.counters.index_builds += 1
        return index

    def index_view(self, positions: Tuple[int, ...]) -> Dict[Tuple, List[Row]]:
        """The live index dict for ``positions`` (for compiled fast
        paths that inline ``.get`` probes); builds it if missing."""
        return self.ensure_index(positions)

    def lookup(self, positions: Tuple[int, ...], key: Tuple) -> List[Row]:
        """Rows whose projection onto ``positions`` equals ``key``.

        ``positions`` in any order, duplicates allowed: they are
        normalized (sorted + deduplicated, with ``key`` remapped).  A
        duplicated position with conflicting values matches nothing.
        An empty ``positions`` scans the whole relation.
        """
        self.counters.probes += 1
        if not positions:
            return list(self.rows)
        normalized = self._normalize(positions, key)
        if normalized is None:
            return []
        positions, key = normalized
        return self.ensure_index(positions).get(key, [])

    # -- introspection -------------------------------------------------------

    def index_count(self) -> int:
        """Number of materialized indices (used by engine statistics)."""
        return len(self._indices)

    def index_entries(self) -> int:
        """Total bucket count across all materialized indices."""
        return sum(len(index) for index in self._indices.values())

    def snapshot(self) -> Set[Row]:
        """A copy of the current row set."""
        return set(self.rows)
