"""Keyed bucket indices over composite join keys.

The worklist solver's transformer-string joins are not column-subset
lookups: the domain supplies *join-compatibility buckets*
(:meth:`AbstractionDomain.insert_keys` / ``probe_keys``) and a fact is
filed under several buckets so that probing enumerates exactly the
composable partners (paper Section 7's prefix-compatible joins).

A :class:`KeyedIndex` stores those buckets.  Keys are opaque hashable
composites — ``(entity, context-letter-tuple)`` in the worklist solver,
already-interned ints in the CFL solver — and bucket lookup is one dict
probe on the composite itself.  Routing keys through the store's
:class:`repro.store.Interner` here would re-hash the same composite and
then pay a second lookup per probe, so interning is reserved for
callers that hold symbols across a fixpoint (the CFL path) and for the
results boundary.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.store.stats import RelationCounters

_EMPTY: Tuple = ()


class KeyedIndex:
    """Bucket lists keyed by composite join keys."""

    __slots__ = ("name", "counters", "_buckets")

    def __init__(self, name: str, counters: RelationCounters):
        self.name = name
        self.counters = counters
        self._buckets: dict = {}
        counters.index_builds += 1

    def add(self, key: Hashable, payload) -> None:
        """File ``payload`` under ``key``."""
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [payload]
        else:
            bucket.append(payload)

    def discard(self, key: Hashable, payload) -> bool:
        """Remove one occurrence of ``payload`` from ``key``'s bucket.

        Returns True iff something was removed; an emptied bucket is
        dropped so retraction leaves no stale keys behind (the mirror
        of :meth:`add`, used by the incremental engine's DRed path).
        """
        bucket = self._buckets.get(key)
        if bucket is None:
            return False
        try:
            bucket.remove(payload)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[key]
        return True

    def probe(self, key: Hashable) -> List:
        """The bucket for ``key`` (empty if never inserted)."""
        self.counters.probes += 1
        return self._buckets.get(key, _EMPTY)

    def __len__(self) -> int:
        """Number of non-empty buckets."""
        return len(self._buckets)
