"""Serialization hooks for the relation-store substrate.

The snapshot format of :mod:`repro.service` persists a solved
:class:`~repro.store.store.TupleStore` so a later process can answer
queries without re-solving.  The store layer owns the mechanics — how a
value, an :class:`~repro.store.interner.Interner` and a
:class:`~repro.store.relation.Relation` become JSON-compatible payloads
and come back *identical* — while the service layer owns the file
format (schema header, digest, config).

Values are encoded with a small tagged scheme: a plain ``str`` encodes
as itself (the overwhelmingly common case: entity names and heap-site
labels), everything else as a ``[tag, …]`` list.  Built-in tags cover
``int``, ``bool``, ``None`` and (nested) ``tuple``; domain types that
live above the store — e.g. transformer strings — register their own
codec via :func:`register_value_codec`, keeping the layering intact
(the store never imports :mod:`repro.core`).

Round-trip guarantees (property-tested in
``tests/store/test_serialize.py``):

* ``decode_value(encode_value(v)) == v`` for every supported value;
* an interner rebuilt from its payload assigns the **same dense ids**
  to the same values, in the same order;
* a relation rebuilt from its payload holds an identical row set.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Hashable, List, Optional, Tuple, Type

from repro.store.columnar import ColumnarRelation
from repro.store.interner import Interner
from repro.store.relation import Relation
from repro.store.stats import RelationCounters


class SerializationError(ValueError):
    """An unsupported value or a malformed payload."""


def canonical_bytes(payload) -> bytes:
    """The canonical UTF-8 JSON encoding of a payload: keys sorted, no
    whitespace.  Snapshot digesting and the serving registry's
    byte-budget accounting both measure exactly these bytes, so the
    digested size and the size charged against an eviction budget
    always agree."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


#: tag -> decoder(payload_list) -> value
_DECODERS: Dict[str, Callable[[List], Hashable]] = {}
#: (class, tag, encoder(value) -> payload_list), probed in order.
_CLASS_ENCODERS: List[Tuple[Type, str, Callable]] = []


def register_value_codec(
    tag: str,
    cls: Type,
    encode: Callable[[object], List],
    decode: Callable[[List], Hashable],
) -> None:
    """Register a codec for a domain type the store itself doesn't know.

    ``encode`` maps an instance to the payload list *after* the tag;
    ``decode`` receives that list back.  Registration is idempotent per
    tag (re-registering the same tag replaces the codec).
    """
    _DECODERS[tag] = decode
    for index, (existing_cls, existing_tag, _) in enumerate(_CLASS_ENCODERS):
        if existing_tag == tag:
            _CLASS_ENCODERS[index] = (cls, tag, encode)
            return
    _CLASS_ENCODERS.append((cls, tag, encode))


def encode_value(value: Hashable):
    """Encode one attribute value as a JSON-compatible payload."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):  # before int: bool subclasses int
        return ["b", 1 if value else 0]
    if isinstance(value, int):
        return ["i", value]
    if value is None:
        return ["n"]
    if isinstance(value, tuple):
        return ["u"] + [encode_value(item) for item in value]
    for cls, tag, encode in _CLASS_ENCODERS:
        if isinstance(value, cls):
            return [tag] + encode(value)
    raise SerializationError(
        f"cannot serialize value of type {type(value).__name__}: {value!r}"
    )


def decode_value(payload) -> Hashable:
    """Invert :func:`encode_value`."""
    if isinstance(payload, str):
        return payload
    if not isinstance(payload, list) or not payload:
        raise SerializationError(f"malformed value payload: {payload!r}")
    tag = payload[0]
    if tag == "u":
        return tuple(decode_value(item) for item in payload[1:])
    if tag == "i":
        return int(payload[1])
    if tag == "b":
        return bool(payload[1])
    if tag == "n":
        return None
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise SerializationError(f"unknown value tag {tag!r}")
    return decoder(payload[1:])


# -- interner ---------------------------------------------------------------


def interner_to_payload(interner: Interner) -> List:
    """The interner's values in dense-id order (id == list position)."""
    return [encode_value(interner.value_of(i)) for i in range(len(interner))]


def interner_from_payload(payload: List) -> Interner:
    """Rebuild an interner assigning the same ids to the same values."""
    interner = Interner()
    for position, encoded in enumerate(payload):
        symbol = interner.intern(decode_value(encoded))
        if symbol != position:
            raise SerializationError(
                f"interner payload not dense: value at position {position}"
                f" re-interned as {symbol} (duplicate entry?)"
            )
    return interner


# -- relations --------------------------------------------------------------


def relation_to_payload(relation: Relation, interner: Interner) -> Dict:
    """One relation as ``{name, arity, rows}`` with interned attributes.

    Every attribute value is routed through ``interner`` (shared across
    the relations of one store so repeated entity names are stored
    once); rows are sorted for a canonical, digest-stable payload.
    """
    rows = sorted(
        [interner.intern(value) for value in row] for row in relation.rows
    )
    return {"name": relation.name, "arity": relation.arity, "rows": rows}


def relation_from_payload(
    payload: Dict,
    interner: Interner,
    counters: Optional[RelationCounters] = None,
    track_delta: bool = False,
) -> Relation:
    """Rebuild a relation, decoding attributes through ``interner``.

    Rows are installed via :meth:`Relation.load` (stable, no frontier)
    — a snapshot is settled data, not a fixpoint in progress.
    """
    relation = Relation(
        payload["name"], payload["arity"], counters=counters,
        track_delta=track_delta,
    )
    for row in payload["rows"]:
        if len(row) != relation.arity:
            raise SerializationError(
                f"relation {relation.name!r} row {row!r} has"
                f" {len(row)} attributes, expected {relation.arity}"
            )
        relation.load(tuple(interner.value_of(symbol) for symbol in row))
    return relation


# -- columnar relations -----------------------------------------------------


def columnar_relation_to_payload(
    relation: ColumnarRelation,
    interner: Interner,
    run_interner: Optional[Interner] = None,
) -> Dict:
    """A columnar relation as the same ``{name, arity, rows}`` payload.

    A kernel run holds ids relative to its *own* dense interner
    (``run_interner``); attributes are decoded through it and re-interned
    through the shared payload ``interner``, so a snapshot written from
    a columnar store is byte-identical to one written from the
    equivalent tuple store (and loadable by either
    :func:`relation_from_payload` or
    :func:`columnar_relation_from_payload`).  With ``run_interner=None``
    the relation's ints *are* the values.
    """
    if run_interner is None:
        rows = sorted(
            [interner.intern(value) for value in row] for row in relation.rows
        )
    else:
        rows = sorted(
            [interner.intern(run_interner.value_of(value)) for value in row]
            for row in relation.rows
        )
    return {"name": relation.name, "arity": relation.arity, "rows": rows}


def columnar_relation_from_payload(
    payload: Dict,
    interner: Interner,
    run_interner: Optional[Interner] = None,
    counters: Optional[RelationCounters] = None,
    track_delta: bool = False,
) -> ColumnarRelation:
    """Rebuild a columnar relation from a ``{name, arity, rows}`` payload.

    Attributes come back through the payload ``interner``; with a
    ``run_interner`` they are re-interned into the run's dense int
    domain (the columnar store holds ints only), otherwise the decoded
    values must already be ints.
    """
    relation = ColumnarRelation(
        payload["name"], payload["arity"], counters=counters,
        track_delta=track_delta,
    )
    for row in payload["rows"]:
        if len(row) != relation.arity:
            raise SerializationError(
                f"relation {relation.name!r} row {row!r} has"
                f" {len(row)} attributes, expected {relation.arity}"
            )
        values = tuple(interner.value_of(symbol) for symbol in row)
        if run_interner is not None:
            values = tuple(run_interner.intern(value) for value in values)
        relation.load(values)
    return relation
