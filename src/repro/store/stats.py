"""Uniform per-relation counters.

Every relation (and every keyed index attached to it) shares one
:class:`RelationCounters` instance, so a single table answers "how much
work did this relation do" identically across the worklist solver, both
Datalog engines and the CFL solver:

* ``inserts`` — rows actually stored (new facts);
* ``dedup_hits`` — insert attempts rejected because the row existed;
* ``probes`` — index lookups issued against the relation;
* ``index_builds`` — indices materialized (planned or on demand);
* ``retracts`` — rows actually removed (the incremental engine's
  DRed overdeletion path; zero for batch solves).

Index *sizes* are reported by the owning :class:`repro.store.TupleStore`
(``describe()``) because they are a property of the live structures,
not a monotone counter.
"""

from __future__ import annotations

from typing import Dict


class RelationCounters:
    """Monotone counters for one named relation."""

    __slots__ = ("inserts", "dedup_hits", "probes", "index_builds", "retracts")

    def __init__(self) -> None:
        self.inserts = 0
        self.dedup_hits = 0
        self.probes = 0
        self.index_builds = 0
        self.retracts = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "inserts": self.inserts,
            "dedup_hits": self.dedup_hits,
            "probes": self.probes,
            "index_builds": self.index_builds,
            "retracts": self.retracts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RelationCounters(inserts={self.inserts},"
            f" dedup_hits={self.dedup_hits}, probes={self.probes},"
            f" index_builds={self.index_builds}, retracts={self.retracts})"
        )
