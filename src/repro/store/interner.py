"""Value interning: a bijective symbol table of hashables ↔ small ints.

Joins in every execution path hash entity names (``"T.main/x1"``),
heap-site labels (``"h3"``) and context-letter tuples billions of times
in aggregate; hashing a Python ``int`` is both cheaper and collision-
free.  The interner assigns each distinct value a dense small integer
once, so hot joins operate on ints, and the results boundary decodes
symbols back to the original values (``value_of`` / ``decode_row``).

Interning is total and injective: ``value_of(intern(v)) == v`` for any
hashable ``v`` (the property test in ``tests/store/test_interner.py``).
Probing with a never-seen value must not grow the table, so probes use
:meth:`id_of`, which returns ``None`` instead of allocating.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple


class Interner:
    """Dense, insertion-ordered value ↔ int symbol table."""

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._values: List[Hashable] = []

    def intern(self, value: Hashable) -> int:
        """The symbol for ``value``, allocating one if it is new."""
        symbol = self._ids.get(value)
        if symbol is None:
            symbol = len(self._values)
            self._ids[value] = symbol
            self._values.append(value)
        return symbol

    def id_of(self, value: Hashable) -> Optional[int]:
        """The symbol for ``value`` if already interned, else ``None``.

        Probe-side counterpart of :meth:`intern`: looking up a value
        that was never inserted must not allocate a fresh symbol.
        """
        return self._ids.get(value)

    def value_of(self, symbol: int) -> Hashable:
        """The value a symbol decodes to (``IndexError`` if unknown)."""
        return self._values[symbol]

    def intern_row(self, row: Iterable[Hashable]) -> Tuple[int, ...]:
        """Intern every attribute of a tuple."""
        return tuple(self.intern(value) for value in row)

    def decode_row(self, row: Iterable[int]) -> Tuple[Hashable, ...]:
        """Decode every attribute of an interned tuple."""
        return tuple(self._values[symbol] for symbol in row)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def __len__(self) -> int:
        return len(self._values)
