"""Up-front index planning from a Datalog program's join patterns.

The interpreting engine historically built column-subset indices lazily
on first probe; the compiling back-end derived its plan as a side
effect of code emission.  This module computes the same information
once, ahead of evaluation, by reusing the binding-order analysis of
:func:`repro.lint.passes.binding_orders`: walking each rule body in the
engine's left-to-right join order, every positive stored literal
reached with a non-empty set of bound argument positions will probe an
index keyed by exactly those positions.

The plan covers the semi-naive delta variants for free: a delta
occurrence is *scanned*, not probed, and scanning needs no index, while
the bound positions of every other literal are unchanged (the delta
variant only swaps the source of one literal, not the join order).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.datalog.ast import Program
from repro.lint.passes import binding_orders

IndexPlan = Dict[str, Set[Tuple[int, ...]]]


def plan_indices(
    program: Program, builtins: Optional[Iterable[str]] = None
) -> IndexPlan:
    """Predicate → set of column-position tuples its joins will probe.

    ``builtins`` are the evaluable predicate names (they are computed,
    never probed); negated literals are membership tests over the full
    row set and need no index either.
    """
    builtin_names = set(builtins) if builtins is not None else set()
    plan: IndexPlan = {}
    for rule in program.rules:
        if rule.is_fact():
            continue
        for literal, positions in binding_orders(rule):
            if literal.negated or literal.pred in builtin_names:
                continue
            if not positions:
                continue  # full scan, no index
            plan.setdefault(literal.pred, set()).add(positions)
    return plan
