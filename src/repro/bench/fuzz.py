"""Random well-formed program generation for differential testing.

The repository's strongest correctness argument is agreement between
independent implementations: the worklist solver, the three compiled
Datalog programs, and (context-insensitively) the CFL-reachability
solvers.  This module generates arbitrary well-formed IR programs so
that agreement can be checked far beyond the hand-written corpus.

Programs are built from a fixed vocabulary of pointer-relevant
statements over randomly grown classes; every construct the deduction
rules model can appear (allocations, assignments, instance and static
field accesses, virtual and static calls, returns, throws and catches),
with all static references resolvable by construction.  Generation is
deterministic in the seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.frontend import ir


class _Fuzz:
    def __init__(self, seed: int, size: int):
        self.rng = random.Random(seed)
        self.size = size
        self.program = ir.Program()
        self._heap = 0
        self._invk = 0
        self._var = 0
        self.static_methods: List[ir.Method] = []
        self.instance_signatures: List[str] = []
        self.fields: List[str] = []
        self.static_fields: List[str] = []

    # -- naming ------------------------------------------------------------

    def heap_label(self) -> str:
        self._heap += 1
        return f"fz/h{self._heap}"

    def invk_label(self) -> str:
        self._invk += 1
        return f"fz/c{self._invk}"

    def fresh_local(self, method: ir.Method) -> str:
        self._var += 1
        return method.local(f"v{self._var}")

    # -- structure ------------------------------------------------------------

    def build(self) -> ir.Program:
        rng = self.rng
        n_classes = rng.randint(2, 3 + self.size // 4)
        shared_fields = [f"f{k}" for k in range(rng.randint(1, 3))]
        self.fields = shared_fields

        classes = []
        for index in range(n_classes):
            superclass = (
                rng.choice(classes).name
                if classes and rng.random() < 0.3
                else None
            )
            decl = self.program.add_class(
                ir.ClassDecl(f"Fz{index}", superclass)
            )
            for field_name in shared_fields:
                if rng.random() < 0.6:
                    decl.fields.append(field_name)
            if rng.random() < 0.4:
                static_field = f"g{index}"
                decl.static_fields.append(static_field)
                self.static_fields.append((decl.name, static_field))
            classes.append(decl)

        # Methods: declare signatures first so calls can target them.
        for decl in classes:
            for k in range(rng.randint(1, 2)):
                arity = rng.randint(0, 2)
                is_static = rng.random() < 0.4
                method = ir.Method(
                    f"m{k}", decl.name,
                    tuple(
                        f"{decl.name}.m{k}/p{j}" for j in range(arity)
                    ),
                    is_static=is_static,
                )
                decl.add_method(method)
                if is_static:
                    self.static_methods.append(method)
                else:
                    self.instance_signatures.append(method.signature)

        main_cls = self.program.add_class(ir.ClassDecl("FzMain"))
        main = main_cls.add_method(
            ir.Method("main", "FzMain", ("FzMain.main/args",), is_static=True)
        )
        self.program.main_class = "FzMain"

        for decl in classes:
            for method in decl.methods.values():
                self.fill_body(method, budget=rng.randint(2, 4 + self.size))
        self.fill_body(main, budget=6 + 2 * self.size)

        self.program.validate()
        return self.program

    # -- statements ---------------------------------------------------------------

    def fill_body(self, method: ir.Method, budget: int) -> None:
        rng = self.rng
        pool: List[str] = list(method.params)
        if not method.is_static:
            pool.append(method.this_var)

        def any_var() -> Optional[str]:
            return rng.choice(pool) if pool else None

        # Seed the pool so every body has at least one pointer value.
        first = self.fresh_local(method)
        method.body.append(
            ir.New(first, rng.choice(list(self.program.classes)), self.heap_label())
        )
        pool.append(first)

        for _ in range(budget):
            kind = rng.choice(
                ("new", "assign", "load", "store", "virtual", "static",
                 "sload", "sstore", "throw")
            )
            if kind == "new":
                dst = self.fresh_local(method)
                method.body.append(
                    ir.New(
                        dst, rng.choice(list(self.program.classes)),
                        self.heap_label(),
                    )
                )
                pool.append(dst)
            elif kind == "assign":
                src = any_var()
                dst = self.fresh_local(method)
                method.body.append(ir.Assign(dst, src))
                pool.append(dst)
            elif kind == "load":
                base = any_var()
                dst = self.fresh_local(method)
                method.body.append(
                    ir.Load(dst, base, rng.choice(self.fields))
                )
                pool.append(dst)
            elif kind == "store":
                method.body.append(
                    ir.Store(any_var(), rng.choice(self.fields), any_var())
                )
            elif kind == "virtual" and self.instance_signatures:
                signature = rng.choice(self.instance_signatures)
                name, _, arity = signature.partition("/")
                args = tuple(any_var() for _ in range(int(arity)))
                dst = self.fresh_local(method) if rng.random() < 0.7 else None
                method.body.append(
                    ir.VirtualCall(dst, any_var(), name, args, self.invk_label())
                )
                if dst:
                    pool.append(dst)
            elif kind == "static" and self.static_methods:
                target = rng.choice(self.static_methods)
                args = tuple(any_var() for _ in range(len(target.params)))
                dst = self.fresh_local(method) if rng.random() < 0.7 else None
                method.body.append(
                    ir.StaticCall(dst, target.cls, target.name, args,
                                  self.invk_label())
                )
                if dst:
                    pool.append(dst)
            elif kind == "sload" and self.static_fields:
                cls, field_name = rng.choice(self.static_fields)
                dst = self.fresh_local(method)
                method.body.append(ir.StaticLoad(dst, cls, field_name))
                pool.append(dst)
            elif kind == "sstore" and self.static_fields:
                cls, field_name = rng.choice(self.static_fields)
                method.body.append(
                    ir.StaticStore(cls, field_name, any_var())
                )
            elif kind == "throw" and self.rng.random() < 0.5:
                method.body.append(ir.Throw(any_var()))

        if rng.random() < 0.8:
            method.body.append(ir.Return(rng.choice(pool)))
        if rng.random() < 0.3:
            catch = method.local(f"catch{self._var}")
            method.add_catch_var(catch)


def random_program(seed: int, size: int = 3) -> ir.Program:
    """A deterministic random well-formed program.

    ``size`` loosely scales class count and statement budget.
    """
    return _Fuzz(seed, size).build()
