"""Synthetic DaCapo-analogue workloads.

The paper evaluates on seven DaCapo 2006 benchmarks processed by Soot.
Neither the DaCapo jars nor a JVM frontend are available here, so each
benchmark is replaced by a *synthetic analogue*: a deterministic
generator that emits a Java-subset IR program exhibiting the structural
features the paper attributes to (or that characterize) the original —
at a scale a pure-Python analysis completes in seconds.  Figure 6
compares two abstractions on the *same* input, so its shape survives
this substitution (see DESIGN.md, Substitutions).

Building blocks (the cost/imprecision generators of the pointer-analysis
literature):

* **shared static utilities** — identity and heap-roundtrip helpers
  called from every corner of the program.  A method reachable under
  ``N`` contexts has every local fact enumerated ``N`` times by context
  strings but represented once (``ε``) by transformer strings — the
  heart of the paper's fact-count reduction;
* **wrapper chains** — receiver-polymorphic identity methods calling
  into the utilities at every level (Figure 1's ``id``/``id2`` shape at
  depth, times a configurable receiver population);
* **factories** — ``make()`` methods whose product is routed through an
  identity helper before being returned: the Figure 5 pattern whose
  return-composition generates the quadratic context-string
  cross-product under ``+H`` configurations;
* **containers** — one-slot collections written from many sites;
* **dispatch hierarchies** — subclasses reached through a container, so
  one call site fans out to many targets;
* **AST-with-parent-pointers plus a stack** — the `bloat` pattern of
  paper Section 8, producing subsuming transformer-string facts through
  dual data-flow paths.

Each named benchmark mixes these blocks with different weights.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.frontend import ir


@dataclass(frozen=True)
class WorkloadSpec:
    """Weights for the building blocks of one synthetic benchmark."""

    name: str
    seed: int = 7
    value_classes: int = 3      # allocation types passed around
    wrapper_chains: int = 2     # independent identity-method chains
    chain_depth: int = 3        # calls per chain
    receivers_per_chain: int = 3  # receiver objects per chain class
    factories: int = 2          # classes with `make()` factory methods
    containers: int = 2         # one-slot containers
    hierarchy_width: int = 0    # subclasses in the dispatch hierarchy
    ast_nodes: int = 0          # nodes built in the bloat-style pattern
    call_sites: int = 6         # wrapper invocations from main
    factory_sites: int = 4      # factory invocations from main
    container_ops: int = 4      # store/load pairs through containers
    tree_levels: int = 0        # depth of the allocator tree
    tree_branch: int = 2        # allocation sites per allocator level
    tree_roots: int = 2         # root objects of the allocator tree
    tree_work: int = 2          # boxed-work rounds per allocator method
    use_static_registry: bool = False  # global config read by the worker
    worker_throws: bool = False        # worker throws; main catches
    reflective_width: int = 0          # receiver types per "reflective" site
    reflective_sites: int = 0          # number of such mega-dispatch sites


class _Builder:
    """Accumulates a program; guarantees globally unique site labels."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.program = ir.Program()
        self._heap_count = 0
        self._invk_count = 0
        self._var_count = 0
        self.util_class: Optional[str] = None
        self.reflective: Optional[Tuple[str, List[str]]] = None

    def heap_label(self) -> str:
        self._heap_count += 1
        return f"{self.spec.name}/h{self._heap_count}"

    def invk_label(self) -> str:
        self._invk_count += 1
        return f"{self.spec.name}/c{self._invk_count}"

    def fresh_var(self, method: ir.Method) -> str:
        self._var_count += 1
        return method.local(f"v{self._var_count}")


def generate(spec: WorkloadSpec) -> ir.Program:
    """Build the synthetic program for ``spec`` (deterministic)."""
    builder = _Builder(spec)
    program = builder.program

    _add_shared_util(builder)
    value_classes = _add_value_classes(builder)
    chains = [_add_wrapper_chain(builder, k) for k in range(spec.wrapper_chains)]
    factories = [_add_factory(builder, k) for k in range(spec.factories)]
    containers = [_add_container(builder, k) for k in range(spec.containers)]
    hierarchy = _add_hierarchy(builder) if spec.hierarchy_width else None
    ast = _add_ast_classes(builder) if spec.ast_nodes else None
    builder.reflective = (
        _add_reflective_targets(builder) if spec.reflective_width else None
    )
    tree_root = _add_allocator_tree(builder) if spec.tree_levels else None
    reflective = builder.reflective

    main_cls = program.add_class(ir.ClassDecl(f"{spec.name}_Main"))
    main = main_cls.add_method(
        ir.Method(
            "main", main_cls.name,
            (f"{main_cls.name}.main/args",), is_static=True,
        )
    )
    program.main_class = main_cls.name

    values = _allocate_values(builder, main, value_classes)
    _drive_wrappers(builder, main, chains, values)
    made = _drive_factories(builder, main, factories)
    _drive_containers(builder, main, containers, values + made)
    if hierarchy is not None:
        _drive_hierarchy(
            builder, main, hierarchy, containers[0] if containers else None
        )
    if ast is not None:
        _drive_ast(builder, main, ast)
    if tree_root is not None:
        _drive_allocator_tree(builder, main, tree_root)
    if reflective is not None:
        _drive_reflective(builder, main, reflective)

    program.validate()
    return program


# ---------------------------------------------------------------------------
# Building blocks.
# ---------------------------------------------------------------------------

def _add_shared_util(builder: _Builder) -> None:
    """Static helpers with local state, shared by the whole program.

    ``id(p)`` is a static identity; ``process(p)`` routes its argument
    through a locally allocated one-slot box.  Every reachable context
    of these methods costs the context-string abstraction a copy of all
    their local facts; the transformer abstraction stores each once.
    """
    name = builder.spec.name
    box = builder.program.add_class(ir.ClassDecl(f"{name}_UBox"))
    box.fields.append("slot")

    util = builder.program.add_class(ir.ClassDecl(f"{name}_Util"))
    builder.util_class = util.name

    ident = util.add_method(
        ir.Method("id", util.name, (f"{util.name}.id/p",), is_static=True)
    )
    ident.body.append(ir.Return(ident.params[0]))

    process = util.add_method(
        ir.Method(
            "process", util.name, (f"{util.name}.process/p",), is_static=True
        )
    )
    (param,) = process.params
    box_var = process.local("b")
    out = process.local("r")
    process.body.append(ir.New(box_var, box.name, builder.heap_label()))
    process.body.append(ir.Store(box_var, "slot", param))
    process.body.append(ir.Load(out, box_var, "slot"))
    process.body.append(ir.Return(out))


def _util_call(builder: _Builder, method: ir.Method, kind: str, arg: str) -> str:
    """Emit ``out = Util.kind(arg)`` inside ``method``; returns out."""
    out = builder.fresh_var(method)
    method.body.append(
        ir.StaticCall(
            out, builder.util_class, kind, (arg,), builder.invk_label()
        )
    )
    return out


def _add_value_classes(builder: _Builder) -> List[str]:
    names = []
    for k in range(builder.spec.value_classes):
        name = f"{builder.spec.name}_V{k}"
        builder.program.add_class(ir.ClassDecl(name))
        names.append(name)
    return names


def _add_wrapper_chain(builder: _Builder, index: int) -> Tuple[str, str]:
    """A class with instance identity methods ``w0 → w1 → … → wd``,
    each level detouring through the shared static utilities."""
    cls = builder.program.add_class(
        ir.ClassDecl(f"{builder.spec.name}_Wrap{index}")
    )
    depth = builder.spec.chain_depth
    for level in range(depth):
        method = cls.add_method(
            ir.Method(f"w{level}", cls.name, (f"{cls.name}.w{level}/p",))
        )
        current = _util_call(
            builder, method, "process" if level % 2 else "id", method.params[0]
        )
        if level + 1 < depth:
            result = method.local("r")
            method.body.append(
                ir.VirtualCall(
                    result, method.this_var, f"w{level + 1}",
                    (current,), builder.invk_label(),
                )
            )
            method.body.append(ir.Return(result))
        else:
            method.body.append(ir.Return(current))
    return (cls.name, "w0")


def _add_factory(builder: _Builder, index: int) -> Tuple[str, str]:
    """A class whose ``make()`` returns a fresh product, routed through
    the static identity — Figure 5's ``m()``, whose return composition
    produces the context-string cross-product under ``+H`` configs."""
    product = builder.program.add_class(
        ir.ClassDecl(f"{builder.spec.name}_P{index}")
    )
    product.fields.append("payload")
    cls = builder.program.add_class(
        ir.ClassDecl(f"{builder.spec.name}_F{index}")
    )
    make = cls.add_method(ir.Method("make", cls.name))
    fresh = make.local("n")
    make.body.append(ir.New(fresh, product.name, builder.heap_label()))
    routed = _util_call(builder, make, "id", fresh)
    make.body.append(ir.Return(routed))
    return (cls.name, product.name)


def _add_container(builder: _Builder, index: int) -> str:
    """A one-slot container with ``add``/``get`` instance methods."""
    cls = builder.program.add_class(
        ir.ClassDecl(f"{builder.spec.name}_C{index}")
    )
    cls.fields.append("elem")
    add = cls.add_method(ir.Method("add", cls.name, (f"{cls.name}.add/v",)))
    routed = _util_call(builder, add, "id", add.params[0])
    add.body.append(ir.Store(add.this_var, "elem", routed))
    get = cls.add_method(ir.Method("get", cls.name))
    out = get.local("r")
    get.body.append(ir.Load(out, get.this_var, "elem"))
    get.body.append(ir.Return(out))
    return cls.name


def _add_hierarchy(builder: _Builder) -> Tuple[str, List[str]]:
    """``Base`` with ``width`` subclasses, each overriding ``produce``
    to return its own product type."""
    base = builder.program.add_class(
        ir.ClassDecl(f"{builder.spec.name}_Base")
    )
    produce = base.add_method(ir.Method("produce", base.name))
    fresh = produce.local("n")
    produce.body.append(ir.New(fresh, base.name, builder.heap_label()))
    produce.body.append(ir.Return(fresh))
    subclasses = []
    for k in range(builder.spec.hierarchy_width):
        sub = builder.program.add_class(
            ir.ClassDecl(f"{builder.spec.name}_Sub{k}", base.name)
        )
        method = sub.add_method(ir.Method("produce", sub.name))
        fresh = method.local("n")
        method.body.append(ir.New(fresh, sub.name, builder.heap_label()))
        method.body.append(ir.Return(fresh))
        subclasses.append(sub.name)
    return (base.name, subclasses)


def _add_allocator_tree(builder: _Builder) -> str:
    """An allocation chain: each level's ``grow()`` allocates the next
    level's objects at ``branch`` sites, calls ``grow()`` on each, and
    does local boxed work.

    Under k-limited analyses the method contexts of level ``l`` are the
    pairs (own allocation site, parent allocation site) — roughly
    ``branch²`` contexts per level — so context strings enumerate every
    level's local facts ``branch²`` times, while transformer strings
    keep one ``ε`` fact per local and one ``ŝ`` call edge per site.
    This is the dominant fact-count gap of the 2-object+H column
    (objects allocating sub-objects is the bread and butter of real
    Java heaps).  Returns the root class name.
    """
    spec = builder.spec
    name = spec.name
    box = builder.program.add_class(ir.ClassDecl(f"{name}_TBox"))
    box.fields.append("slot")

    # A shared worker: every tree level allocates one locally and calls
    # ``work()``.  Because the allocation sites live in *different
    # classes*, the worker's method is reachable under one context per
    # level even under type sensitivity — the context multiplication
    # that lets the 2-type+H column exercise the abstraction difference.
    worker = builder.program.add_class(ir.ClassDecl(f"{name}_Worker"))
    work = worker.add_method(ir.Method("work", worker.name))
    _tree_local_work(builder, work, box.name)
    if spec.use_static_registry:
        # A program-wide registry read from every worker context: the
        # paper's static-field extension.  Context strings enumerate the
        # loaded value per reachable context; transformer strings keep a
        # single wildcard fact.
        registry = builder.program.add_class(ir.ClassDecl(f"{name}_Reg"))
        registry.static_fields.append("conf")
        seed = work.local("conf_seed")
        work.body.append(ir.New(seed, box.name, builder.heap_label()))
        work.body.append(ir.StaticStore(registry.name, "conf", seed))
        loaded = builder.fresh_var(work)
        work.body.append(ir.StaticLoad(loaded, registry.name, "conf"))
    if spec.worker_throws:
        # The exception extension: the worker throws a locally allocated
        # exception, which escapes through every tree level to main.
        exc = builder.program.add_class(ir.ClassDecl(f"{name}_Exc"))
        thrown = work.local("boom")
        work.body.append(ir.New(thrown, exc.name, builder.heap_label()))
        work.body.append(ir.Throw(thrown))
    if builder.reflective is not None:
        # Conservatively-modelled reflection *inside* the context-
        # multiplied worker: every reachable context of work() pays one
        # mega-dispatch over all reflective targets — the jython/hsqldb
        # blowup the paper excludes (see _add_reflective_targets).
        holder_cls, targets = builder.reflective
        holder = builder.fresh_var(work)
        work.body.append(ir.New(holder, holder_cls, builder.heap_label()))
        for target in targets[1:]:
            instance = builder.fresh_var(work)
            work.body.append(ir.New(instance, target, builder.heap_label()))
            work.body.append(
                ir.VirtualCall(None, holder, "add", (instance,),
                               builder.invk_label())
            )
        merged = builder.fresh_var(work)
        work.body.append(
            ir.VirtualCall(merged, holder, "get", (), builder.invk_label())
        )
        result = builder.fresh_var(work)
        work.body.append(
            ir.VirtualCall(result, merged, "invoke", (work.this_var,),
                           builder.invk_label())
        )
    work.body.append(ir.Return(work.this_var))

    # Leaf level: local work only.
    leaf = builder.program.add_class(ir.ClassDecl(f"{name}_T{spec.tree_levels}"))
    grow = leaf.add_method(ir.Method("grow", leaf.name))
    _tree_local_work(builder, grow, box.name)
    _use_worker(builder, grow, worker.name)
    grow.body.append(ir.Return(grow.this_var))

    previous = leaf.name
    for level in range(spec.tree_levels - 1, -1, -1):
        cls = builder.program.add_class(ir.ClassDecl(f"{name}_T{level}"))
        grow = cls.add_method(ir.Method("grow", cls.name))
        _tree_local_work(builder, grow, box.name)
        _use_worker(builder, grow, worker.name)
        first_child = None
        for _ in range(spec.tree_branch):
            child = builder.fresh_var(grow)
            grow.body.append(ir.New(child, previous, builder.heap_label()))
            grown = builder.fresh_var(grow)
            grow.body.append(
                ir.VirtualCall(grown, child, "grow", (), builder.invk_label())
            )
            if first_child is None:
                first_child = grown
        grow.body.append(ir.Return(first_child))
        previous = cls.name
    return previous


def _use_worker(builder: _Builder, method: ir.Method, worker_cls: str) -> None:
    worker = builder.fresh_var(method)
    method.body.append(ir.New(worker, worker_cls, builder.heap_label()))
    out = builder.fresh_var(method)
    method.body.append(
        ir.VirtualCall(out, worker, "work", (), builder.invk_label())
    )


def _tree_local_work(builder: _Builder, method: ir.Method, box_cls: str) -> None:
    """Local allocations plus store/load round trips — the per-context
    payload that context strings replicate once per reachable context."""
    for _ in range(builder.spec.tree_work):
        box_var = builder.fresh_var(method)
        payload = builder.fresh_var(method)
        out = builder.fresh_var(method)
        method.body.append(ir.New(box_var, box_cls, builder.heap_label()))
        method.body.append(ir.New(payload, box_cls, builder.heap_label()))
        method.body.append(ir.Store(box_var, "slot", payload))
        method.body.append(ir.Load(out, box_var, "slot"))


def _drive_allocator_tree(builder: _Builder, main: ir.Method, root_cls: str) -> None:
    for _ in range(builder.spec.tree_roots):
        root = builder.fresh_var(main)
        main.body.append(ir.New(root, root_cls, builder.heap_label()))
        out = builder.fresh_var(main)
        main.body.append(
            ir.VirtualCall(out, root, "grow", (), builder.invk_label())
        )
    if builder.spec.worker_throws:
        # main catches whatever escapes the tree.
        catch = main.local("caught")
        main.add_catch_var(catch)


def _add_reflective_targets(builder: _Builder) -> Tuple[str, List[str]]:
    """Conservatively-modelled reflection (the paper's exclusion note).

    The paper drops ``jython`` and ``hsqldb`` because "context-sensitive
    analyses of the two programs do not scale due to overly conservative
    handling of Java reflection": a reflective call is modelled as
    possibly dispatching to *any* compatible target.  We reproduce that
    shape with a dispatcher whose receiver set contains one instance of
    every target class, each ``invoke`` implementation allocating its
    own result and calling back into the shared utilities — so every
    mega-site multiplies contexts by the target width.

    Returns ``(dispatch container class, target class names)``.
    """
    spec = builder.spec
    name = spec.name
    base = builder.program.add_class(ir.ClassDecl(f"{name}_Reflect"))
    invoke = base.add_method(
        ir.Method("invoke", base.name, (f"{base.name}.invoke/arg",))
    )
    out = invoke.local("r")
    invoke.body.append(ir.New(out, base.name, builder.heap_label()))
    invoke.body.append(ir.Return(out))

    targets = [base.name]
    for k in range(spec.reflective_width):
        target = builder.program.add_class(
            ir.ClassDecl(f"{name}_R{k}", base.name)
        )
        target.fields.append("slot")
        method = ir.Method("invoke", target.name, (f"{target.name}.invoke/arg",))
        target.add_method(method)
        fresh = method.local("r")
        method.body.append(ir.New(fresh, target.name, builder.heap_label()))
        routed = _util_call(builder, method, "process", method.params[0])
        method.body.append(ir.Store(fresh, "slot", routed))
        method.body.append(ir.Return(fresh))
        targets.append(target.name)

    holder = builder.program.add_class(ir.ClassDecl(f"{name}_RHolder"))
    holder.fields.append("elem")
    add = holder.add_method(
        ir.Method("add", holder.name, (f"{holder.name}.add/v",))
    )
    add.body.append(ir.Store(add.this_var, "elem", add.params[0]))
    get = holder.add_method(ir.Method("get", holder.name))
    got = get.local("r")
    get.body.append(ir.Load(got, get.this_var, "elem"))
    get.body.append(ir.Return(got))
    return (holder.name, targets)


def _drive_reflective(builder, main, reflective) -> None:
    spec = builder.spec
    holder_cls, targets = reflective
    holder = builder.fresh_var(main)
    main.body.append(ir.New(holder, holder_cls, builder.heap_label()))
    for target in targets[1:]:
        instance = builder.fresh_var(main)
        main.body.append(ir.New(instance, target, builder.heap_label()))
        main.body.append(
            ir.VirtualCall(None, holder, "add", (instance,),
                           builder.invk_label())
        )
    payload = builder.fresh_var(main)
    main.body.append(ir.New(payload, holder_cls, builder.heap_label()))
    for _ in range(spec.reflective_sites):
        merged = builder.fresh_var(main)
        main.body.append(
            ir.VirtualCall(merged, holder, "get", (), builder.invk_label())
        )
        result = builder.fresh_var(main)
        main.body.append(
            ir.VirtualCall(result, merged, "invoke", (payload,),
                           builder.invk_label())
        )


def _add_ast_classes(builder: _Builder) -> Dict[str, str]:
    """The `bloat` pattern: nodes whose parent pointers are set inside a
    helper invoked at node-construction time, with every node also
    pushed onto a stack (paper Section 8)."""
    name = builder.spec.name
    node = builder.program.add_class(ir.ClassDecl(f"{name}_Node"))
    node.fields.append("parent")
    set_parent = node.add_method(
        ir.Method("setParent", node.name, (f"{node.name}.setParent/p",))
    )
    set_parent.body.append(
        ir.Store(set_parent.this_var, "parent", set_parent.params[0])
    )
    get_parent = node.add_method(ir.Method("getParent", node.name))
    out = get_parent.local("r")
    get_parent.body.append(ir.Load(out, get_parent.this_var, "parent"))
    get_parent.body.append(ir.Return(out))

    # Figure 7's intra-method pattern verbatim: a local allocation
    # stored into and re-read from a field of ``this``, so the local
    # points to its site both directly (ε) and through the heap
    # (``Č·Ĉ`` per reachable context) — the source of subsuming facts.
    touch = node.add_method(ir.Method("touch", node.name))
    scratch = touch.local("v")
    touch.body.append(ir.New(scratch, node.name, builder.heap_label()))
    touch.body.append(ir.Store(touch.this_var, "parent", scratch))
    touch.body.append(ir.Load(scratch, touch.this_var, "parent"))

    stack = builder.program.add_class(ir.ClassDecl(f"{name}_Stack"))
    stack.fields.append("top")
    push = stack.add_method(
        ir.Method("push", stack.name, (f"{stack.name}.push/v",))
    )
    push.body.append(ir.Store(push.this_var, "top", push.params[0]))
    pop = stack.add_method(ir.Method("pop", stack.name))
    out = pop.local("r")
    pop.body.append(ir.Load(out, pop.this_var, "top"))
    pop.body.append(ir.Return(out))

    factory = builder.program.add_class(ir.ClassDecl(f"{name}_AstBuilder"))
    attach = factory.add_method(
        ir.Method(
            "attach", factory.name,
            (f"{factory.name}.attach/child", f"{factory.name}.attach/st"),
            is_static=True,
        )
    )
    child, st = attach.params
    fresh = attach.local("n")
    attach.body.append(ir.New(fresh, node.name, builder.heap_label()))
    attach.body.append(
        ir.VirtualCall(None, child, "setParent", (fresh,), builder.invk_label())
    )
    attach.body.append(
        ir.VirtualCall(None, st, "push", (fresh,), builder.invk_label())
    )
    attach.body.append(
        ir.VirtualCall(None, fresh, "touch", (), builder.invk_label())
    )
    attach.body.append(ir.Return(fresh))
    return {
        "node": node.name,
        "stack": stack.name,
        "builder": factory.name,
    }


# ---------------------------------------------------------------------------
# Driving code in main.
# ---------------------------------------------------------------------------

def _allocate_values(builder, main, value_classes) -> List[str]:
    variables = []
    for cls in value_classes:
        var = builder.fresh_var(main)
        main.body.append(ir.New(var, cls, builder.heap_label()))
        variables.append(var)
    return variables


def _drive_wrappers(builder, main, chains, values) -> None:
    spec = builder.spec
    receivers = []
    for (cls, _entry) in chains:
        for _ in range(spec.receivers_per_chain):
            var = builder.fresh_var(main)
            main.body.append(ir.New(var, cls, builder.heap_label()))
            receivers.append(var)
    if not receivers or not values:
        return
    for _ in range(spec.call_sites):
        recv = builder.rng.choice(receivers)
        value = builder.rng.choice(values)
        out = builder.fresh_var(main)
        main.body.append(
            ir.VirtualCall(out, recv, "w0", (value,), builder.invk_label())
        )


def _drive_factories(builder, main, factories) -> List[str]:
    spec = builder.spec
    made = []
    receivers = []
    for (cls, _product) in factories:
        var = builder.fresh_var(main)
        main.body.append(ir.New(var, cls, builder.heap_label()))
        receivers.append(var)
    if not receivers:
        return made
    for _ in range(spec.factory_sites):
        recv = builder.rng.choice(receivers)
        out = builder.fresh_var(main)
        main.body.append(
            ir.VirtualCall(out, recv, "make", (), builder.invk_label())
        )
        made.append(out)
    return made


def _drive_containers(builder, main, containers, values) -> None:
    spec = builder.spec
    instances = []
    for cls in containers:
        var = builder.fresh_var(main)
        main.body.append(ir.New(var, cls, builder.heap_label()))
        instances.append(var)
    if not instances or not values:
        return
    for _ in range(spec.container_ops):
        container = builder.rng.choice(instances)
        value = builder.rng.choice(values)
        main.body.append(
            ir.VirtualCall(None, container, "add", (value,), builder.invk_label())
        )
        out = builder.fresh_var(main)
        main.body.append(
            ir.VirtualCall(out, container, "get", (), builder.invk_label())
        )


def _drive_hierarchy(builder, main, hierarchy, container_cls) -> None:
    base, subclasses = hierarchy
    if container_cls is None:
        return
    mixer = builder.fresh_var(main)
    main.body.append(ir.New(mixer, container_cls, builder.heap_label()))
    for sub in subclasses:
        var = builder.fresh_var(main)
        main.body.append(ir.New(var, sub, builder.heap_label()))
        main.body.append(
            ir.VirtualCall(None, mixer, "add", (var,), builder.invk_label())
        )
    # Pull a merged receiver back out and dispatch through it: the call
    # site fans out to every subclass implementation.
    merged = builder.fresh_var(main)
    main.body.append(
        ir.VirtualCall(merged, mixer, "get", (), builder.invk_label())
    )
    out = builder.fresh_var(main)
    main.body.append(
        ir.VirtualCall(out, merged, "produce", (), builder.invk_label())
    )


def _drive_ast(builder, main, ast) -> None:
    spec = builder.spec
    stack_var = builder.fresh_var(main)
    main.body.append(ir.New(stack_var, ast["stack"], builder.heap_label()))
    current = builder.fresh_var(main)
    main.body.append(ir.New(current, ast["node"], builder.heap_label()))
    for _ in range(spec.ast_nodes):
        parent = builder.fresh_var(main)
        main.body.append(
            ir.StaticCall(
                parent, ast["builder"], "attach",
                (current, stack_var), builder.invk_label(),
            )
        )
        current = parent
    # Read back through both paths: the parent field and the stack.
    via_parent = builder.fresh_var(main)
    main.body.append(
        ir.VirtualCall(via_parent, current, "getParent", (), builder.invk_label())
    )
    via_stack = builder.fresh_var(main)
    main.body.append(
        ir.VirtualCall(via_stack, stack_var, "pop", (), builder.invk_label())
    )


# ---------------------------------------------------------------------------
# The seven DaCapo analogues.
# ---------------------------------------------------------------------------

def dacapo_specs(scale: int = 1) -> Dict[str, WorkloadSpec]:
    """Specs for the paper's seven benchmarks, at a size multiplier.

    The weights follow each original's character: ``antlr`` is
    call-chain heavy, ``bloat`` is dominated by the AST/stack pattern,
    ``chart`` allocates through many factories, ``eclipse`` has the
    widest dispatch, ``luindex`` is the smallest and most uniform,
    ``pmd`` mixes hierarchies and wrappers, ``xalan`` is container
    heavy.
    """
    s = scale
    return {
        "antlr": WorkloadSpec(
            "antlr", seed=11, tree_levels=4, tree_branch=3, tree_roots=2, tree_work=2 * s, value_classes=4, wrapper_chains=3,
            chain_depth=5, receivers_per_chain=3 * s, factories=2,
            containers=2, call_sites=12 * s, factory_sites=4 * s,
            container_ops=4 * s,
        ),
        "bloat": WorkloadSpec(
            "bloat", seed=13, tree_levels=3, tree_branch=2, tree_roots=2, tree_work=2 * s, worker_throws=True, value_classes=3, wrapper_chains=2,
            chain_depth=3, receivers_per_chain=2 * s, factories=1,
            containers=2, ast_nodes=10 * s, call_sites=8 * s,
            factory_sites=3 * s, container_ops=4 * s,
        ),
        "chart": WorkloadSpec(
            "chart", seed=17, tree_levels=3, tree_branch=3, tree_roots=2, tree_work=3 * s, use_static_registry=True, worker_throws=True, value_classes=4, wrapper_chains=2,
            chain_depth=3, receivers_per_chain=3 * s, factories=5,
            containers=3, call_sites=10 * s, factory_sites=8 * s,
            container_ops=5 * s,
        ),
        "eclipse": WorkloadSpec(
            "eclipse", seed=19, tree_levels=4, tree_branch=2, tree_roots=2, tree_work=2 * s, use_static_registry=True, value_classes=3, wrapper_chains=2,
            chain_depth=4, receivers_per_chain=3 * s, factories=2,
            containers=3, hierarchy_width=6, call_sites=10 * s,
            factory_sites=4 * s, container_ops=5 * s,
        ),
        "luindex": WorkloadSpec(
            "luindex", seed=23, tree_levels=3, tree_branch=3, tree_roots=2, tree_work=1 * s, value_classes=2, wrapper_chains=2,
            chain_depth=3, receivers_per_chain=2 * s, factories=2,
            containers=2, call_sites=6 * s, factory_sites=3 * s,
            container_ops=3 * s,
        ),
        "pmd": WorkloadSpec(
            "pmd", seed=29, tree_levels=3, tree_branch=3, tree_roots=2, tree_work=2 * s, worker_throws=True, value_classes=3, wrapper_chains=3,
            chain_depth=3, receivers_per_chain=2 * s, factories=2,
            containers=2, hierarchy_width=4, call_sites=9 * s,
            factory_sites=3 * s, container_ops=3 * s,
        ),
        "xalan": WorkloadSpec(
            "xalan", seed=31, tree_levels=3, tree_branch=3, tree_roots=2, tree_work=3 * s, use_static_registry=True, value_classes=4, wrapper_chains=2,
            chain_depth=4, receivers_per_chain=3 * s, factories=2,
            containers=4, call_sites=9 * s, factory_sites=4 * s,
            container_ops=7 * s,
        ),
    }


def excluded_specs(scale: int = 1) -> Dict[str, WorkloadSpec]:
    """Analogues of the benchmarks the paper *excludes* (Section 8):
    ``jython``/``hsqldb`` "do not scale due to overly conservative
    handling of Java reflection" and ``lusearch`` "is too similar to
    luindex".  Kept out of the Figure 6 suite, like the paper, but
    generated so the exclusion rationale itself can be measured
    (``benchmarks/test_bench_excluded.py``)."""
    s = scale
    return {
        "jython": WorkloadSpec(
            "jython", seed=37, value_classes=3, wrapper_chains=2,
            chain_depth=3, receivers_per_chain=2 * s, factories=2,
            containers=2, call_sites=8 * s, factory_sites=3 * s,
            container_ops=4 * s, tree_levels=3, tree_branch=2,
            tree_roots=2, tree_work=2 * s,
            reflective_width=10 * s, reflective_sites=4 * s,
        ),
        "hsqldb": WorkloadSpec(
            "hsqldb", seed=41, value_classes=3, wrapper_chains=2,
            chain_depth=3, receivers_per_chain=2 * s, factories=2,
            containers=3, call_sites=8 * s, factory_sites=3 * s,
            container_ops=5 * s, tree_levels=3, tree_branch=2,
            tree_roots=2, tree_work=2 * s,
            reflective_width=8 * s, reflective_sites=5 * s,
        ),
        "lusearch": WorkloadSpec(
            # "too similar to luindex": the same weights, another seed.
            "lusearch", seed=43, value_classes=2, wrapper_chains=2,
            chain_depth=3, receivers_per_chain=2 * s, factories=2,
            containers=2, call_sites=6 * s, factory_sites=3 * s,
            container_ops=3 * s, tree_levels=3, tree_branch=3,
            tree_roots=2, tree_work=1 * s,
        ),
    }


def dacapo_program(name: str, scale: int = 1) -> ir.Program:
    """The synthetic analogue of one DaCapo benchmark (evaluated or
    excluded)."""
    specs = dacapo_specs(scale)
    specs.update(excluded_specs(scale))
    return generate(specs[name])


DACAPO_NAMES: Tuple[str, ...] = (
    "antlr", "bloat", "chart", "eclipse", "luindex", "pmd", "xalan",
)

#: The benchmarks the paper excludes from Figure 6 (see excluded_specs).
EXCLUDED_NAMES: Tuple[str, ...] = ("jython", "hsqldb", "lusearch")
