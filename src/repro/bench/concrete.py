"""A concrete interpreter for IR programs — the soundness oracle.

Static analyses over-approximate run-time behaviour; the decisive test
of soundness is therefore an actual execution.  This module interprets
an IR program concretely — allocations create objects tagged with their
site, virtual calls dispatch on the receiver's run-time class, fields
and statics hold real references — and records every binding observed:

* ``var_points_to``: every ``(variable, allocation site)`` a variable
  ever held;
* ``heap_points_to``: every ``(base site, field, value site)`` stored;
* ``static_points_to``, ``call_edges``, ``executed_methods``,
  ``escaped_exceptions``.

Each recorded event corresponds to a concrete state, so a sound
analysis **must** include it in the matching context-insensitive
projection; ``tests/integration/test_soundness_concrete.py`` fuzzes this
against every configuration.

Semantics notes.  The IR is the flow-insensitive bag the parser
produces (branches flattened, statement order kept), so the interpreter
executes each method body sequentially; ``return`` records the return
value and continues, ``throw`` records the exception and continues —
both are executions of the abstract semantics' statement bag, which the
analysis covers by construction.  Recursion and unbounded call chains
are handled by a global *step budget*: when it is exhausted the
execution stops cleanly, and the bindings observed so far still form a
valid execution prefix.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.frontend import ir


@dataclass(frozen=True)
class ConcreteObject:
    """A run-time object: identity plus its allocation site and class."""

    identity: int
    site: str
    cls: str


class _BudgetExhausted(Exception):
    """Raised internally to unwind when the step budget runs out."""


@dataclass
class Observations:
    """Everything a run observed, in analysis-comparable shape."""

    var_points_to: Set[Tuple[str, str]] = field(default_factory=set)
    heap_points_to: Set[Tuple[str, str, str]] = field(default_factory=set)
    static_points_to: Set[Tuple[str, str]] = field(default_factory=set)
    call_edges: Set[Tuple[str, str]] = field(default_factory=set)
    executed_methods: Set[str] = field(default_factory=set)
    escaped_exceptions: Set[Tuple[str, str]] = field(default_factory=set)
    steps: int = 0


class ConcreteInterpreter:
    """Executes an IR program and accumulates :class:`Observations`."""

    def __init__(self, program: ir.Program, step_budget: int = 20000,
                 max_call_depth: int = 120):
        self.program = program
        self.step_budget = step_budget
        self.max_call_depth = max_call_depth
        self._depth = 0
        self.observed = Observations()
        self._ids = itertools.count()
        self._fields: Dict[Tuple[int, str], ConcreteObject] = {}
        self._statics: Dict[str, ConcreteObject] = {}
        self._static_field_names: Dict[Tuple[str, str], str] = {}
        for cls in program.classes.values():
            for name in cls.static_fields:
                self._static_field_names[(cls.name, name)] = (
                    f"{cls.name}.{name}"
                )

    # ------------------------------------------------------------------

    def run(self) -> Observations:
        main = self.program.main_method
        try:
            self._execute(main, args=[], receiver=None)
        except _BudgetExhausted:
            pass
        return self.observed

    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.observed.steps += 1
        if self.observed.steps > self.step_budget:
            raise _BudgetExhausted()

    def _bind(self, env: Dict[str, ConcreteObject], var: str,
              value: Optional[ConcreteObject]) -> None:
        if value is None:
            return
        env[var] = value
        self.observed.var_points_to.add((var, value.site))

    def _resolve_static_field(self, cls: str, name: str) -> Optional[str]:
        declaring = self.program.resolve_static_field(cls, name)
        if declaring is None:
            return None
        return f"{declaring}.{name}"

    def _execute(
        self,
        method: ir.Method,
        args: List[Optional[ConcreteObject]],
        receiver: Optional[ConcreteObject],
    ) -> Tuple[Optional[ConcreteObject], List[ConcreteObject]]:
        """Run one method; returns (return value, escaped exceptions).

        Calls beyond ``max_call_depth`` are skipped (their edge is still
        recorded by the caller) — like the step budget, this truncates
        the execution to a valid prefix rather than crashing on deep
        recursion.
        """
        if self._depth >= self.max_call_depth:
            return None, []
        self._depth += 1
        try:
            return self._execute_body(method, args, receiver)
        finally:
            self._depth -= 1

    def _execute_body(
        self,
        method: ir.Method,
        args: List[Optional[ConcreteObject]],
        receiver: Optional[ConcreteObject],
    ) -> Tuple[Optional[ConcreteObject], List[ConcreteObject]]:
        self.observed.executed_methods.add(method.qualified_name)
        env: Dict[str, ConcreteObject] = {}
        if receiver is not None:
            self._bind(env, method.this_var, receiver)
        for formal, value in zip(method.params, args):
            self._bind(env, formal, value)

        return_value: Optional[ConcreteObject] = None
        raised: List[ConcreteObject] = []

        for statement in method.body:
            self._tick()
            if isinstance(statement, ir.New):
                obj = ConcreteObject(
                    next(self._ids), statement.label, statement.type
                )
                self._bind(env, statement.dst, obj)
            elif isinstance(statement, ir.Assign):
                self._bind(env, statement.dst, env.get(statement.src))
            elif isinstance(statement, ir.Store):
                base = env.get(statement.base)
                value = env.get(statement.src)
                if base is not None and value is not None:
                    self._fields[(base.identity, statement.field)] = value
                    self.observed.heap_points_to.add(
                        (base.site, statement.field, value.site)
                    )
            elif isinstance(statement, ir.Load):
                base = env.get(statement.base)
                if base is not None:
                    value = self._fields.get((base.identity, statement.field))
                    self._bind(env, statement.dst, value)
            elif isinstance(statement, ir.StaticStore):
                signature = self._resolve_static_field(
                    statement.cls, statement.field
                )
                value = env.get(statement.src)
                if signature is not None and value is not None:
                    self._statics[signature] = value
                    self.observed.static_points_to.add(
                        (signature, value.site)
                    )
            elif isinstance(statement, ir.StaticLoad):
                signature = self._resolve_static_field(
                    statement.cls, statement.field
                )
                if signature is not None:
                    self._bind(env, statement.dst, self._statics.get(signature))
            elif isinstance(statement, ir.Return):
                value = env.get(statement.src)
                if value is not None:
                    return_value = value
            elif isinstance(statement, ir.Throw):
                value = env.get(statement.src)
                if value is not None:
                    raised.append(value)
            elif isinstance(statement, ir.VirtualCall):
                recv = env.get(statement.base)
                if recv is None:
                    continue
                signature = f"{statement.name}/{len(statement.args)}"
                target = self.program.resolve_method(recv.cls, signature)
                if target is None or target.is_static:
                    continue
                self.observed.call_edges.add(
                    (statement.label, target.qualified_name)
                )
                result, escaped = self._execute(
                    target, [env.get(a) for a in statement.args], recv
                )
                raised.extend(escaped)
                if statement.dst is not None:
                    self._bind(env, statement.dst, result)
            elif isinstance(statement, ir.StaticCall):
                signature = f"{statement.name}/{len(statement.args)}"
                target = self.program.resolve_method(statement.cls, signature)
                if target is None or not target.is_static:
                    continue
                self.observed.call_edges.add(
                    (statement.label, target.qualified_name)
                )
                result, escaped = self._execute(
                    target, [env.get(a) for a in statement.args], None
                )
                raised.extend(escaped)
                if statement.dst is not None:
                    self._bind(env, statement.dst, result)
            else:  # pragma: no cover - exhaustive over the IR
                raise ValueError(f"unknown statement {statement!r}")

        # Exceptions raised here or escaped from callees: caught by this
        # method's catch variables (recorded as bindings) and considered
        # escaping as well — matching the flow-insensitive THROW/EPROP/
        # ECATCH over-approximation from below.
        for exception in raised:
            for catch in method.catch_vars():
                self._bind(env, catch, exception)
            self.observed.escaped_exceptions.add(
                (method.qualified_name, exception.site)
            )
        return return_value, raised


def run_concrete(program: ir.Program, step_budget: int = 20000) -> Observations:
    """Execute ``program`` and return what the run observed."""
    return ConcreteInterpreter(program, step_budget).run()
