"""Query-latency workload: what a demand client actually waits.

The Figure 6 harness measures *solve* cost; a long-lived service is
judged by *query* cost.  This workload drives an
:class:`~repro.service.AnalysisService` over synthetic benchmark
programs in the two serving regimes:

* **cold** — demand-only service (no up-front solve): each first-touch
  query pays its slice's solve, later queries reuse the grown slice;
* **warm** — pre-solved service (equivalently: a loaded snapshot):
  every query is a projection over the solved relations.

For each regime a fixed scripted batch runs every query kind
(``points_to`` / ``alias`` / ``callees`` / ``fields_of``) over the
first ``queries_per_kind`` entities of the program, and the service's
own latency metrics report p50/p95 per kind (microseconds).  The CFL
demand engine (:class:`repro.cfl.demand.DemandPointsTo`) is measured
alongside as a context-insensitive ``points_to`` baseline.

The result dict is embedded by ``repro figure6 --json`` as the
additive ``query_latency`` field of schema ``repro-figure6/8``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.bench.harness import Measurement
from repro.bench.workloads import DACAPO_NAMES
from repro.core.config import config_by_name
from repro.frontend.factgen import FactSet
from repro.perf.registry import corpus_facts
from repro.perf.stats import latency_summary_us
from repro.service.service import AnalysisService, variables_of


def _query_batch(facts: FactSet, queries_per_kind: int) -> Dict[str, List]:
    """A deterministic scripted batch touching every query kind."""
    variables = sorted(variables_of(facts))[:queries_per_kind]
    sites = sorted(
        {row[0] for row in facts.virtual_invoke}
        | {row[0] for row in facts.static_invoke}
    )[:queries_per_kind]
    heaps = sorted({row[0] for row in facts.assign_new})[:queries_per_kind]
    pairs = [
        (variables[i], variables[(i + 1) % len(variables)])
        for i in range(min(len(variables), queries_per_kind))
    ] if variables else []
    return {
        "points_to": variables,
        "alias": pairs,
        "callees": sites,
        "fields_of": heaps,
    }


def _drive(service: AnalysisService, batch: Dict[str, List]) -> None:
    for var in batch["points_to"]:
        service.points_to(var)
    for (a, b) in batch["alias"]:
        service.alias(a, b)
    for site in batch["callees"]:
        service.callees(site)
    for heap in batch["fields_of"]:
        service.fields_of(heap)


def _cfl_points_to(facts: FactSet, variables: List[str]) -> Dict[str, int]:
    """p50/p95 of CFL demand-driven points_to over the same variables."""
    from repro.cfl.demand import DemandPointsTo
    from repro.cfl.pag import build_pag

    demand = DemandPointsTo(build_pag(facts))
    samples: List[float] = []
    for var in variables:
        start = time.perf_counter()
        demand.query(var)
        samples.append(time.perf_counter() - start)
    return latency_summary_us(samples)


def measure_queries(
    facts: FactSet,
    configuration: str = "2-object+H",
    abstraction: str = "transformer-string",
    queries_per_kind: int = 12,
) -> Dict:
    """Warm/cold query-latency measurements for one program."""
    config = config_by_name(configuration, abstraction)
    batch = _query_batch(facts, queries_per_kind)

    cold = AnalysisService.from_facts(facts, config, solve=False)
    _drive(cold, batch)
    warm = AnalysisService.from_facts(facts, config, solve=True)
    _drive(warm, batch)

    return {
        "cold": cold.metrics.latency_summary(),
        "warm": warm.metrics.latency_summary(),
        "cold_stats": {
            "cache": cold.metrics.as_dict()["cache"],
            "demand": cold.stats().get("demand"),
        },
        "cfl_points_to": _cfl_points_to(facts, batch["points_to"]),
    }


def measurement_for(service: AnalysisService) -> Measurement:
    """The service's query metrics as a bench ``Measurement``.

    Sizes are the served relation row counts; ``counters`` carries the
    per-kind latency summaries under ``service.<kind>`` keys, merging
    the service surface into the harness's existing stats plumbing.
    """
    stats = service.stats()
    relations = stats.get("relations", {})
    sizes = {
        name: relations.get(name, 0) for name in ("pts", "hpts", "call")
    }
    counters = {
        f"service.{kind}": summary
        for kind, summary in stats["latency_us"].items()
    }
    counters["service.cache"] = {
        "hits": stats["cache"]["hits"],
        "misses": stats["cache"]["misses"],
        "warm": stats["paths"]["warm"],
        "cold": stats["paths"]["cold"],
    }
    return Measurement(
        sizes=sizes,
        ci_sizes=dict(sizes),
        seconds=stats["solver"]["load_seconds"],
        counters=counters,
    )


def run_query_latency(
    benchmarks: Iterable[str] = DACAPO_NAMES,
    scale: int = 1,
    configuration: str = "2-object+H",
    abstraction: str = "transformer-string",
    queries_per_kind: int = 12,
) -> Dict:
    """The full query-latency workload (the ``query_latency`` export)."""
    results: Dict[str, Dict] = {}
    for benchmark in benchmarks:
        facts = corpus_facts(benchmark, scale=scale)
        results[benchmark] = measure_queries(
            facts, configuration, abstraction, queries_per_kind
        )
    return {
        "configuration": configuration,
        "abstraction": abstraction,
        "scale": scale,
        "queries_per_kind": queries_per_kind,
        "benchmarks": results,
    }
