"""Edit-churn workload: what a live-update client actually waits.

The query-latency workload (:mod:`repro.bench.querybench`) prices
*reads* against a long-lived service; this one prices *writes*.  A
stream of coherent single-statement edits
(:func:`repro.incremental.edits.random_edits`) is applied to one
:class:`~repro.incremental.IncrementalSolver`, and every edit is charged
two ways:

* **incremental** — ``apply_delta`` on the live fixpoint (DRed
  retraction + semi-naive additions);
* **scratch** — a from-scratch solve of the post-edit program, the
  cost a non-incremental service pays for the same edit.

Results group by edit kind (add/remove × assign/load/store/new), so
the asymmetry is visible: additions are one seeded drain, removals pay
overdeletion + rederivation, and both are bounded by the edit's cone
of influence rather than the program size.

``measure_single_edit`` is the headline number: one added assignment
to the paper's Figure 5 program, best-of-``repetitions``, reported as
an incremental-vs-scratch speedup (the acceptance floor is 5×).

The result dict is embedded by ``repro figure6 --json`` as the
additive ``incremental`` field of schema ``repro-figure6/8``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bench.workloads import DACAPO_NAMES
from repro.core.config import config_by_name
from repro.frontend.factgen import FactSet
from repro.perf.registry import corpus_facts
from repro.perf.stats import stopwatch
from repro.incremental import FactDelta, IncrementalSolver, copy_facts
from repro.incremental.edits import random_edits


def _scratch_seconds(facts: FactSet, config) -> float:
    from repro.core.analysis import PointerAnalysis

    _, seconds = stopwatch(lambda: PointerAnalysis(facts, config).run())
    return seconds


def measure_churn(
    facts: FactSet,
    configuration: str = "2-object+H",
    abstraction: str = "transformer-string",
    edits: int = 12,
    seed: int = 0,
) -> Dict:
    """Charge ``edits`` random edits incrementally and from scratch."""
    config = config_by_name(configuration, abstraction)
    solver = IncrementalSolver(copy_facts(facts), config)
    rolling = copy_facts(facts)
    by_kind: Dict[str, Dict[str, float]] = {}
    incremental_total = 0.0
    scratch_total = 0.0
    fallbacks = 0
    for kind, delta in random_edits(facts, edits, seed=seed):
        delta.apply_to(rolling)
        outcome = solver.apply_delta(delta)
        scratch = _scratch_seconds(copy_facts(rolling), config)
        bucket = by_kind.setdefault(kind, {
            "edits": 0, "incremental_seconds": 0.0, "scratch_seconds": 0.0,
        })
        bucket["edits"] += 1
        bucket["incremental_seconds"] += outcome.seconds
        bucket["scratch_seconds"] += scratch
        incremental_total += outcome.seconds
        scratch_total += scratch
        if outcome.fallback:
            fallbacks += 1
    for bucket in by_kind.values():
        bucket["speedup"] = (
            bucket["scratch_seconds"] / bucket["incremental_seconds"]
            if bucket["incremental_seconds"] > 0 else None
        )
    return {
        "edits": edits,
        "seed": seed,
        "fallbacks": fallbacks,
        "incremental_seconds": incremental_total,
        "scratch_seconds": scratch_total,
        "speedup": (
            scratch_total / incremental_total
            if incremental_total > 0 else None
        ),
        "by_kind": by_kind,
        "engine": solver.stats.as_dict(),
    }


def measure_single_edit(
    configuration: str = "1-call",
    abstraction: str = "transformer-string",
    repetitions: int = 11,
) -> Dict:
    """The headline: one added assignment to Figure 5, best-of-N.

    Best-of (not mean) on both sides — the quantity of interest is the
    cost of the *work*, not of interpreter noise around a sub-millisecond
    measurement.
    """
    from repro.core.analysis import _to_facts
    from repro.frontend.paper_programs import FIGURE_5

    config = config_by_name(configuration, abstraction)
    base = _to_facts(FIGURE_5)
    delta = FactDelta().add("assign", ("T.m/h", "T.m/x"))
    edited = delta.applied_copy(base)

    incremental = None
    scratch = None
    for _ in range(max(1, repetitions)):
        solver = IncrementalSolver(copy_facts(base), config)
        outcome = solver.apply_delta(
            FactDelta().add("assign", ("T.m/h", "T.m/x"))
        )
        incremental = (
            outcome.seconds if incremental is None
            else min(incremental, outcome.seconds)
        )
        seconds = _scratch_seconds(copy_facts(edited), config)
        scratch = seconds if scratch is None else min(scratch, seconds)
    return {
        "program": "figure5",
        "edit": "add assign (T.m/h -> T.m/x)",
        "configuration": configuration,
        "abstraction": abstraction,
        "repetitions": repetitions,
        "incremental_seconds": incremental,
        "scratch_seconds": scratch,
        "speedup": scratch / incremental if incremental > 0 else None,
    }


def run_delta_churn(
    benchmarks: Iterable[str] = DACAPO_NAMES,
    scale: int = 1,
    configuration: str = "2-object+H",
    abstraction: str = "transformer-string",
    edits: int = 12,
    seed: int = 0,
    repetitions: int = 5,
) -> Dict:
    """The full edit-churn workload (the ``incremental`` export)."""
    results: Dict[str, Dict] = {}
    for benchmark in benchmarks:
        facts = corpus_facts(benchmark, scale=scale)
        results[benchmark] = measure_churn(
            facts, configuration, abstraction, edits=edits, seed=seed
        )
    return {
        "configuration": configuration,
        "abstraction": abstraction,
        "scale": scale,
        "edits_per_benchmark": edits,
        "single_edit": measure_single_edit(repetitions=repetitions),
        "benchmarks": results,
    }


def format_churn(report: Dict) -> str:
    """The churn report as aligned text (the CLI's table)."""
    lines = [
        f"Edit churn ({report['configuration']},"
        f" {report['abstraction']}, scale={report['scale']},"
        f" {report['edits_per_benchmark']} edits/benchmark):"
    ]
    header = (
        f"{'benchmark':12s}{'incremental':>14s}{'scratch':>12s}"
        f"{'speedup':>9s}{'fallbacks':>11s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, churn in sorted(report["benchmarks"].items()):
        speedup = churn["speedup"]
        lines.append(
            f"{name:12s}{churn['incremental_seconds'] * 1000:>12.1f}ms"
            f"{churn['scratch_seconds'] * 1000:>10.1f}ms"
            f"{(f'{speedup:.1f}x' if speedup else '—'):>9s}"
            f"{churn['fallbacks']:>11d}"
        )
    single = report["single_edit"]
    lines.append(
        f"single edit ({single['program']}, {single['edit']}):"
        f" {single['incremental_seconds'] * 1e6:.0f}µs incremental vs"
        f" {single['scratch_seconds'] * 1e6:.0f}µs scratch"
        f" ({single['speedup']:.1f}x)"
    )
    return "\n".join(lines)
