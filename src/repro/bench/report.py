"""Figure 6-style report formatting.

Renders a :class:`repro.bench.harness.Figure6` in the layout of the
paper's evaluation table: one block of rows per benchmark (pts / hpts /
call / Total / Time), one column per context-sensitivity configuration,
each cell showing the context-string quantity followed by the percentage
decrease obtained with transformer strings; type-sensitive columns add
the context-insensitive fact increase in parentheses; the final rows are
the geometric means.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.bench.harness import Cell, Figure6, Measurement, RELATIONS


def _quantity(value: int) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1000:.0f}k"
    return str(value)


def _cell_size(cell: Cell, relation: str, type_column: bool) -> str:
    base = cell.context_string.sizes[relation]
    decrease = cell.size_decrease(relation)
    text = _quantity(base)
    if decrease is None:
        text += " —"
    else:
        text += f" {decrease * 100:5.1f}%"
    if type_column:
        text += f" (+{cell.ci_increase(relation)})"
    return text


def _cell_total(cell: Cell) -> str:
    return (
        f"{_quantity(cell.context_string.total)}"
        f" {cell.total_decrease() * 100:5.1f}%"
    )


def _cell_time(cell: Cell) -> str:
    return (
        f"{cell.context_string.seconds * 1000:.1f}ms"
        f" {cell.time_decrease() * 100:5.1f}%"
    )


def format_figure6(table: Figure6, title: str = "Figure 6") -> str:
    """Render the table as aligned text."""
    configurations = table.configurations()
    width = 24
    lines: List[str] = []
    lines.append(
        f"{title}: context-string quantity and % decrease with transformer"
        " strings"
    )
    header = f"{'':10s}{'':6s}" + "".join(
        f"{c:>{width}s}" for c in configurations
    )
    lines.append(header)
    lines.append("-" * len(header))
    for benchmark in table.benchmarks():
        for row_index, relation in enumerate(RELATIONS + ("Total", "Time")):
            label = benchmark if row_index == 0 else ""
            line = f"{label:10s}{relation:6s}"
            for configuration in configurations:
                cell = table.cell(benchmark, configuration)
                type_column = configuration.endswith("type+H")
                if relation == "Total":
                    text = _cell_total(cell)
                elif relation == "Time":
                    text = _cell_time(cell)
                else:
                    text = _cell_size(cell, relation, type_column)
                line += f"{text:>{width}s}"
            lines.append(line)
        lines.append("")
    mean_total = f"{'Mean':10s}{'Total':6s}"
    mean_time = f"{'':10s}{'Time':6s}"
    for configuration in configurations:
        mean_total += (
            f"{table.geomean_total_decrease(configuration) * 100:>{width - 1}.1f}%"
        )
        mean_time += (
            f"{table.geomean_time_decrease(configuration) * 100:>{width - 1}.1f}%"
        )
    lines.append(mean_total)
    lines.append(mean_time)
    return "\n".join(lines)


def format_csv(table: Figure6) -> str:
    """Machine-readable export: one row per benchmark × configuration."""
    lines = [
        "benchmark,configuration,abstraction,pts,hpts,call,total,seconds"
    ]
    for cell in table.cells:
        for label, measurement in (
            ("context-string", cell.context_string),
            ("transformer-string", cell.transformer_string),
        ):
            sizes = measurement.sizes
            lines.append(
                f"{cell.benchmark},{cell.configuration},{label},"
                f"{sizes['pts']},{sizes['hpts']},{sizes['call']},"
                f"{measurement.total},{measurement.seconds:.6f}"
            )
    return "\n".join(lines) + "\n"


#: Schema identifier embedded in every JSON export; bump the suffix on
#: breaking layout changes.  The layout is documented in ``docs/api.md``.
#: ``/2`` adds the additive ``query_latency`` field (the service
#: query-latency workload of :mod:`repro.bench.querybench`); ``/3``
#: adds the additive ``incremental`` field (the edit-churn workload of
#: :mod:`repro.bench.deltabench`); ``/4`` adds the additive ``checks``
#: field (the client-checker precision audit of
#: :mod:`repro.bench.checkbench`); ``/5`` adds the additive ``parallel``
#: field (the sharded-fixpoint workload of
#: :mod:`repro.bench.parallelbench`: shard-plan summary, per-shard-count
#: timings/skew/exchange volume, and the zero-cross-shard-probe
#: certificate); ``/6`` adds the additive ``kernels`` field (the
#: columnar kernel-backend workload of :mod:`repro.bench.kernelbench`:
#: generic engine vs fused integer kernels vs sharded kernels, with
#: parity and certificate); ``/7`` adds the additive ``serving`` field
#: (the open-loop serving workload of :mod:`repro.bench.loadbench`:
#: threaded ``repro-serve/1`` server vs asyncio ``repro-serve/2``
#: gateway under fixed arrival rates, with steady-state latency
#: percentiles, SLO attainment, overload behaviour, warm-start
#: economics and response parity); ``/8`` adds the additive ``cost``
#: field (the cost-ordered evaluation workload of
#: :mod:`repro.bench.costbench`: source-order engine vs cost-ordered
#: engine vs cost-ordered kernels, the DL5xx diagnostic counts, the
#: predicted-vs-measured shard skew, and the configuration-closure
#: certificate).
JSON_SCHEMA = "repro-figure6/8"


def _measurement_json(measurement: Measurement) -> Dict:
    out: Dict = {
        "sizes": dict(measurement.sizes),
        "ci_sizes": dict(measurement.ci_sizes),
        "total": measurement.total,
        "seconds": measurement.seconds,
    }
    if measurement.counters is not None:
        out["counters"] = measurement.counters
    return out


def figure6_json(
    table: Figure6,
    scale: Optional[int] = None,
    repetitions: Optional[int] = None,
    engine: Optional[str] = None,
    query_latency: Optional[Dict] = None,
    incremental: Optional[Dict] = None,
    checks: Optional[Dict] = None,
    parallel: Optional[Dict] = None,
    kernels: Optional[Dict] = None,
    serving: Optional[Dict] = None,
    cost: Optional[Dict] = None,
) -> Dict:
    """The table as a JSON-serializable dict (schema ``repro-figure6/8``).

    Top-level keys: ``schema``, the run parameters (``scale``,
    ``repetitions``, ``engine``; ``None`` when unknown), ``benchmarks``,
    ``configurations``, ``cells``, ``geomean``, plus three additive
    workload fields (``None`` when not measured): ``query_latency``
    (new in ``/2``, the service query-latency workload of
    :func:`repro.bench.querybench.run_query_latency`), ``incremental``
    (new in ``/3``, the edit-churn workload of
    :func:`repro.bench.deltabench.run_delta_churn`) and ``checks``
    (new in ``/4``, the client-checker precision audit of
    :func:`repro.bench.checkbench.run_check_audit`) and ``parallel``
    (new in ``/5``, the sharded-fixpoint workload of
    :func:`repro.bench.parallelbench.run_parallel_fixpoint`: the
    shard-plan rule classification, per-shard-count speedup/skew/
    exchange volume, and the run-time shard-safety certificate) and
    ``kernels`` (new in ``/6``, the columnar kernel-backend workload of
    :func:`repro.bench.kernelbench.run_kernel_block`: generic engine vs
    fused integer kernels vs sharded kernels, with exact parity and the
    shard-safety certificate) and ``serving`` (new in ``/7``, the
    open-loop serving workload of
    :func:`repro.bench.loadbench.run_serving_block`: threaded server vs
    async gateway throughput and latency percentiles at fixed arrival
    rates, overload behaviour and warm-start economics) and ``cost``
    (new in ``/8``, the cost-ordered evaluation workload of
    :func:`repro.bench.costbench.run_cost_block`: source-order engine
    vs cost-ordered engine vs cost-ordered kernels with exact parity,
    DL5xx diagnostic counts, predicted-vs-measured shard skew, and the
    configuration-closure certificate summary).
    Each cell carries
    both abstractions' measurements (sizes, CI sizes, total, seconds,
    and per-relation store counters when available) plus the derived
    decrease percentages as fractions.
    """
    return {
        "query_latency": query_latency,
        "incremental": incremental,
        "checks": checks,
        "parallel": parallel,
        "kernels": kernels,
        "serving": serving,
        "cost": cost,
        "schema": JSON_SCHEMA,
        "scale": scale,
        "repetitions": repetitions,
        "engine": engine,
        "benchmarks": table.benchmarks(),
        "configurations": table.configurations(),
        "cells": [
            {
                "benchmark": cell.benchmark,
                "configuration": cell.configuration,
                "context_string": _measurement_json(cell.context_string),
                "transformer_string": _measurement_json(
                    cell.transformer_string
                ),
                "size_decrease": {
                    relation: cell.size_decrease(relation)
                    for relation in RELATIONS
                },
                "total_decrease": cell.total_decrease(),
                "time_decrease": cell.time_decrease(),
            }
            for cell in table.cells
        ],
        "geomean": {
            configuration: {
                "total_decrease": table.geomean_total_decrease(configuration),
                "time_decrease": table.geomean_time_decrease(configuration),
            }
            for configuration in table.configurations()
        },
    }


def format_json(
    table: Figure6,
    scale: Optional[int] = None,
    repetitions: Optional[int] = None,
    engine: Optional[str] = None,
    query_latency: Optional[Dict] = None,
    incremental: Optional[Dict] = None,
    checks: Optional[Dict] = None,
    parallel: Optional[Dict] = None,
    kernels: Optional[Dict] = None,
    serving: Optional[Dict] = None,
    cost: Optional[Dict] = None,
) -> str:
    """:func:`figure6_json` serialized (indented, trailing newline)."""
    return json.dumps(
        figure6_json(table, scale=scale, repetitions=repetitions,
                     engine=engine, query_latency=query_latency,
                     incremental=incremental, checks=checks,
                     parallel=parallel, kernels=kernels, serving=serving,
                     cost=cost),
        indent=2,
    ) + "\n"


def format_cell_summary(cell: Cell) -> str:
    """One-line summary of a single cell (used by benchmark output)."""
    return (
        f"{cell.benchmark}/{cell.configuration}: total"
        f" {cell.context_string.total} -> {cell.transformer_string.total}"
        f" ({cell.total_decrease() * 100:.1f}% fewer facts),"
        f" time {cell.context_string.seconds * 1000:.1f}ms ->"
        f" {cell.transformer_string.seconds * 1000:.1f}ms"
    )
