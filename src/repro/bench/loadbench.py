"""Open-loop serving benchmark: threaded server vs async gateway.

Closed-loop benchmarks (issue, wait, repeat) hide queueing delay: a
slow server simply receives fewer requests, and its latency numbers
look flattering precisely when it is drowning — the coordinated
omission problem.  This workload is **open-loop**: requests arrive on
a fixed schedule (``rate`` per second) whether or not earlier ones
have been answered, and each latency sample is measured from the
request's *scheduled arrival time*, so time spent queueing behind a
saturated server counts against it.

One deterministic request stream (seeded mix of ``points_to`` /
``alias`` / ``callees`` / ``fields_of`` queries, ``check`` runs and
``update`` deltas) is replayed against both serving stacks:

* the threaded ``repro-serve/1`` TCP server
  (:mod:`repro.service.server`) — one OS thread per connection;
* the asyncio ``repro-serve/2`` gateway (:mod:`repro.serve.gateway`)
  — one event loop, micro-batched execution.

Update deltas are *commutative and non-interfering by construction*:
update ``k`` adds an ``assign`` edge into a fresh variable
``lb_extra_<k>`` nobody queries, so the final state is independent of
arrival interleaving and every query answer is independent of how
many updates have landed — which is what lets the harness assert
**bit-identical parity**: every sampled query response must equal the
answer a direct (in-process) :class:`~repro.service.AnalysisService`
gives on the same snapshot.

Reported per target: steady-state (post-warmup) p50/p95/p99 latency,
throughput, SLO attainment at ``slo_ms`` and the derived
``slo_goodput`` (answers per second that met the SLO), plus error
counts by code.  The gateway additionally gets an **overload probe**
(a burst far beyond ``queue_limit`` must produce explicit
``overload`` responses, not timeouts or dropped connections) and the
block records **warm-start economics** (snapshot restore vs cold
solve).  The result embeds as the additive ``serving`` block of
``repro-figure6/8`` and as a ``BENCH_*.json`` trajectory payload.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import config_by_name
from repro.frontend.factgen import FactSet
from repro.perf.registry import corpus_facts
from repro.perf.stats import percentile, to_ms
from repro.service.service import AnalysisService, variables_of

DEFAULT_BENCHMARK = "bloat"
DEFAULT_CONFIGURATION = "1-call"


@dataclass
class LoadSpec:
    """One open-loop run's shape."""

    rate: float = 300.0        # scheduled arrivals per second
    duration_s: float = 4.0    # offered-load window
    warmup_s: float = 1.0      # arrivals before this are not scored
    connections: int = 16      # client connections sharing the stream
    query_fraction: float = 0.84
    check_fraction: float = 0.08   # remainder is update traffic
    seed: int = 20260808
    slo_ms: float = 50.0
    parity_every: int = 7      # record every Nth query's full answer

    def as_dict(self) -> Dict:
        return asdict(self)


# -- request stream ---------------------------------------------------------


def build_requests(
    facts: FactSet, spec: LoadSpec, tenant: Optional[str] = None
) -> List[Dict]:
    """The deterministic request stream for one run.

    ``tenant`` is attached when given (the ``repro-serve/1`` server
    ignores unknown fields, so one stream serves both protocols).
    """
    rng = random.Random(spec.seed)
    variables = sorted(variables_of(facts))
    sites = sorted(
        {row[0] for row in facts.virtual_invoke}
        | {row[0] for row in facts.static_invoke}
    )
    heaps = sorted({row[0] for row in facts.assign_new})
    total = max(1, int(spec.rate * spec.duration_s))
    requests: List[Dict] = []
    for index in range(total):
        draw = rng.random()
        if draw < spec.query_fraction:
            kind = rng.randrange(4)
            if kind == 0 or not sites or not heaps:
                request = {
                    "op": "points_to", "var": rng.choice(variables)
                }
            elif kind == 1:
                request = {
                    "op": "alias",
                    "a": rng.choice(variables),
                    "b": rng.choice(variables),
                }
            elif kind == 2:
                request = {"op": "callees", "site": rng.choice(sites)}
            else:
                request = {"op": "fields_of", "heap": rng.choice(heaps)}
        elif draw < spec.query_fraction + spec.check_fraction:
            request = {"op": "check", "checks": ["CK1"]}
        else:
            # Commutative, non-interfering: a fresh sink variable fed
            # from an existing one.  See the module docstring.
            request = {
                "op": "update",
                "delta": {
                    "added": {
                        "assign": [
                            [rng.choice(variables), f"lb_extra_{index}"]
                        ]
                    }
                },
            }
        request["id"] = index
        if tenant is not None:
            request["tenant"] = tenant
        requests.append(request)
    return requests


# -- the open-loop driver ---------------------------------------------------


@dataclass
class _Sample:
    scheduled: float   # offset from run start, seconds
    latency: float     # completion - scheduled arrival, seconds
    ok: bool
    code: Optional[str]


# Shared arithmetic from the perf subsystem (one implementation for
# every harness); the local names are kept for existing importers.
_percentile = percentile


async def _drive_connection(
    host: str,
    port: int,
    assigned: List[Tuple[float, Dict]],
    t0: float,
    samples: Dict[int, _Sample],
    answers: Dict[int, object],
    spec: LoadSpec,
    dropped: Dict[int, float],
) -> None:
    loop = asyncio.get_running_loop()
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        # A server refusing connections under load is a result, not a
        # crash: every assigned request counts as dropped.
        for scheduled, request in assigned:
            dropped[request["id"]] = scheduled
        return
    pending: Dict[int, float] = {}
    done = asyncio.Event()

    async def _read() -> None:
        try:
            while len(samples_local) < len(assigned):
                raw = await reader.readline()
                if not raw:
                    break
                response = json.loads(raw)
                request_id = response.get("id")
                scheduled = pending.pop(request_id, None)
                if scheduled is None:
                    continue
                latency = loop.time() - (t0 + scheduled)
                sample = _Sample(
                    scheduled=scheduled,
                    latency=latency,
                    ok=bool(response.get("ok")),
                    code=response.get("code"),
                )
                samples[request_id] = sample
                samples_local.append(request_id)
                if request_id in answers:
                    answers[request_id] = response.get("result")
        except (ConnectionError, OSError):
            pass
        done.set()

    samples_local: List[int] = []
    reader_task = loop.create_task(_read())
    try:
        for scheduled, request in assigned:
            delay = (t0 + scheduled) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            pending[request["id"]] = scheduled
            try:
                writer.write(json.dumps(request).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionError, OSError):
                # Connection reset mid-run (e.g. a thread-per-connection
                # server shedding load the hard way).  The remaining
                # schedule on this lane is dropped traffic.
                break
        try:
            await asyncio.wait_for(done.wait(), timeout=30.0)
        except asyncio.TimeoutError:
            pass
    finally:
        reader_task.cancel()
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass
        for scheduled, request in assigned:
            if request["id"] not in samples:
                dropped[request["id"]] = scheduled


async def _drive(
    host: str, port: int, requests: List[Dict], spec: LoadSpec
) -> Tuple[Dict[int, _Sample], Dict[int, object], Dict[int, float]]:
    loop = asyncio.get_running_loop()
    t0 = loop.time() + 0.1
    samples: Dict[int, _Sample] = {}
    dropped: Dict[int, float] = {}
    #: query ids whose full answers we keep for the parity check.
    answers: Dict[int, object] = {
        request["id"]: None
        for request in requests
        if request["op"] in
        ("points_to", "alias", "callees", "fields_of")
        and request["id"] % spec.parity_every == 0
    }
    lanes: List[List[Tuple[float, Dict]]] = [
        [] for _ in range(spec.connections)
    ]
    for index, request in enumerate(requests):
        scheduled = index / spec.rate
        lanes[index % spec.connections].append((scheduled, request))
    await asyncio.gather(*[
        _drive_connection(
            host, port, lane, t0, samples, answers, spec, dropped
        )
        for lane in lanes if lane
    ])
    return samples, answers, dropped


def run_open_loop(
    host: str, port: int, requests: List[Dict], spec: LoadSpec
) -> Tuple[Dict, Dict[int, object]]:
    """Replay ``requests`` open-loop; returns (result dict, answers).

    The result scores only steady-state samples (scheduled at or after
    ``warmup_s``); ``answers`` maps sampled query ids to the full
    served results for the parity check.  Requests the server never
    answered (refused or reset connections) are **dropped** traffic:
    they count against SLO attainment but contribute no latency sample.
    """
    samples, answers, dropped = asyncio.run(
        _drive(host, port, requests, spec)
    )
    steady = [
        sample for sample in samples.values()
        if sample.scheduled >= spec.warmup_s
    ]
    steady_dropped = sum(
        1 for scheduled in dropped.values()
        if scheduled >= spec.warmup_s
    )
    window = max(1e-9, spec.duration_s - spec.warmup_s)
    latencies = sorted(sample.latency for sample in steady)
    errors: Dict[str, int] = {}
    for sample in samples.values():
        if not sample.ok and sample.code:
            errors[sample.code] = errors.get(sample.code, 0) + 1
    if dropped:
        errors["connection-dropped"] = len(dropped)
    # Only *successful* answers can meet the SLO — a fast "overload"
    # rejection is good behaviour but not served traffic.
    within_slo = sum(
        1 for sample in steady
        if sample.ok and sample.latency * 1000 <= spec.slo_ms
    )
    steady_offered = len(steady) + steady_dropped
    attainment = (
        (within_slo / steady_offered) if steady_offered else None
    )
    throughput = len(steady) / window
    return {
        "offered": len(requests),
        "answered": len(samples),
        "dropped": len(dropped),
        "steady_answered": len(steady),
        "throughput_rps": throughput,
        "latency_ms": {
            "p50": _ms(_percentile(latencies, 0.50)),
            "p95": _ms(_percentile(latencies, 0.95)),
            "p99": _ms(_percentile(latencies, 0.99)),
            "max": _ms(latencies[-1]) if latencies else None,
        },
        "slo_ms": spec.slo_ms,
        "slo_attainment": attainment,
        "slo_goodput_rps": (
            throughput * attainment if attainment is not None else None
        ),
        "errors": dict(sorted(errors.items())),
    }, answers


_ms = to_ms


# -- serving targets --------------------------------------------------------


def _start_threaded(
    snapshot_path: str,
) -> Tuple[str, int, "AnalysisService", object]:
    from repro.service.server import ServiceTCPServer

    service = AnalysisService.from_snapshot(snapshot_path)
    server = ServiceTCPServer(("127.0.0.1", 0), service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def stop() -> None:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    return host, port, service, stop


def _start_gateway(
    snapshot_path: str, gateway_config=None
):
    from repro.serve.gateway import GatewayConfig, run_gateway_in_thread
    from repro.serve.registry import SnapshotRegistry

    registry = SnapshotRegistry()
    digest = registry.register(snapshot_path)
    gateway, (host, port), _thread, stop = run_gateway_in_thread(
        registry, gateway_config or GatewayConfig()
    )
    return host, port, gateway, digest, stop


# -- probes -----------------------------------------------------------------


def _overload_probe(snapshot_path: str, burst: int = 200) -> Dict:
    """Blast a tiny-queue gateway; every request must get an answer,
    and backpressure must be explicit (``overload``), not a timeout."""
    import socket

    from repro.serve.gateway import GatewayConfig

    host, port, _gateway, _digest, stop = _start_gateway(
        snapshot_path,
        GatewayConfig(queue_limit=8, max_batch=4, max_delay_ms=1.0),
    )
    try:
        connection = socket.create_connection((host, port))
        stream = connection.makefile("rw")
        for index in range(burst):
            stream.write(json.dumps(
                {"id": index, "op": "points_to", "var": "nonexistent"}
            ) + "\n")
        stream.flush()
        codes: Dict[str, int] = {}
        answered = 0
        for _ in range(burst):
            response = json.loads(stream.readline())
            answered += 1
            if not response.get("ok"):
                code = response.get("code", "?")
                codes[code] = codes.get(code, 0) + 1
        connection.close()
    finally:
        stop()
    return {
        "burst": burst,
        "answered": answered,
        "overload": codes.get("overload", 0),
        "timeouts": codes.get("timeout", 0),
        "other_errors": {
            code: count for code, count in sorted(codes.items())
            if code not in ("overload", "timeout", "op-failed")
        },
        "explicit_backpressure": (
            answered == burst
            and codes.get("overload", 0) > 0
            and codes.get("timeout", 0) == 0
        ),
    }


def _parity_check(
    snapshot_path: str,
    requests: List[Dict],
    answers_by_target: Dict[str, Dict[int, object]],
) -> Dict:
    """Every sampled served answer must equal the direct service's."""
    from repro.service.server import handle_request

    direct = AnalysisService.from_snapshot(snapshot_path)
    by_id = {request["id"]: request for request in requests}
    checked = 0
    mismatches: List[Dict] = []
    for target, answers in sorted(answers_by_target.items()):
        for request_id, served in sorted(answers.items()):
            if served is None:  # never answered (e.g. load shed)
                continue
            request = {
                key: value for key, value in by_id[request_id].items()
                if key != "tenant"
            }
            expected = handle_request(direct, request).get("result")
            checked += 1
            if expected != served:
                mismatches.append({
                    "target": target,
                    "id": request_id,
                    "op": request["op"],
                })
    return {
        "queries_checked": checked,
        "mismatches": mismatches[:10],
        "ok": checked > 0 and not mismatches,
    }


# -- the figure6/8 block ----------------------------------------------------


def run_serving_block(
    scale: int = 1,
    benchmark: str = DEFAULT_BENCHMARK,
    configuration: str = DEFAULT_CONFIGURATION,
    spec: Optional[LoadSpec] = None,
    overload_burst: int = 200,
) -> Dict:
    """Threaded server vs async gateway under identical open-loop load.

    Returns the additive ``serving`` block of ``repro-figure6/8``.
    """
    import os
    import tempfile

    spec = spec or LoadSpec()
    config = config_by_name(configuration)
    facts = corpus_facts(benchmark, scale)

    start = time.perf_counter()
    service = AnalysisService.from_facts(facts, config, backend="kernel")
    solve_seconds = time.perf_counter() - start
    handle, snapshot_path = tempfile.mkstemp(
        prefix="repro-loadbench-", suffix=".json"
    )
    os.close(handle)
    try:
        service.save_snapshot(snapshot_path)
        start = time.perf_counter()
        AnalysisService.from_snapshot(snapshot_path)
        restore_seconds = time.perf_counter() - start

        requests = build_requests(facts, spec)
        targets: Dict[str, Dict] = {}
        answers_by_target: Dict[str, Dict[int, object]] = {}

        host, port, _service, stop = _start_threaded(snapshot_path)
        try:
            result, answers = run_open_loop(host, port, requests, spec)
        finally:
            stop()
        result["protocol"] = "repro-serve/1"
        targets["threaded"] = result
        answers_by_target["threaded"] = answers

        host, port, gateway, _digest, stop = _start_gateway(snapshot_path)
        try:
            result, answers = run_open_loop(host, port, requests, spec)
            gateway_stats = gateway.stats.as_dict(0, gateway.draining)
            gateway_stats["registry"] = gateway.registry.describe()
        finally:
            stop()
        result["protocol"] = "repro-serve/2"
        result["gateway"] = gateway_stats
        targets["gateway"] = result
        answers_by_target["gateway"] = answers

        overload = _overload_probe(snapshot_path, burst=overload_burst)
        parity = _parity_check(snapshot_path, requests, answers_by_target)
    finally:
        os.unlink(snapshot_path)

    threaded, gw = targets["threaded"], targets["gateway"]

    def _goodput(block: Dict) -> float:
        return block.get("slo_goodput_rps") or 0.0

    # Latency percentiles only cover *answered* requests, so a target
    # that dropped traffic cannot win on p99 — its tail is survivorship-
    # biased by exactly the requests that would have populated it.
    threaded_clean = threaded.get("dropped", 0) == 0
    gateway_wins = _goodput(gw) >= _goodput(threaded) and (
        not threaded_clean
        or (gw["latency_ms"]["p99"] or 0)
        <= (threaded["latency_ms"]["p99"] or 0)
    )
    return {
        "benchmark": benchmark,
        "configuration": configuration,
        "scale": scale,
        "spec": spec.as_dict(),
        "warm_start": {
            "solve_seconds": solve_seconds,
            "restore_seconds": restore_seconds,
            "speedup": (
                solve_seconds / restore_seconds
                if restore_seconds > 0 else None
            ),
        },
        "targets": targets,
        "overload": overload,
        "parity": parity,
        "gateway_wins": gateway_wins,
    }


def format_serving(block: Dict) -> str:
    """One-paragraph text rendering (used by the CLI)."""
    spec = block["spec"]
    lines = [
        f"serving ({block['benchmark']}/{block['configuration']},"
        f" scale={block['scale']}): {spec['rate']:.0f} req/s open-loop"
        f" x {spec['duration_s']:.0f}s, {spec['connections']} connections,"
        f" SLO {spec['slo_ms']:.0f}ms"
    ]
    for name in ("threaded", "gateway"):
        target = block["targets"][name]
        latency = target["latency_ms"]

        def fmt(value):
            return "n/a" if value is None else f"{value:.1f}"

        attainment = target["slo_attainment"]
        drops = (
            f", {target['dropped']} dropped"
            if target.get("dropped") else ""
        )
        lines.append(
            f"  {name} ({target['protocol']}):"
            f" {target['throughput_rps']:.0f} rps,"
            f" p50/p95/p99 {fmt(latency['p50'])}/{fmt(latency['p95'])}"
            f"/{fmt(latency['p99'])}ms,"
            f" SLO {attainment * 100:.1f}%{drops}"
            if attainment is not None else f"  {name}: no steady samples"
        )
    warm = block["warm_start"]
    if warm["speedup"] is not None:
        lines.append(
            f"  warm start: restore {warm['restore_seconds'] * 1000:.0f}ms"
            f" vs solve {warm['solve_seconds'] * 1000:.0f}ms"
            f" ({warm['speedup']:.1f}x)"
        )
    overload = block["overload"]
    lines.append(
        f"  overload: {overload['answered']}/{overload['burst']} answered,"
        f" {overload['overload']} explicit overload,"
        f" {overload['timeouts']} timeouts"
        f" ({'ok' if overload['explicit_backpressure'] else 'FAILED'})"
    )
    parity = block["parity"]
    lines.append(
        f"  parity: {parity['queries_checked']} served answers vs direct"
        f" service ({'ok' if parity['ok'] else 'MISMATCH'})"
    )
    lines.append(
        "  verdict: "
        + ("gateway sustains >= goodput at <= p99"
           if block["gateway_wins"] else "threaded server wins (!)")
    )
    return "\n".join(lines)
