"""The kernel-backend workload for the figure6 JSON report.

Times the columnar kernel backend
(:class:`repro.datalog.kernel.KernelEngine`) against the generic
interpreting engine on one synthetic DaCapo analogue, plus the sharded
executor running kernels inside each shard
(:class:`repro.datalog.parallel.ParallelEngine` with ``kernels=True``),
and reports:

* generic-engine wall clock (the baseline all speedups divide);
* kernel-backend wall clock split into one-time kernel compilation
  (interning + code generation, independent of fact scale) and the
  fixpoint solve, with speedups for both the solve alone and the
  end-to-end total, plus rounds, rule evaluations and derived facts;
* for the sharded kernel run: wall clock, speedup, how many rule
  evaluations went through compiled kernels vs the interpreter, and
  the run-time shard-safety certificate counters (cross-shard probes
  from shard-local rules and ownership violations — both must be zero);
* exact parity: every backend's row sets are compared against the
  generic engine's before any timing is reported.

The block is additive in the figure6 JSON (schema ``repro-figure6/8``)
and is also a payload of the committed ``BENCH_*.json`` trajectory
files (ROADMAP item 4).
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import config_by_name
from repro.perf.registry import corpus_facts
from repro.perf.stats import stopwatch

DEFAULT_BENCHMARK = "bloat"
DEFAULT_CONFIGURATION = "2-object+H"
DEFAULT_SHARDS = 4


def run_kernel_block(
    scale: int = 2,
    benchmark: str = DEFAULT_BENCHMARK,
    configuration: str = DEFAULT_CONFIGURATION,
    shards: int = DEFAULT_SHARDS,
    processes: bool = True,
) -> Dict:
    """Generic engine vs kernel backend vs sharded kernels.

    Returns the additive ``kernels`` block of ``repro-figure6/8``.
    """
    from repro.compile.emit import compile_transformer_analysis
    from repro.datalog.engine import Engine
    from repro.datalog.kernel import KernelEngine
    from repro.datalog.parallel import ParallelEngine

    config = config_by_name(configuration)
    facts = corpus_facts(benchmark, scale)
    compiled = compile_transformer_analysis(
        facts, config.flavour, config.m, config.h
    )

    def _engine_run():
        engine = Engine(compiled.program, compiled.builtins)
        return engine, engine.run()

    (engine, baseline), engine_seconds = stopwatch(_engine_run)

    kernel_engine, compile_seconds = stopwatch(
        lambda: KernelEngine(compiled.program, compiled.builtins)
    )
    kernel_results, solve_seconds = stopwatch(kernel_engine.run)
    kernel_seconds = compile_seconds + solve_seconds

    def _sharded_run():
        sharded = ParallelEngine(
            compiled.program, compiled.builtins, shards=shards,
            processes=processes, kernels=True,
        )
        return sharded, sharded.run()

    (sharded, sharded_results), sharded_seconds = stopwatch(_sharded_run)
    stats = sharded.stats

    def speedup(seconds: float):
        return engine_seconds / seconds if seconds > 0 else None

    sharded_run = {
        "shards": shards,
        "backend": stats.backend,
        "seconds": sharded_seconds,
        "speedup": speedup(sharded_seconds),
        "rounds": stats.rounds,
        "rule_evaluations": stats.rule_evaluations,
        "kernel_rule_evaluations": stats.kernel_rule_evaluations,
        "cross_shard_probes_local": stats.cross_shard_probes_local,
        "ownership_violations": stats.ownership_violations,
        "parity": sharded_results == baseline,
    }
    return {
        "benchmark": benchmark,
        "configuration": configuration,
        "scale": scale,
        "engine_seconds": engine_seconds,
        "engine_rule_evaluations": engine.stats.rule_evaluations,
        "kernel": {
            "seconds": kernel_seconds,
            "compile_seconds": compile_seconds,
            "solve_seconds": solve_seconds,
            "speedup": speedup(kernel_seconds),
            "solve_speedup": speedup(solve_seconds),
            "rounds": kernel_engine.stats.rounds,
            "rule_evaluations": kernel_engine.stats.rule_evaluations,
            "facts_derived": kernel_engine.stats.facts_derived,
            "parity": kernel_results == baseline,
        },
        "sharded": sharded_run,
        # Bit-identical results from both kernel paths, and a clean
        # shard-safety certificate from the sharded run — all must hold.
        "certified": (
            kernel_results == baseline
            and sharded_run["parity"]
            and sharded_run["cross_shard_probes_local"] == 0
            and sharded_run["ownership_violations"] == 0
        ),
    }


def format_kernels(block: Dict) -> str:
    """One-paragraph text rendering (used by the CLI)."""
    lines = [
        f"kernel backend ({block['benchmark']}/"
        f"{block['configuration']}, scale={block['scale']}):"
        f" generic engine {block['engine_seconds'] * 1000:.1f}ms"
        f" ({block['engine_rule_evaluations']} rule evaluations)"
    ]
    kernel = block["kernel"]
    speedup = kernel["speedup"]
    suffix = f" ({speedup:.2f}x total)" if speedup is not None else ""
    solve = kernel["solve_speedup"]
    solve_suffix = f" ({solve:.2f}x)" if solve is not None else ""
    lines.append(
        f"  kernels: compile {kernel['compile_seconds'] * 1000:.1f}ms"
        f" + solve {kernel['solve_seconds'] * 1000:.1f}ms{solve_suffix}"
        f" = {kernel['seconds'] * 1000:.1f}ms{suffix}"
    )
    lines.append(
        f"    rounds={kernel['rounds']}"
        f" evaluations={kernel['rule_evaluations']}"
        f" parity={'ok' if kernel['parity'] else 'MISMATCH'}"
    )
    run = block["sharded"]
    speedup = run["speedup"]
    suffix = f" ({speedup:.2f}x)" if speedup is not None else ""
    lines.append(
        f"  {run['shards']} shards + kernels ({run['backend']}):"
        f" {run['seconds'] * 1000:.1f}ms{suffix}"
        f" kernel_evaluations={run['kernel_rule_evaluations']}"
        f"/{run['rule_evaluations']}"
        f" parity={'ok' if run['parity'] else 'MISMATCH'}"
    )
    lines.append(
        "  certificate: "
        + ("ok (parity + zero cross-shard probes from local rules)"
           if block["certified"] else "FAILED")
    )
    return "\n".join(lines)
