"""The parallel-fixpoint workload for the figure6 JSON report.

Times the plan-driven sharded executor
(:class:`repro.datalog.parallel.ParallelEngine`) against the
sequential semi-naive engine on one synthetic DaCapo analogue, at a
sweep of shard counts, and reports what the shard-safety analysis
promised and what the run certified:

* the plan summary (rule classification counts, replicated relations,
  witness count) for the partition key used;
* per shard count: wall-clock seconds and speedup over sequential,
  per-shard derived-fact skew, exchange/broadcast volume, rounds, and
  the run-time certificate counters (cross-shard probes from
  shard-local rules and ownership violations — both must be zero);
* exact parity: the parallel row sets are compared against the
  sequential engine's before any timing is reported.

The block is additive in the figure6 JSON (schema ``repro-figure6/8``)
and is also the payload of the committed ``BENCH_*.json`` trajectory
files (ROADMAP item 4).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.config import config_by_name
from repro.perf.registry import corpus_facts
from repro.perf.stats import stopwatch

DEFAULT_BENCHMARK = "bloat"
DEFAULT_CONFIGURATION = "2-object+H"
DEFAULT_SHARDS: Sequence[int] = (2, 4)


def run_parallel_fixpoint(
    scale: int = 2,
    shards: Sequence[int] = DEFAULT_SHARDS,
    benchmark: str = DEFAULT_BENCHMARK,
    configuration: str = DEFAULT_CONFIGURATION,
    key: Optional[str] = None,
    processes: bool = True,
) -> Dict:
    """Sequential vs parallel figure6 numbers for one workload.

    Returns the additive ``parallel`` block of ``repro-figure6/8``.
    """
    from repro.compile.emit import compile_transformer_analysis
    from repro.datalog.engine import Engine
    from repro.datalog.parallel import ParallelEngine
    from repro.datalog.partition import (
        DEFAULT_KEY, build_shard_plan, pointer_partition_spec,
    )

    if key is None:
        key = DEFAULT_KEY
    config = config_by_name(configuration)
    facts = corpus_facts(benchmark, scale)
    compiled = compile_transformer_analysis(
        facts, config.flavour, config.m, config.h
    )

    sequential, sequential_seconds = stopwatch(
        lambda: Engine(compiled.program, compiled.builtins).run()
    )

    spec = pointer_partition_spec(compiled.program, key)
    plan = build_shard_plan(compiled.program, spec, compiled.builtins)

    runs = []
    for count in shards:
        engine = ParallelEngine(
            compiled.program, compiled.builtins, shards=count, key=key,
            processes=processes,
        )
        results = engine.run()
        stats = engine.stats
        runs.append({
            "shards": count,
            "backend": stats.backend,
            "seconds": stats.seconds,
            "speedup": (
                sequential_seconds / stats.seconds
                if stats.seconds > 0 else None
            ),
            "rounds": stats.rounds,
            "per_shard_derived": list(stats.per_shard_derived),
            "skew": stats.skew(),
            "exchanged_rows": stats.exchanged_rows,
            "broadcast_rows": stats.broadcast_rows,
            "broadcast_volume": stats.broadcast_volume,
            "cross_shard_probes": stats.cross_shard_probes,
            "cross_shard_probes_local": stats.cross_shard_probes_local,
            "ownership_violations": stats.ownership_violations,
            "parity": results == sequential,
        })

    counts = plan.counts()
    return {
        "benchmark": benchmark,
        "configuration": configuration,
        "scale": scale,
        "key": key,
        "sequential_seconds": sequential_seconds,
        "plan": {
            "rules": len(plan.rules),
            "counts": counts,
            "replicated": sorted(plan.replicated),
            "replicas": sorted(plan.replicas),
            "witnesses": plan.witness_count(),
        },
        "runs": runs,
        # The zero-cross-shard-probe assertion for shard-local rules,
        # plus ownership and exact parity — all must hold.
        "certified": all(
            run["parity"]
            and run["cross_shard_probes_local"] == 0
            and run["ownership_violations"] == 0
            for run in runs
        ),
    }


def format_parallel(block: Dict) -> str:
    """One-paragraph text rendering (used by the CLI)."""
    lines = [
        f"parallel fixpoint ({block['benchmark']}/"
        f"{block['configuration']}, scale={block['scale']},"
        f" key={block['key']}):"
        f" sequential {block['sequential_seconds'] * 1000:.1f}ms"
    ]
    counts = block["plan"]["counts"]
    lines.append(
        f"  plan: {block['plan']['rules']} rules —"
        f" {counts['local']} local, {counts['exchange']} exchange,"
        f" {counts['broadcast']} broadcast"
        f" ({block['plan']['witnesses']} witnesses)"
    )
    for run in block["runs"]:
        speedup = run["speedup"]
        suffix = f" ({speedup:.2f}x)" if speedup is not None else ""
        lines.append(
            f"  {run['shards']} shards ({run['backend']}):"
            f" {run['seconds'] * 1000:.1f}ms{suffix}"
        )
        lines.append(
            f"    rounds={run['rounds']} skew={run['skew']:.2f}"
            f" exchanged={run['exchanged_rows']}"
            f" broadcast_volume={run['broadcast_volume']}"
            f" probes={run['cross_shard_probes']}"
            f" parity={'ok' if run['parity'] else 'MISMATCH'}"
        )
    lines.append(
        "  certificate: "
        + ("ok (zero cross-shard probes from local rules)"
           if block["certified"] else "FAILED")
    )
    return "\n".join(lines)
