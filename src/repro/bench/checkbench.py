"""Precision audit: the client checkers across the configuration matrix.

The client-level companion to Figure 6: where the figure counts derived
*facts* per flavour × (m, h) × abstraction, the audit counts checker
*findings* — the quantity a user of the analysis actually observes.
Two verdicts ride along with every sweep:

* ``monotone`` — per checker, whether every context-sensitive cell's
  finding identities are a subset of the insensitive (m=0, h=0) cell's
  (precision can only *remove* client findings);
* ``abstractions_agree`` — whether the two abstractions produce
  bit-identical findings (``CheckReport.findings_digest``) at equal
  (m, h), the client-level face of Theorem 6.2.

:func:`run_precision_audit` sweeps one fact set (the ``repro check
--audit`` CLI); :func:`run_check_audit` sweeps the benchmark programs
and becomes the additive ``checks`` block of the ``repro-figure6/8``
JSON.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checkers import CheckConfig, run_checks
from repro.core.analysis import analyze
from repro.core.config import PAPER_CONFIGURATIONS, config_by_name
from repro.bench.workloads import DACAPO_NAMES
from repro.frontend.factgen import FactSet
from repro.perf.registry import corpus_facts

#: The audit's default configuration column set: the insensitive
#: baseline first (the superset every other column is judged against),
#: then the paper's evaluated configurations.
AUDIT_CONFIGURATIONS: Tuple[str, ...] = (
    "insensitive",
) + PAPER_CONFIGURATIONS

ABSTRACTIONS: Tuple[str, ...] = ("context-string", "transformer-string")

#: Audit JSON sub-schema (embedded both in ``repro check --audit
#: --json`` output and in the figure6 ``checks`` block).
AUDIT_SCHEMA = "repro-check-audit/1"


def run_precision_audit(
    facts: FactSet,
    configurations: Sequence[str] = AUDIT_CONFIGURATIONS,
    abstractions: Sequence[str] = ABSTRACTIONS,
    checks: Optional[Sequence[str]] = None,
    check_config: CheckConfig = CheckConfig(),
) -> Dict:
    """Sweep one program; returns the audit document (JSON-ready)."""
    names = None
    cells: List[Dict] = []
    identities: Dict[Tuple[str, str], Dict[str, set]] = {}
    digests: Dict[Tuple[str, str], str] = {}
    for configuration in configurations:
        for abstraction in abstractions:
            config = config_by_name(configuration, abstraction=abstraction)
            report = run_checks(
                analyze(facts, config), facts,
                checks=checks, config=check_config,
            )
            if names is None:
                names = list(report.checks)
            by_checker = {
                name: {f.identity for f in findings}
                for name, findings in report.by_checker().items()
            }
            identities[(configuration, abstraction)] = by_checker
            digests[(configuration, abstraction)] = (
                report.findings_digest()
            )
            cells.append({
                "configuration": configuration,
                "abstraction": abstraction,
                "counts": {
                    name: len(by_checker.get(name, ()))
                    for name in report.checks
                },
                "total": len(report.findings),
            })
    baseline_name = configurations[0]
    monotone = {}
    for name in names or ():
        ok = True
        for configuration in configurations:
            for abstraction in abstractions:
                baseline = identities[(baseline_name, abstraction)].get(
                    name, set()
                )
                found = identities[(configuration, abstraction)].get(
                    name, set()
                )
                if not found <= baseline:
                    ok = False
        monotone[name] = ok
    agree = all(
        digests[(configuration, abstractions[0])]
        == digests[(configuration, abstraction)]
        for configuration in configurations
        for abstraction in abstractions[1:]
    ) if len(abstractions) > 1 else True
    return {
        "schema": AUDIT_SCHEMA,
        "baseline": baseline_name,
        "configurations": list(configurations),
        "abstractions": list(abstractions),
        "checkers": names or [],
        "cells": cells,
        "monotone": monotone,
        "abstractions_agree": agree,
    }


def run_check_audit(
    scale: int = 2,
    benchmarks: Iterable[str] = DACAPO_NAMES,
    configurations: Sequence[str] = AUDIT_CONFIGURATIONS,
) -> Dict:
    """The benchmark-suite audit (the figure6 ``checks`` block)."""
    out: Dict = {
        "schema": AUDIT_SCHEMA,
        "scale": scale,
        "configurations": list(configurations),
        "benchmarks": {},
    }
    for name in benchmarks:
        audit = run_precision_audit(
            corpus_facts(name, scale),
            configurations=configurations,
        )
        out["benchmarks"][name] = {
            "checkers": audit["checkers"],
            "cells": audit["cells"],
            "monotone": audit["monotone"],
            "abstractions_agree": audit["abstractions_agree"],
        }
    return out


def format_audit(audit: Dict, title: str = "Precision audit") -> str:
    """Render one program's audit as an aligned text table: one row per
    configuration × abstraction, one column per checker."""
    checkers = audit["checkers"]
    width = max((len(name) for name in checkers), default=5) + 2
    label_width = max(
        (len(f"{c}/{a[:11]}") for c in audit["configurations"]
         for a in audit["abstractions"]), default=10
    ) + 2
    lines = [f"{title}: finding counts per configuration"]
    header = f"{'':{label_width}s}" + "".join(
        f"{name:>{width}s}" for name in checkers
    ) + f"{'total':>8s}"
    lines.append(header)
    lines.append("-" * len(header))
    for cell in audit["cells"]:
        label = f"{cell['configuration']}/{cell['abstraction'][:11]}"
        line = f"{label:{label_width}s}" + "".join(
            f"{cell['counts'].get(name, 0):>{width}d}" for name in checkers
        ) + f"{cell['total']:>8d}"
        lines.append(line)
    verdicts = ", ".join(
        f"{name}={'yes' if ok else 'NO'}"
        for name, ok in audit["monotone"].items()
    )
    lines.append(f"monotone vs {audit['baseline']}: {verdicts}")
    lines.append(
        "abstractions agree (bit-identical findings): "
        + ("yes" if audit["abstractions_agree"] else "NO")
    )
    return "\n".join(lines)
