"""Benchmark harness: run the configuration matrix of paper Figure 6.

For each (benchmark × sensitivity configuration) cell, both abstractions
are run on identical input facts and the Figure 6 quantities collected:
sizes of the context-sensitive ``pts``, ``hpts`` and ``call`` relations,
their total, and the analysis time, plus the context-insensitive sizes
(for the 2-type+H precision-loss sub-column).  :mod:`repro.bench.report`
formats the result in the paper's layout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.analysis import analyze
from repro.core.config import PAPER_CONFIGURATIONS, config_by_name
from repro.bench.workloads import DACAPO_NAMES
from repro.frontend.factgen import FactSet
from repro.perf.registry import corpus_facts
from repro.perf.stats import best_of

RELATIONS = ("pts", "hpts", "call")


@dataclass
class Measurement:
    """One analysis run: sizes, wall-clock time and store counters.

    ``counters`` is the per-relation statistics surface of the run's
    :class:`repro.store.TupleStore` (``None`` for callers that bypass
    the harness's own measurement functions).
    """

    sizes: Dict[str, int]
    ci_sizes: Dict[str, int]
    seconds: float
    counters: Optional[Dict[str, Dict[str, int]]] = None

    @property
    def total(self) -> int:
        return sum(self.sizes.values())


@dataclass
class Cell:
    """One benchmark × configuration cell: both abstractions."""

    benchmark: str
    configuration: str
    context_string: Measurement
    transformer_string: Measurement

    def size_decrease(self, relation: str) -> Optional[float]:
        """Fractional decrease of one relation's size (None if empty)."""
        base = self.context_string.sizes[relation]
        if base == 0:
            return None
        return 1.0 - self.transformer_string.sizes[relation] / base

    def total_decrease(self) -> float:
        return 1.0 - self.transformer_string.total / self.context_string.total

    def time_decrease(self) -> float:
        return 1.0 - self.transformer_string.seconds / self.context_string.seconds

    def ci_increase(self, relation: str) -> int:
        """Context-insensitive fact increase of the transformer
        abstraction (non-zero only under type sensitivity)."""
        return (
            self.transformer_string.ci_sizes[relation]
            - self.context_string.ci_sizes[relation]
        )


def _measure_solver(facts: FactSet, configuration: str, abstraction: str,
                    repetitions: int) -> Measurement:
    result = None

    def solve():
        nonlocal result
        result = analyze(facts, config_by_name(configuration, abstraction))

    best = best_of(solve, repetitions)
    return Measurement(
        sizes=result.relation_sizes(),
        ci_sizes=result.ci_sizes(),
        seconds=best,
        counters=result.store_stats(),
    )


def _measure_datalog(facts: FactSet, configuration: str, abstraction: str,
                     repetitions: int) -> Measurement:
    """Measure on the compiled Datalog back-end — the setup closest to
    the paper's (front-end emits Datalog; an LLVM-like engine runs it).
    Codegen happens once, outside the timed region, like any compiler."""
    from repro.compile.emit import (
        compile_context_string_analysis,
        compile_transformer_analysis,
    )
    from repro.datalog.codegen import CompiledEngine

    config = config_by_name(configuration)
    compiler = (
        compile_transformer_analysis
        if abstraction == "transformer-string"
        else compile_context_string_analysis
    )
    compiled = compiler(facts, config.flavour, config.m, config.h)
    engine = CompiledEngine(compiled.program, compiled.builtins)
    raw = None

    def solve():
        nonlocal raw
        raw = engine.run()

    best = best_of(solve, repetitions)
    relations = compiled.decoder(raw)
    sizes = {name: len(relations[name]) for name in RELATIONS}
    ci_sizes = {
        "pts": len({(y, h) for (y, h, _) in relations["pts"]}),
        "hpts": len({(g, f, h) for (g, f, h, _) in relations["hpts"]}),
        "call": len({(i, p) for (i, p, _) in relations["call"]}),
    }
    return Measurement(
        sizes=sizes, ci_sizes=ci_sizes, seconds=best,
        counters=engine.store_stats(),
    )


def run_cell(facts: FactSet, benchmark: str, configuration: str,
             repetitions: int = 1, engine: str = "solver") -> Cell:
    """Run both abstractions on one benchmark under one configuration.

    ``engine`` is ``"solver"`` (the worklist fast path) or ``"datalog"``
    (the compiled Datalog back-end, the paper's architecture).
    """
    measure = _measure_solver if engine == "solver" else _measure_datalog
    if engine not in ("solver", "datalog"):
        raise ValueError(f"unknown engine {engine!r}")
    return Cell(
        benchmark=benchmark,
        configuration=configuration,
        context_string=measure(facts, configuration, "context-string",
                               repetitions),
        transformer_string=measure(facts, configuration,
                                   "transformer-string", repetitions),
    )


@dataclass
class Figure6:
    """The full matrix plus the paper's geometric-mean summary rows."""

    cells: List[Cell] = field(default_factory=list)

    def cell(self, benchmark: str, configuration: str) -> Cell:
        for cell in self.cells:
            if (cell.benchmark, cell.configuration) == (benchmark, configuration):
                return cell
        raise KeyError((benchmark, configuration))

    def benchmarks(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.benchmark not in seen:
                seen.append(cell.benchmark)
        return seen

    def configurations(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.configuration not in seen:
                seen.append(cell.configuration)
        return seen

    def geomean_total_decrease(self, configuration: str) -> float:
        """Geometric-mean reduction of total fact counts (paper's
        penultimate row)."""
        ratios = [
            1.0 - cell.total_decrease()
            for cell in self.cells
            if cell.configuration == configuration
        ]
        return 1.0 - _geomean(ratios)

    def geomean_time_decrease(self, configuration: str) -> float:
        """Geometric-mean reduction of analysis times (paper's last row)."""
        ratios = [
            1.0 - cell.time_decrease()
            for cell in self.cells
            if cell.configuration == configuration
        ]
        return 1.0 - _geomean(ratios)


def _geomean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of no values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_figure6(
    benchmarks: Iterable[str] = DACAPO_NAMES,
    configurations: Iterable[str] = PAPER_CONFIGURATIONS,
    scale: int = 3,
    repetitions: int = 1,
    engine: str = "solver",
) -> Figure6:
    """Regenerate paper Figure 6 on the synthetic DaCapo analogues.

    ``engine="datalog"`` measures on the compiled Datalog back-end (the
    paper's own architecture) instead of the worklist solver.
    """
    table = Figure6()
    for benchmark in benchmarks:
        facts = corpus_facts(benchmark, scale=scale)
        for configuration in configurations:
            table.cells.append(
                run_cell(facts, benchmark, configuration, repetitions,
                         engine=engine)
            )
    return table
