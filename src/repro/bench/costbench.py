"""The cost-ordered evaluation workload for the figure6 JSON report.

Prices the static cost analyzer (:mod:`repro.datalog.cost`) on one
synthetic DaCapo analogue: the generic engine evaluating the emitted
program in author order, the same engine evaluating the cost-chosen
body orders, and the columnar kernel backend compiled from the
cost-ordered program — all parity-checked row-for-row against the
source-order baseline before any timing is reported.  Alongside the
timings the block carries:

* the DL5xx diagnostic counts and the number of reordered rules from
  the ``repro-cost-plan/1`` plan;
* the shard plan's *predicted* skew (from the plan's rule weights)
  next to the *measured* skew of an actual sharded run, so the cost
  model's load forecasts are audited against reality;
* the configuration-closure certificate summary
  (``repro-kernel-cert/1``): closure obligations discharged and kernel
  variant coverage — ``certified`` requires it to pass.

The block is additive in the figure6 JSON (schema ``repro-figure6/8``)
and is also a payload of the committed ``BENCH_*.json`` trajectory
files.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import config_by_name
from repro.perf.registry import corpus_facts
from repro.perf.stats import stopwatch

#: ``fanout`` (wide dispatch) is the corpus entry where cost-chosen
#: orders show a solve win that *grows* with scale; several other
#: entries are neutral-to-slightly-worse under reordering (the emitted
#: source orders are already good), which the block reports honestly.
DEFAULT_BENCHMARK = "fanout"
DEFAULT_CONFIGURATION = "2-object+H"
DEFAULT_SHARDS = 4


def run_cost_block(
    scale: int = 2,
    benchmark: str = DEFAULT_BENCHMARK,
    configuration: str = DEFAULT_CONFIGURATION,
    shards: int = DEFAULT_SHARDS,
) -> Dict:
    """Source-order engine vs cost-ordered engine vs cost-ordered
    kernels.  Returns the additive ``cost`` block of
    ``repro-figure6/8``.
    """
    from repro.compile.closure import certify_kernels
    from repro.compile.emit import compile_transformer_analysis
    from repro.datalog.cost import analyze_cost
    from repro.datalog.engine import Engine
    from repro.datalog.kernel import KernelEngine
    from repro.datalog.parallel import ParallelEngine
    from repro.datalog.partition import (
        build_shard_plan, pointer_partition_spec,
    )

    config = config_by_name(configuration)
    facts = corpus_facts(benchmark, scale)
    compiled = compile_transformer_analysis(
        facts, config.flavour, config.m, config.h
    )
    program, builtins = compiled.program, compiled.builtins

    plan, plan_seconds = stopwatch(
        lambda: analyze_cost(program, builtins=builtins)
    )
    diagnostics: Dict[str, int] = {}
    for diagnostic in plan.diagnostics:
        diagnostics[diagnostic.code] = diagnostics.get(diagnostic.code, 0) + 1

    def _engine_run():
        engine = Engine(program, builtins)
        return engine, engine.run()

    (engine, baseline), engine_seconds = stopwatch(_engine_run)

    # The plan is computed once above; evaluating the *applied* program
    # prices the reordering itself, not a second planning pass (the
    # planning cost is reported separately as plan.seconds).
    ordered_program = plan.apply()

    def _ordered_run():
        ordered = Engine(ordered_program, builtins)
        return ordered, ordered.run()

    (ordered, ordered_results), ordered_seconds = stopwatch(_ordered_run)

    kernel_engine, kernel_compile_seconds = stopwatch(
        lambda: KernelEngine(ordered_program, builtins)
    )
    kernel_results, kernel_solve_seconds = stopwatch(kernel_engine.run)

    # Predicted skew (cost weights spread over the shard plan) next to
    # the measured skew of an actual sharded run.
    spec = pointer_partition_spec(program)
    shard_plan = build_shard_plan(
        program, spec, builtins=builtins, weights=plan.rule_weights()
    )
    sharded = ParallelEngine(
        program, builtins, shards=shards, processes=False, kernels=True,
    )
    sharded_results = sharded.run()

    certificate = certify_kernels(
        config.flavour, config.m, config.h,
        program=kernel_engine.program, kernels=kernel_engine.kernels,
        builtins=kernel_engine.builtins,
    )

    def speedup(seconds: float):
        return engine_seconds / seconds if seconds > 0 else None

    predicted = shard_plan.predicted_skew(shards)
    measured = sharded.stats.skew()
    return {
        "benchmark": benchmark,
        "configuration": configuration,
        "scale": scale,
        "plan": {
            "seconds": plan_seconds,
            "rules": len(plan.rules),
            "reordered": plan.reordered_count(),
            "diagnostics": dict(sorted(diagnostics.items())),
            "digest": plan.digest(),
        },
        "engine_seconds": engine_seconds,
        "cost_ordered": {
            "seconds": ordered_seconds,
            "speedup": speedup(ordered_seconds),
            "rule_evaluations": ordered.stats.rule_evaluations,
            "parity": ordered_results == baseline,
        },
        "cost_ordered_kernel": {
            "seconds": kernel_compile_seconds + kernel_solve_seconds,
            "compile_seconds": kernel_compile_seconds,
            "solve_seconds": kernel_solve_seconds,
            "speedup": speedup(kernel_compile_seconds + kernel_solve_seconds),
            "solve_speedup": speedup(kernel_solve_seconds),
            "parity": kernel_results == baseline,
        },
        "skew": {
            "shards": shards,
            "predicted": predicted,
            "measured": measured,
            "parity": sharded_results == baseline,
        },
        "closure": {
            "obligations": len(certificate.obligations),
            "violations": len(certificate.violations()),
            "variants_required": len(certificate.required or ()),
            "variants_missing": len(certificate.missing or ()),
            "certified": certificate.certified,
        },
        # Bit-identical results on every surface plus a clean closure
        # certificate — all must hold for the block to be certified.
        "certified": (
            ordered_results == baseline
            and kernel_results == baseline
            and sharded_results == baseline
            and certificate.certified
        ),
    }


def format_cost(block: Dict) -> str:
    """One-paragraph text rendering (used by the CLI)."""
    plan = block["plan"]
    codes = ", ".join(
        f"{code}×{count}" for code, count in plan["diagnostics"].items()
    ) or "clean"
    lines = [
        f"cost-ordered evaluation ({block['benchmark']}/"
        f"{block['configuration']}, scale={block['scale']}):"
        f" plan {plan['seconds'] * 1000:.1f}ms,"
        f" {plan['reordered']}/{plan['rules']} rules reordered,"
        f" diagnostics: {codes}"
    ]
    lines.append(
        f"  source-order engine {block['engine_seconds'] * 1000:.1f}ms"
    )
    ordered = block["cost_ordered"]
    suffix = (
        f" ({ordered['speedup']:.2f}x)"
        if ordered["speedup"] is not None else ""
    )
    lines.append(
        f"  cost-ordered engine {ordered['seconds'] * 1000:.1f}ms{suffix}"
        f" parity={'ok' if ordered['parity'] else 'MISMATCH'}"
    )
    kernel = block["cost_ordered_kernel"]
    solve = kernel["solve_speedup"]
    solve_suffix = f" ({solve:.2f}x)" if solve is not None else ""
    lines.append(
        f"  cost-ordered kernels: compile"
        f" {kernel['compile_seconds'] * 1000:.1f}ms + solve"
        f" {kernel['solve_seconds'] * 1000:.1f}ms{solve_suffix}"
        f" parity={'ok' if kernel['parity'] else 'MISMATCH'}"
    )
    skew = block["skew"]
    predicted = (
        "n/a" if skew["predicted"] is None else f"{skew['predicted']:.2f}"
    )
    lines.append(
        f"  skew over {skew['shards']} shards: predicted {predicted}"
        f" vs measured {skew['measured']:.2f}"
    )
    closure = block["closure"]
    lines.append(
        f"  closure: {closure['obligations']} obligations"
        f" ({closure['violations']} violated),"
        f" {closure['variants_required'] - closure['variants_missing']}"
        f"/{closure['variants_required']} kernel variants"
        f" — {'certified' if closure['certified'] else 'NOT CERTIFIED'}"
    )
    lines.append(
        "  certificate: "
        + ("ok (parity on every surface + closure)"
           if block["certified"] else "FAILED")
    )
    return "\n".join(lines)
