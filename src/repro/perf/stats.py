"""Shared timing and percentile arithmetic for the benchmark harness.

Every workload module used to carry its own copy of the same three
idioms — nearest-rank percentiles over a sorted sample list, best-of-N
wall-clock timing, and "time this thunk" stopwatches.  They live here
once so the figure6 block runners, the corpus suite adapters, and the
serving load generator all agree on the arithmetic (and so a fix lands
everywhere at once).

The percentile is the nearest-rank form used throughout the repo:
``index = min(n-1, max(0, round(fraction * (n-1))))`` over the sorted
samples.  It is exact for the small sample counts benchmarks produce
and never interpolates, so summaries stay integer-stable.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


def percentile(ordered: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of an already-sorted sample list.

    Returns ``None`` on an empty list, matching the serving-path
    convention where an absent percentile renders as ``null``.
    """
    if not ordered:
        return None
    index = min(
        len(ordered) - 1,
        max(0, int(round(fraction * (len(ordered) - 1)))),
    )
    return ordered[index]


def latency_summary_us(samples: Sequence[float]) -> Dict[str, int]:
    """``{count, p50_us, p95_us}`` (microsecond ints) for raw samples.

    The shape served by :meth:`AnalysisService.metrics.latency_summary`
    and embedded in the figure6 ``query_latency`` block.
    """
    if not samples:
        return {"count": 0, "p50_us": 0, "p95_us": 0}
    ordered = sorted(samples)

    def at(fraction: float) -> int:
        value = percentile(ordered, fraction)
        return int(value * 1e6) if value is not None else 0

    return {"count": len(ordered), "p50_us": at(0.50), "p95_us": at(0.95)}


def to_ms(seconds: Optional[float]) -> Optional[float]:
    """Seconds → milliseconds rounded to 3 places (``None`` passes)."""
    if seconds is None:
        return None
    return round(seconds * 1000.0, 3)


def stopwatch(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` once, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def best_of(fn: Callable[[], object], repetitions: int) -> float:
    """Minimum wall-clock seconds of ``fn`` over ``repetitions`` runs.

    Min-of-N is the repo's steady-state estimator: the minimum is the
    run least disturbed by the machine, which is what a regression gate
    should compare.
    """
    best = float("inf")
    for _ in range(max(1, repetitions)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def timed_samples(
    fn: Callable[[], object],
    warmup: int,
    iterations: int,
) -> Tuple[List[float], List[float]]:
    """Run ``fn`` ``warmup + iterations`` times, splitting the timings.

    Returns ``(warmup_seconds, steady_seconds)``.  Warmup runs are
    timed (they are reported for transparency) but never enter
    steady-state statistics.
    """
    warmup_seconds: List[float] = []
    steady_seconds: List[float] = []
    for i in range(max(0, warmup) + max(1, iterations)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        (warmup_seconds if i < warmup else steady_seconds).append(elapsed)
    return warmup_seconds, steady_seconds


def speedup(baseline_seconds: float, seconds: float) -> float:
    """``baseline / seconds`` rounded to 2 places (0.0 if degenerate)."""
    if seconds <= 0:
        return 0.0
    return round(baseline_seconds / seconds, 2)
