"""SuiteAdapter: one benchmark definition, every execution surface.

The DaCapo harness runs one benchmark through many "callback" harness
variants without the benchmark knowing; here one
:class:`~repro.perf.registry.BenchmarkDef` drives every execution
surface the repo has grown:

========================  ==================================================
surface                    what is timed per steady iteration
========================  ==================================================
``worklist``               the sequential reference solver (the surface
                           every other one certifies against)
``engine``                 the semi-naive Datalog interpreter
``compiled``               rule bodies code-generated to Python
``kernel``                 fused columnar integer kernels
``kernel-cost``            kernels compiled from the cost-ordered program
``parallel-N``             the sharded BSP fixpoint over N shards
``incremental``            a stream of single-statement edits (DRed)
``serving``                the async gateway under open-loop load
========================  ==================================================

Each adapter returns a :class:`~repro.perf.result.RunResult` whose
``certified`` flag means the timed computation's derived relations were
verified bit-identical to the sequential worklist solver on the same
facts (for ``parallel-N`` additionally a clean shard-safety
certificate; for ``serving`` additionally sampled served answers equal
the direct service's).  Certification runs outside the timed region.

Warmup iterations execute the same work as steady iterations and are
timed, but only steady samples enter statistics or the gate.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Protocol

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import FactSet
from repro.perf.registry import BenchmarkDef
from repro.perf.result import RunResult
from repro.perf.stats import stopwatch, timed_samples

#: The derived relations compared for certification, in schema order.
RELATION_NAMES = ("pts", "hpts", "call", "reach", "spts", "texc")


class AdapterError(ValueError):
    """Raised for unknown surfaces or malformed adapter arguments."""


def relation_rows(result) -> Dict[str, FrozenSet]:
    """Frozen copies of the six derived relations of any result object
    exposing them as attributes (worklist, compiled, incremental)."""
    return {
        name: frozenset(getattr(result, name)) for name in RELATION_NAMES
    }


class SuiteAdapter(Protocol):
    """The protocol every execution surface implements."""

    surface: str

    def run(
        self,
        definition: BenchmarkDef,
        configuration: str,
        scale: int,
        warmup: int,
        iterations: int,
    ) -> RunResult:
        """Measure ``definition`` on this surface; certify the result."""
        ...


class _FactsAdapter:
    """Shared prep: timed factgen and the certification reference."""

    surface = "?"

    def _prepare(self, definition: BenchmarkDef, configuration: str,
                 scale: int) -> "_Prepared":
        config = config_by_name(configuration)
        facts, factgen_seconds = stopwatch(
            lambda: definition.facts(scale)
        )
        reference = relation_rows(analyze(facts, config))
        return _Prepared(config, facts, factgen_seconds, reference)

    def _result(self, definition: BenchmarkDef, configuration: str,
                scale: int) -> RunResult:
        return RunResult(
            benchmark=definition.name,
            surface=self.surface,
            configuration=configuration,
            scale=scale,
        )


class _Prepared:
    def __init__(self, config, facts: FactSet, factgen_seconds: float,
                 reference: Dict[str, FrozenSet]):
        self.config = config
        self.facts = facts
        self.factgen_seconds = factgen_seconds
        self.reference = reference


class WorklistAdapter(_FactsAdapter):
    """The sequential reference solver — the certification anchor.

    Certified by determinism: the relations of two independent solves
    must be bit-identical (every other surface is then compared against
    this fixpoint)."""

    surface = "worklist"

    def run(self, definition, configuration, scale, warmup, iterations):
        prep = self._prepare(definition, configuration, scale)
        result = self._result(definition, configuration, scale)
        result.reference = True
        result.phases["factgen"] = prep.factgen_seconds

        last = {}

        def solve():
            nonlocal last
            last = relation_rows(analyze(prep.facts, prep.config))

        result.warmup_seconds, result.steady_seconds = timed_samples(
            solve, warmup, iterations
        )
        result.phases["solve"] = result.best()
        result.certified = last == prep.reference
        result.metrics = {
            "facts": sum(prep.facts.counts().values()),
            "pts": len(prep.reference["pts"]),
            "reach": len(prep.reference["reach"]),
        }
        return result


class _DatalogAdapter(_FactsAdapter):
    """Shared shape of the three single-engine Datalog backends."""

    backend = "?"

    def run(self, definition, configuration, scale, warmup, iterations):
        from repro.compile.emit import compile_transformer_analysis

        prep = self._prepare(definition, configuration, scale)
        result = self._result(definition, configuration, scale)
        result.phases["factgen"] = prep.factgen_seconds

        compiled, compile_seconds = stopwatch(
            lambda: self._post_compile(compile_transformer_analysis(
                prep.facts, prep.config.flavour,
                prep.config.m, prep.config.h,
            ))
        )

        builds: List[float] = []
        last = None

        def solve():
            nonlocal last
            engine, build_seconds = stopwatch(
                lambda: self._engine(compiled)
            )
            builds.append(build_seconds)
            last = engine.run()

        # The steady sample is end-to-end (engine build + fixpoint): a
        # fresh engine per iteration, so no state survives between runs.
        result.warmup_seconds, result.steady_seconds = timed_samples(
            solve, warmup, iterations
        )
        steady_builds = builds[len(result.warmup_seconds):]
        best_index = result.steady_seconds.index(result.best())
        result.phases["compile"] = compile_seconds + steady_builds[best_index]
        result.phases["solve"] = result.best() - steady_builds[best_index]
        decoded = compiled.decoder(last)
        result.certified = {
            name: frozenset(decoded.get(name, ()))
            for name in RELATION_NAMES
        } == prep.reference
        result.metrics = {"facts": sum(prep.facts.counts().values())}
        return result

    def _post_compile(self, compiled):
        """Hook for per-surface program rewrites; runs inside the timed
        compile phase (not inside the per-iteration engine build)."""
        return compiled

    def _engine(self, compiled):
        raise NotImplementedError


class EngineAdapter(_DatalogAdapter):
    """The semi-naive interpreting engine."""

    surface = "engine"

    def _engine(self, compiled):
        from repro.datalog.engine import Engine

        return Engine(compiled.program, compiled.builtins)


class CompiledAdapter(_DatalogAdapter):
    """Rule bodies code-generated to Python (the LLVM-backend analogue)."""

    surface = "compiled"

    def _engine(self, compiled):
        from repro.datalog.codegen import CompiledEngine

        return CompiledEngine(compiled.program, compiled.builtins)


class KernelAdapter(_DatalogAdapter):
    """Fused integer kernels over the columnar store."""

    surface = "kernel"

    def _engine(self, compiled):
        from repro.datalog.kernel import KernelEngine

        return KernelEngine(compiled.program, compiled.builtins)


class KernelCostAdapter(_DatalogAdapter):
    """Fused integer kernels over the *cost-ordered* program.

    The static DL5xx planner (:mod:`repro.datalog.cost`) rewrites each
    rule body into its cost-chosen join order before kernel
    compilation; the planning pass is charged to the compile phase, so
    the steady samples price exactly what the reordering changes.
    Certified = bit-identical relations to the worklist reference, same
    as every other surface."""

    surface = "kernel-cost"

    def __init__(self):
        self._reordered: Optional[int] = None

    def _post_compile(self, compiled):
        from repro.datalog.cost import analyze_cost

        plan = analyze_cost(compiled.program, builtins=compiled.builtins)
        self._reordered = plan.reordered_count()
        compiled.program = plan.apply()
        return compiled

    def _engine(self, compiled):
        from repro.datalog.kernel import KernelEngine

        return KernelEngine(compiled.program, compiled.builtins)

    def run(self, definition, configuration, scale, warmup, iterations):
        result = super().run(
            definition, configuration, scale, warmup, iterations
        )
        result.metrics["reordered_rules"] = self._reordered
        return result


class ParallelAdapter(_FactsAdapter):
    """The sharded BSP fixpoint (kernels inside each shard).

    Certified = bit-identical relations *and* a clean shard-safety
    certificate: zero cross-shard probes from shard-local rules and
    zero ownership violations (the DL4xx analysis promise, checked at
    run time)."""

    def __init__(self, shards: int, processes: bool = False):
        if shards < 2:
            raise AdapterError("parallel surface needs >= 2 shards")
        self.shards = shards
        self.processes = processes
        self.surface = "parallel-%d" % shards

    def run(self, definition, configuration, scale, warmup, iterations):
        from repro.compile.emit import compile_transformer_analysis
        from repro.datalog.parallel import ParallelEngine

        prep = self._prepare(definition, configuration, scale)
        result = self._result(definition, configuration, scale)
        result.phases["factgen"] = prep.factgen_seconds

        compiled, compile_seconds = stopwatch(
            lambda: compile_transformer_analysis(
                prep.facts, prep.config.flavour,
                prep.config.m, prep.config.h,
            )
        )
        result.phases["compile"] = compile_seconds

        last_raw = None
        stats = None

        def solve():
            nonlocal last_raw, stats
            engine = ParallelEngine(
                compiled.program, compiled.builtins, shards=self.shards,
                processes=self.processes, kernels=True,
            )
            last_raw = engine.run()
            stats = engine.stats

        result.warmup_seconds, result.steady_seconds = timed_samples(
            solve, warmup, iterations
        )
        result.phases["solve"] = result.best()
        decoded = compiled.decoder(last_raw)
        parity = {
            name: frozenset(decoded.get(name, ()))
            for name in RELATION_NAMES
        } == prep.reference
        clean_certificate = (
            stats.cross_shard_probes_local == 0
            and stats.ownership_violations == 0
        )
        result.certified = parity and clean_certificate
        result.metrics = {
            "shards": self.shards,
            "processes": self.processes,
            "rounds": stats.rounds,
            "rule_evaluations": stats.rule_evaluations,
            "cross_shard_probes_local": stats.cross_shard_probes_local,
            "ownership_violations": stats.ownership_violations,
        }
        if not clean_certificate:
            result.notes.append("shard-safety certificate not clean")
        return result


class IncrementalAdapter(_FactsAdapter):
    """Edit churn on a live fixpoint (DRed + semi-naive additions).

    Each iteration replays the same deterministic edit stream against a
    fresh solver; the sample is the summed ``apply_delta`` cost.
    Certified = the post-churn fixpoint is bit-identical to a
    from-scratch solve of the post-edit facts."""

    surface = "incremental"

    def __init__(self, edits: int = 8, seed: int = 0):
        self.edits = edits
        self.seed = seed

    def run(self, definition, configuration, scale, warmup, iterations):
        from repro.incremental import IncrementalSolver, copy_facts
        from repro.incremental.edits import random_edits

        prep = self._prepare(definition, configuration, scale)
        result = self._result(definition, configuration, scale)
        result.phases["factgen"] = prep.factgen_seconds

        edit_stream = list(
            random_edits(prep.facts, self.edits, seed=self.seed)
        )
        rolling = copy_facts(prep.facts)
        for _kind, delta in edit_stream:
            delta.apply_to(rolling)

        fallbacks = 0
        last_solver: Optional[object] = None

        def churn():
            nonlocal fallbacks, last_solver
            solver = IncrementalSolver(copy_facts(prep.facts), prep.config)
            fallbacks = 0
            for _kind, delta in edit_stream:
                outcome = solver.apply_delta(delta)
                if outcome.fallback:
                    fallbacks += 1
            last_solver = solver

        result.warmup_seconds, result.steady_seconds = timed_samples(
            churn, warmup, iterations
        )
        result.phases["solve"] = result.best()

        scratch = relation_rows(analyze(rolling, prep.config))
        churned = {
            name: frozenset(rows)
            for name, rows in last_solver.relation_rows().items()
            if name in RELATION_NAMES
        }
        result.certified = churned == scratch
        result.metrics = {
            "edits": len(edit_stream),
            "seed": self.seed,
            "fallbacks": fallbacks,
        }
        return result


class ServingAdapter(_FactsAdapter):
    """The async gateway under deterministic open-loop load.

    Each iteration boots a fresh gateway on a pre-built snapshot and
    replays the same request stream; the sample is steady-state p50
    latency (the stream's own ``warmup_s`` arrivals are never scored).
    Certified = the restored snapshot's relations are bit-identical to
    the worklist solver *and* every sampled served answer equals the
    direct service's."""

    surface = "serving"

    def __init__(self, spec=None):
        self.spec = spec

    def _spec(self):
        from repro.bench.loadbench import LoadSpec

        return self.spec or LoadSpec(
            rate=150.0, duration_s=1.6, warmup_s=0.4,
            connections=4, parity_every=5,
        )

    def run(self, definition, configuration, scale, warmup, iterations):
        from repro.bench.loadbench import (
            _parity_check,
            _start_gateway,
            build_requests,
            run_open_loop,
        )
        from repro.service.service import AnalysisService

        prep = self._prepare(definition, configuration, scale)
        result = self._result(definition, configuration, scale)
        result.phases["factgen"] = prep.factgen_seconds
        spec = self._spec()

        service, solve_seconds = stopwatch(
            lambda: AnalysisService.from_facts(
                prep.facts, prep.config, backend="kernel"
            )
        )
        result.phases["solve"] = solve_seconds

        handle, snapshot_path = tempfile.mkstemp(
            prefix="repro-bench-serving-", suffix=".json"
        )
        os.close(handle)
        try:
            service.save_snapshot(snapshot_path)
            restored = AnalysisService.from_snapshot(snapshot_path)
            # The snapshot wraps a solved backend, not an AnalysisResult;
            # its restored relations are what every answer projects from.
            snapshot_parity = relation_rows(restored._result) == prep.reference

            requests = build_requests(prep.facts, spec)
            last_run: Dict = {}
            answers: Dict[int, object] = {}

            def serve_once():
                nonlocal last_run, answers
                host, port, _gateway, _digest, stop = _start_gateway(
                    snapshot_path
                )
                try:
                    last_run, answers = run_open_loop(
                        host, port, requests, spec
                    )
                finally:
                    stop()

            samples_w: List[float] = []
            samples_s: List[float] = []
            for i in range(max(0, warmup) + max(1, iterations)):
                start = time.perf_counter()
                serve_once()
                _wall = time.perf_counter() - start
                p50_ms = (last_run.get("latency_ms") or {}).get("p50")
                sample = (p50_ms or 0.0) / 1000.0
                (samples_w if i < warmup else samples_s).append(sample)
            result.warmup_seconds, result.steady_seconds = (
                samples_w, samples_s
            )
            result.phases["query"] = result.best()

            parity = _parity_check(
                snapshot_path, requests, {"gateway": answers}
            )
            result.certified = snapshot_parity and bool(parity.get("ok"))
            result.metrics = {
                "rate": spec.rate,
                "duration_s": spec.duration_s,
                "warmup_s": spec.warmup_s,
                "answered": last_run.get("answered"),
                "dropped": last_run.get("dropped"),
                "slo_goodput_rps": last_run.get("slo_goodput_rps"),
                "parity_checked": parity.get("queries_checked"),
            }
            if not parity.get("ok"):
                result.notes.append("served answers diverged from service")
        finally:
            os.unlink(snapshot_path)
        return result


def _parallel_factory(shards: int) -> Callable[[], SuiteAdapter]:
    return lambda: ParallelAdapter(shards)


#: Surface name → adapter factory.  ``adapter_for`` is the lookup.
ADAPTERS: Dict[str, Callable[[], SuiteAdapter]] = {
    "worklist": WorklistAdapter,
    "engine": EngineAdapter,
    "compiled": CompiledAdapter,
    "kernel": KernelAdapter,
    "kernel-cost": KernelCostAdapter,
    "parallel-2": _parallel_factory(2),
    "parallel-4": _parallel_factory(4),
    "incremental": IncrementalAdapter,
    "serving": ServingAdapter,
}


def adapter_for(surface: str) -> SuiteAdapter:
    """Instantiate the adapter for a surface name."""
    try:
        factory = ADAPTERS[surface]
    except KeyError:
        raise AdapterError(
            "unknown surface %r (known: %s)"
            % (surface, ", ".join(sorted(ADAPTERS)))
        ) from None
    return factory()
