"""Environment capture: git sha and a stable host fingerprint.

A benchmark number is only comparable to another number from the same
machine.  Each ``repro-bench/1`` document therefore records the commit
it measured and a short fingerprint of the host that measured it; the
gate and the trajectory use the fingerprint to decide whether two
points may be compared absolutely or only relatively (normalised by
the sequential reference surface).

The fingerprint hashes coarse, stable properties — interpreter
version, implementation, OS, machine architecture, CPU count — not
hostnames or anything personally identifying.  Two containers from the
same image on the same hardware class fingerprint identically, which
is exactly the granularity regression gating wants.
"""

from __future__ import annotations

import hashlib
import os
import platform
import subprocess
import sys
from typing import Dict, Optional


def git_sha(root: Optional[str] = None) -> Optional[str]:
    """The current commit sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root or os.getcwd(),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    if out.returncode != 0 or len(sha) != 40:
        return None
    return sha


def host_properties() -> Dict[str, str]:
    """The coarse host properties the fingerprint is derived from."""
    return {
        "python": "%d.%d.%d" % sys.version_info[:3],
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpus": str(os.cpu_count() or 1),
    }


def host_fingerprint(properties: Optional[Dict[str, str]] = None) -> str:
    """A 12-hex-digit digest of the host properties."""
    props = properties if properties is not None else host_properties()
    canonical = "|".join(
        "%s=%s" % (key, props[key]) for key in sorted(props)
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def capture_environment(root: Optional[str] = None) -> Dict[str, object]:
    """The ``environment`` block of a ``repro-bench/1`` document."""
    props = host_properties()
    return {
        "commit": git_sha(root),
        "fingerprint": host_fingerprint(props),
        "host": props,
    }
