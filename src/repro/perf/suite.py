"""Named suites: which corpus entries run on which surfaces, and how.

A suite is the unit ``repro bench run`` executes and the unit a
baseline pins: a list of (benchmark, surface, configuration, scale)
cells with a warmup/iteration discipline per cell.  Three suites ship:

* ``smoke`` — the CI gate: tiny scale, every distinct surface family
  (reference worklist, kernel backend, 2-shard parallel, incremental
  churn, serving gateway) across three corpus entries, seconds to run;
* ``micro`` — the smallest possible document (one benchmark, two
  surfaces), used by the test suite;
* ``corpus`` — the full seven-analogue grid on the solver surfaces, a
  local pre-merge comparison run.

Every suite includes the ``worklist`` reference entry for each
(benchmark, configuration, scale) it measures, because relative-mode
gating (cross-host) normalises by it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.perf.adapters import adapter_for
from repro.perf.registry import DEFAULT_REGISTRY, BenchmarkRegistry
from repro.perf.result import RunResult, results_by_key


@dataclass(frozen=True)
class SuiteEntry:
    """One cell of a suite grid."""

    benchmark: str
    surface: str
    configuration: str = "1-call"
    scale: int = 1
    warmup: int = 1
    iterations: int = 3


@dataclass(frozen=True)
class Suite:
    """A named, described list of cells."""

    name: str
    description: str
    entries: Tuple[SuiteEntry, ...]

    def surfaces(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for entry in self.entries:
            if entry.surface not in seen:
                seen.append(entry.surface)
        return tuple(seen)


def _smoke_entries() -> Tuple[SuiteEntry, ...]:
    # bloat is the paper's Section 8 exemplar; towers/fanout are the
    # backend-stress entries.  Every (benchmark, config, scale) pair
    # carries its worklist reference row for relative-mode gating.
    cells: List[SuiteEntry] = []
    for benchmark in ("bloat", "towers", "fanout"):
        cells.append(SuiteEntry(benchmark, "worklist"))
    cells += [
        SuiteEntry("bloat", "kernel"),
        SuiteEntry("towers", "kernel"),
        SuiteEntry("fanout", "kernel"),
        # fanout is the entry where DL5xx cost ordering wins and keeps
        # winning as scale grows — the gate pins that it stays certified.
        SuiteEntry("fanout", "kernel-cost"),
        SuiteEntry("bloat", "parallel-2"),
        SuiteEntry("fanout", "parallel-2"),
        SuiteEntry("bloat", "incremental"),
        SuiteEntry("bloat", "serving", warmup=0, iterations=1),
    ]
    return tuple(cells)


def _micro_entries() -> Tuple[SuiteEntry, ...]:
    return (
        SuiteEntry("luindex", "worklist", warmup=0, iterations=2),
        SuiteEntry("luindex", "engine", warmup=0, iterations=2),
    )


def _corpus_entries() -> Tuple[SuiteEntry, ...]:
    cells: List[SuiteEntry] = []
    for benchmark in DEFAULT_REGISTRY.names():
        for surface in ("worklist", "engine", "compiled", "kernel"):
            cells.append(SuiteEntry(benchmark, surface, "2-object+H", 1))
    return tuple(cells)


SUITES: Dict[str, Suite] = {
    "smoke": Suite(
        "smoke",
        "CI gate: every surface family at tiny scale",
        _smoke_entries(),
    ),
    "micro": Suite(
        "micro",
        "smallest valid document (tests)",
        _micro_entries(),
    ),
    "corpus": Suite(
        "corpus",
        "full corpus on the solver surfaces at 2-object+H",
        _corpus_entries(),
    ),
}


def run_suite(
    suite: Suite,
    registry: Optional[BenchmarkRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[RunResult]:
    """Execute every cell of ``suite``; returns results in suite order.

    Raises on duplicate cells (one suite, one measurement per key).
    """
    registry = registry or DEFAULT_REGISTRY
    results: List[RunResult] = []
    for entry in suite.entries:
        definition = registry.get(entry.benchmark)
        adapter = adapter_for(entry.surface)
        if progress is not None:
            progress(
                "%s/%s/%s/s%d"
                % (entry.benchmark, entry.surface,
                   entry.configuration, entry.scale)
            )
        results.append(adapter.run(
            definition, entry.configuration, entry.scale,
            entry.warmup, entry.iterations,
        ))
    results_by_key(results)
    return results
