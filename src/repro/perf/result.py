"""RunResult: one benchmark × surface × configuration measurement.

The DaCapo harness separates *warmup* iterations (run, timed, but not
scored) from the *steady-state* iterations a paper may cite.  A
:class:`RunResult` keeps both sample lists explicitly, plus per-phase
timers and the certification verdict, and serialises to the ``entries``
items of a ``repro-bench/1`` document.

``certified`` means the timed run's relations were verified
bit-identical to the sequential worklist solver on the same facts and
configuration — a benchmark number for a solver that produced wrong
points-to sets is worse than no number, so uncertified entries are
rendered loudly and a certification *loss* is treated as a regression
by the gate regardless of timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.perf.stats import percentile


#: Phase names in reporting order.  Not every surface has every phase:
#: interpreter surfaces have no ``compile``; serving has ``query`` but
#: no ``solve`` per iteration.
PHASE_NAMES = ("factgen", "compile", "solve", "query")


@dataclass
class RunResult:
    """Timings and verdicts for one (benchmark, surface, config) cell."""

    benchmark: str
    surface: str
    configuration: str
    scale: int
    warmup_seconds: List[float] = field(default_factory=list)
    steady_seconds: List[float] = field(default_factory=list)
    phases: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    certified: bool = False
    reference: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Stable entry key: ``benchmark/surface/configuration/sN``."""
        return "%s/%s/%s/s%d" % (
            self.benchmark, self.surface, self.configuration, self.scale,
        )

    def best(self) -> float:
        """Min-of-N over steady-state samples — the gated statistic."""
        if not self.steady_seconds:
            return 0.0
        return min(self.steady_seconds)

    def steady_stats(self) -> Dict[str, float]:
        """Summary statistics over steady-state samples only."""
        if not self.steady_seconds:
            return {"n": 0, "best": 0.0, "p50": 0.0, "worst": 0.0}
        ordered = sorted(self.steady_seconds)
        return {
            "n": len(ordered),
            "best": ordered[0],
            "p50": percentile(ordered, 0.50) or 0.0,
            "worst": ordered[-1],
        }

    def to_json(self) -> Dict[str, object]:
        """The canonical ``entries`` item of ``repro-bench/1``."""
        stats = self.steady_stats()
        return {
            "key": self.key,
            "benchmark": self.benchmark,
            "surface": self.surface,
            "configuration": self.configuration,
            "scale": self.scale,
            "warmup": {
                "n": len(self.warmup_seconds),
                "seconds": [round(s, 6) for s in self.warmup_seconds],
            },
            "steady": {
                "n": stats["n"],
                "seconds": [round(s, 6) for s in self.steady_seconds],
                "best": round(stats["best"], 6),
                "p50": round(stats["p50"], 6),
                "worst": round(stats["worst"], 6),
            },
            "phases": {
                name: round(self.phases[name], 6)
                for name in PHASE_NAMES if name in self.phases
            },
            "metrics": self.metrics,
            "certified": self.certified,
            "reference": self.reference,
            "notes": list(self.notes),
        }

    @classmethod
    def from_json(cls, entry: Dict[str, object]) -> "RunResult":
        return cls(
            benchmark=str(entry["benchmark"]),
            surface=str(entry["surface"]),
            configuration=str(entry["configuration"]),
            scale=int(entry["scale"]),
            warmup_seconds=[float(s) for s in entry["warmup"]["seconds"]],
            steady_seconds=[float(s) for s in entry["steady"]["seconds"]],
            phases={k: float(v) for k, v in entry.get("phases", {}).items()},
            metrics=dict(entry.get("metrics", {})),
            certified=bool(entry.get("certified", False)),
            reference=bool(entry.get("reference", False)),
            notes=[str(n) for n in entry.get("notes", [])],
        )


def results_by_key(results: List[RunResult]) -> Dict[str, RunResult]:
    """Index results by entry key, rejecting duplicates."""
    indexed: Dict[str, RunResult] = {}
    for result in results:
        if result.key in indexed:
            raise ValueError("duplicate benchmark entry %r" % result.key)
        indexed[result.key] = result
    return indexed
