"""The ``repro-bench/1`` document: byte-stable benchmark results.

Layout (schema header + digested body, the repo's document idiom):

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "digest": "sha256:<hex of canonical body>",
      "created": "<ISO-8601 UTC, excluded from the digest>",
      "body": {
        "suite": "smoke",
        "registry": {"bloat": 1, "...": 1},
        "environment": {
          "commit": "<40-hex sha or null>",
          "fingerprint": "<12-hex host fingerprint>",
          "host": {"python": "3.11.7", "...": "..."}
        },
        "entries": [ { "key": "bloat/kernel/1-call/s1", ... } ]
      }
    }

The digest covers the canonical encoding of ``body`` only (keys
sorted, no whitespace), so re-rendering the file never changes its
identity and a timestamp never invalidates a digest.  Two runs of the
same suite on the same commit and host differ only in timings — entry
order, key order and rounding are all fixed.

``validate_document`` is what ``repro lint`` calls: schema header,
digest, environment fingerprint shape, entry-key consistency, and the
warmup/steady split (steady stats must be derived from the steady
samples alone).
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, List, Optional

from repro.perf.env import capture_environment
from repro.perf.registry import DEFAULT_REGISTRY
from repro.perf.result import RunResult
from repro.perf.suite import Suite

BENCH_SCHEMA = "repro-bench/1"


class BenchDocumentError(ValueError):
    """A malformed, mis-digested or mis-shaped bench document."""


def _digest(body: Dict) -> str:
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def bench_document(
    suite: Suite,
    results: List[RunResult],
    environment: Optional[Dict] = None,
    created: Optional[str] = None,
) -> Dict:
    """Assemble the full document for one suite run."""
    body = {
        "suite": suite.name,
        "registry": DEFAULT_REGISTRY.versions(),
        "environment": environment or capture_environment(),
        "entries": [result.to_json() for result in results],
    }
    return {
        "schema": BENCH_SCHEMA,
        "digest": _digest(body),
        "created": created or time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "body": body,
    }


def render_document(document: Dict) -> str:
    """The byte-stable on-disk rendering."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_document(document: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_document(document))


def load_document(path: str) -> Dict:
    """Load + validate a bench document from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise BenchDocumentError(
                "%s: not JSON (%s)" % (path, error)
            ) from None
    validate_document(document)
    return document


_REQUIRED_ENTRY_KEYS = (
    "key", "benchmark", "surface", "configuration", "scale",
    "warmup", "steady", "phases", "metrics", "certified", "reference",
)


def validate_document(document: Dict) -> None:
    """Raise :class:`BenchDocumentError` on any shape/digest violation."""
    if not isinstance(document, dict):
        raise BenchDocumentError("document is not an object")
    if document.get("schema") != BENCH_SCHEMA:
        raise BenchDocumentError(
            "schema is %r, expected %r"
            % (document.get("schema"), BENCH_SCHEMA)
        )
    body = document.get("body")
    if not isinstance(body, dict):
        raise BenchDocumentError("body is missing or not an object")
    digest = document.get("digest")
    expected = _digest(body)
    if digest != expected:
        raise BenchDocumentError(
            "digest mismatch: header %r, body %r" % (digest, expected)
        )
    for field in ("suite", "registry", "environment", "entries"):
        if field not in body:
            raise BenchDocumentError("body.%s is missing" % field)
    environment = body["environment"]
    fingerprint = environment.get("fingerprint")
    if (
        not isinstance(fingerprint, str)
        or len(fingerprint) != 12
        or any(c not in "0123456789abcdef" for c in fingerprint)
    ):
        raise BenchDocumentError(
            "environment.fingerprint %r is not a 12-hex-digit digest"
            % (fingerprint,)
        )
    commit = environment.get("commit")
    if commit is not None and (
        not isinstance(commit, str) or len(commit) != 40
    ):
        raise BenchDocumentError(
            "environment.commit %r is neither null nor a 40-hex sha"
            % (commit,)
        )
    entries = body["entries"]
    if not isinstance(entries, list) or not entries:
        raise BenchDocumentError("body.entries is empty")
    seen = set()
    for entry in entries:
        for field in _REQUIRED_ENTRY_KEYS:
            if field not in entry:
                raise BenchDocumentError(
                    "entry %r lacks %r" % (entry.get("key"), field)
                )
        key = "%s/%s/%s/s%d" % (
            entry["benchmark"], entry["surface"],
            entry["configuration"], entry["scale"],
        )
        if entry["key"] != key:
            raise BenchDocumentError(
                "entry key %r does not match its fields (%r)"
                % (entry["key"], key)
            )
        if key in seen:
            raise BenchDocumentError("duplicate entry key %r" % key)
        seen.add(key)
        steady = entry["steady"]
        samples = steady.get("seconds", [])
        if steady.get("n") != len(samples) or not samples:
            raise BenchDocumentError(
                "entry %r: steady.n disagrees with its samples" % key
            )
        if abs(steady.get("best", -1) - min(samples)) > 1e-9:
            raise BenchDocumentError(
                "entry %r: steady.best is not min(steady.seconds) — "
                "warmup samples may have leaked into steady stats" % key
            )
        warmup = entry["warmup"]
        if warmup.get("n") != len(warmup.get("seconds", [])):
            raise BenchDocumentError(
                "entry %r: warmup.n disagrees with its samples" % key
            )


def entries_by_key(document: Dict) -> Dict[str, Dict]:
    """Index a (validated) document's entries by key."""
    return {entry["key"]: entry for entry in document["body"]["entries"]}


def describe_document(path: str) -> Dict:
    """Load + verify; a summary dict for ``repro lint``."""
    document = load_document(path)
    body = document["body"]
    entries = body["entries"]
    certified = sum(1 for entry in entries if entry["certified"])
    return {
        "schema": document["schema"],
        "suite": body["suite"],
        "digest": document["digest"],
        "commit": body["environment"].get("commit"),
        "fingerprint": body["environment"]["fingerprint"],
        "entries": len(entries),
        "certified": certified,
        "uncertified": len(entries) - certified,
        "surfaces": sorted({entry["surface"] for entry in entries}),
    }
