"""The committed perf trajectory: ``BENCH_<date>.json`` files, v2.

The v1 layout (``repro-bench-trajectory/1``) was a hand-assembled
per-PR description: one date, one coarse host dict, and free-form
``workloads`` payloads pasted from figure6 blocks.  Two hygiene
problems: points were keyed only by date (two runs on one day
collide, and nothing tied a point to the commit it measured), and
nothing marked a point taken on a different machine as non-comparable
to its predecessor.

``repro-bench-trajectory/2`` fixes both.  A trajectory file is:

.. code-block:: json

    {
      "schema": "repro-bench-trajectory/2",
      "date": "2026-08-08",
      "description": "...",
      "points": [
        {
          "run_id": "<first 12 hex of the bench document digest>",
          "commit": "<40-hex sha or null>",
          "date": "2026-08-08",
          "suite": "smoke",
          "fingerprint": "<12-hex host fingerprint>",
          "host": {"python": "...", "...": "..."},
          "comparable": true,
          "certified": true,
          "entries": {"bloat/kernel/1-call/s1": {"best": 0.01, ...}}
        }
      ]
    }

``run_id`` is derived from the bench document's digest, so a point is
traceable to the exact document (and the document to the exact body
bytes).  ``comparable`` is ``false`` whenever the point's host
fingerprint differs from the previous point's — trend rendering still
shows the point but refuses to draw a delta across the break.  The
first point of a file has ``comparable: null`` (nothing to compare
to).  ``certified`` is the conjunction of every entry's certification.

:func:`load_trajectory` transparently migrates a v1 file: each legacy
``workloads`` item becomes one point with ``run_id: "legacy-<i>"``,
``commit: null``, a fingerprint derived from the v1 ``host`` dict
(prefixed ``legacy-``, so it never equals a real 12-hex fingerprint
and the first real point after migration is flagged non-comparable),
and its payload preserved under ``legacy``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

TRAJECTORY_SCHEMA = "repro-bench-trajectory/2"
_V1_SCHEMA = "repro-bench-trajectory/1"


class TrajectoryError(ValueError):
    """A malformed trajectory file or point."""


def _legacy_fingerprint(host: Dict) -> str:
    canonical = json.dumps(host, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]
    return "legacy-%s" % digest


def migrate_v1(document: Dict) -> Dict:
    """A v1 trajectory document rebuilt in the v2 layout."""
    host = document.get("host", {})
    fingerprint = _legacy_fingerprint(host)
    points: List[Dict] = []
    for index, workload in enumerate(document.get("workloads", [])):
        # v1 payloads spell certification differently per block: the
        # parallel/kernel blocks carry "certified", the serving block
        # carries "parity": {"ok": ...}.
        certified = bool(workload.get("certified", False))
        if not certified:
            parity = workload.get("parity")
            if isinstance(parity, dict):
                certified = bool(parity.get("ok", False))
        points.append({
            "run_id": "legacy-%d" % index,
            "commit": None,
            "date": document.get("date"),
            "suite": "legacy",
            "fingerprint": fingerprint,
            "host": dict(host),
            "comparable": None if index == 0 else True,
            "certified": certified,
            "entries": {},
            "legacy": workload,
        })
    return {
        "schema": TRAJECTORY_SCHEMA,
        "date": document.get("date"),
        "description": document.get("description", ""),
        "points": points,
    }


def load_trajectory(path: str) -> Dict:
    """Load a trajectory file, migrating v1 layouts in memory."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise TrajectoryError(
                "%s: not JSON (%s)" % (path, error)
            ) from None
    schema = document.get("schema")
    if schema == _V1_SCHEMA:
        return migrate_v1(document)
    if schema != TRAJECTORY_SCHEMA:
        raise TrajectoryError(
            "%s: schema %r is neither %r nor %r"
            % (path, schema, TRAJECTORY_SCHEMA, _V1_SCHEMA)
        )
    if not isinstance(document.get("points"), list):
        raise TrajectoryError("%s: points is not a list" % path)
    return document


def write_trajectory(document: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(document, indent=2, sort_keys=True) + "\n")


def trajectory_point(bench_document: Dict) -> Dict:
    """One v2 point summarising a validated ``repro-bench/1`` document."""
    body = bench_document["body"]
    environment = body["environment"]
    entries: Dict[str, Dict] = {}
    for entry in body["entries"]:
        entries[entry["key"]] = {
            "best": entry["steady"]["best"],
            "p50": entry["steady"]["p50"],
            "n": entry["steady"]["n"],
            "certified": entry["certified"],
        }
    digest = bench_document["digest"]
    return {
        "run_id": digest.split(":", 1)[-1][:12],
        "commit": environment.get("commit"),
        "date": (bench_document.get("created") or "")[:10] or None,
        "suite": body["suite"],
        "fingerprint": environment["fingerprint"],
        "host": dict(environment.get("host", {})),
        "comparable": None,   # decided against the previous point on append
        "certified": all(e["certified"] for e in entries.values()),
        "entries": entries,
    }


def append_point(
    path: str,
    point: Dict,
    description: Optional[str] = None,
    date: Optional[str] = None,
) -> Dict:
    """Append ``point`` to the trajectory at ``path`` (created or
    migrated as needed) and write it back.  Returns the document.

    Duplicate run ids are rejected — one bench document, one point.
    ``comparable`` is set here: ``false`` when the host fingerprint
    differs from the previous point's, ``true`` when it matches,
    ``null`` for the first point of a file.
    """
    if os.path.exists(path):
        document = load_trajectory(path)
    else:
        document = {
            "schema": TRAJECTORY_SCHEMA,
            "date": date or point.get("date"),
            "description": description or "",
            "points": [],
        }
    if description:
        document["description"] = description
    points = document["points"]
    if any(p["run_id"] == point["run_id"] for p in points):
        raise TrajectoryError(
            "run %s already recorded in %s" % (point["run_id"], path)
        )
    point = dict(point)
    if not points:
        point["comparable"] = None
    else:
        point["comparable"] = (
            points[-1].get("fingerprint") == point["fingerprint"]
        )
    points.append(point)
    write_trajectory(document, path)
    return document


def format_trend(document: Dict) -> str:
    """Per-entry best-seconds across points, breaks marked at host
    changes."""
    lines = [
        "trajectory (%s): %d point(s)"
        % (document.get("date"), len(document["points"])),
    ]
    keys: List[str] = []
    for point in document["points"]:
        for key in point.get("entries", {}):
            if key not in keys:
                keys.append(key)
    for point in document["points"]:
        marker = {None: "·", True: " ", False: "✂"}[point.get("comparable")]
        commit = (point.get("commit") or "")[:8] or "-"
        lines.append(
            "%s %s  %-10s commit %-8s suite %-8s %s"
            % (
                marker,
                point.get("date") or "?",
                point["run_id"][:10],
                commit,
                point.get("suite", "?"),
                "certified" if point.get("certified") else "UNCERTIFIED",
            )
        )
        if point.get("comparable") is False:
            lines.append(
                "    (host fingerprint changed — not comparable to the "
                "previous point)"
            )
    for key in keys:
        series = []
        for point in document["points"]:
            entry = point.get("entries", {}).get(key)
            if entry is None:
                series.append("—")
            else:
                series.append("%.4fs" % entry["best"])
        lines.append("  %-40s %s" % (key, " -> ".join(series)))
    return "\n".join(lines)
