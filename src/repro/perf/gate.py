"""Regression gating: a bench document against a committed baseline.

The gate compares min-of-N steady-state seconds per entry — the
minimum is the sample least disturbed by the machine, so it is the
statistic with the least noise for a threshold test.  Two modes:

* **absolute** — both documents carry the same host fingerprint: an
  entry regresses when ``current.best > baseline.best * (1 + tol)``;
* **relative** — fingerprints differ (another machine, CI runner
  class, interpreter): absolute seconds are not comparable, so each
  entry is first normalised by its *reference* entry (the ``worklist``
  surface for the same benchmark/configuration/scale) in the *same*
  document, and the normalised ratios are compared.  Reference entries
  themselves are skipped in this mode — they define the yardstick.

Beyond timing, the gate fails on: an entry present in the baseline but
missing from the current document (a silently dropped benchmark is a
regression), and an entry certified in the baseline but not now (a
speedup that stopped being bit-identical to the worklist solver is not
a speedup).  New entries absent from the baseline pass with a note —
they gate once the baseline is re-pinned (``--update-baseline``).

Noise thresholds default to 100% (``tolerance=1.0``): interpreter
timings on shared CI runners routinely jitter 2×, and the gate's job
is to catch the 5×-plus regressions that mean an algorithmic slip, not
to flap on scheduler noise.  Per-entry overrides tighten specific
cells where the workload is long enough to be stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.perf.document import entries_by_key

#: Default per-entry tolerance: fail only on > 2x the baseline.
DEFAULT_TOLERANCE = 1.0


@dataclass
class GateOutcome:
    """The verdict for one gate run."""

    mode: str                       # "absolute" | "relative"
    passed: bool
    regressions: List[Dict] = field(default_factory=list)
    comparisons: List[Dict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_json(self) -> Dict:
        return {
            "mode": self.mode,
            "passed": self.passed,
            "regressions": self.regressions,
            "comparisons": self.comparisons,
            "notes": self.notes,
        }


def _reference_key(entry: Dict) -> str:
    return "%s/worklist/%s/s%d" % (
        entry["benchmark"], entry["configuration"], entry["scale"],
    )


def _best(entry: Dict) -> float:
    return float(entry["steady"]["best"])


def _normalised(entry: Dict, entries: Dict[str, Dict]) -> Optional[float]:
    """``best / reference.best`` within one document, or ``None``."""
    reference = entries.get(_reference_key(entry))
    if reference is None or _best(reference) <= 0:
        return None
    return _best(entry) / _best(reference)


def compare_documents(
    current: Dict, baseline: Dict
) -> Tuple[str, List[Dict]]:
    """Side-by-side rows for every baseline entry (no verdicts).

    Returns ``(mode, rows)`` where each row carries both documents'
    best/p50 and the ratio the gate would threshold.
    """
    current_env = current["body"]["environment"]
    baseline_env = baseline["body"]["environment"]
    mode = (
        "absolute"
        if current_env["fingerprint"] == baseline_env["fingerprint"]
        else "relative"
    )
    current_entries = entries_by_key(current)
    baseline_entries = entries_by_key(baseline)
    rows: List[Dict] = []
    for key, base in baseline_entries.items():
        now = current_entries.get(key)
        row = {
            "key": key,
            "reference": bool(base.get("reference")),
            "baseline_best": _best(base),
            "current_best": _best(now) if now else None,
            "ratio": None,
        }
        if now is not None:
            if mode == "absolute":
                if _best(base) > 0:
                    row["ratio"] = _best(now) / _best(base)
            else:
                now_norm = _normalised(now, current_entries)
                base_norm = _normalised(base, baseline_entries)
                if now_norm is not None and base_norm and base_norm > 0:
                    row["ratio"] = now_norm / base_norm
        rows.append(row)
    for key in current_entries:
        if key not in baseline_entries:
            rows.append({
                "key": key,
                "reference": bool(current_entries[key].get("reference")),
                "baseline_best": None,
                "current_best": _best(current_entries[key]),
                "ratio": None,
            })
    return mode, rows


def gate_documents(
    current: Dict,
    baseline: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
    per_entry_tolerance: Optional[Dict[str, float]] = None,
    inject_slowdown: float = 1.0,
) -> GateOutcome:
    """Threshold ``current`` against ``baseline``.

    ``inject_slowdown`` multiplies every non-reference current best
    before comparison — the CI self-test that proves the gate trips
    (a gate that cannot fail protects nothing).
    """
    per_entry = per_entry_tolerance or {}
    current_entries = entries_by_key(current)
    baseline_entries = entries_by_key(baseline)
    mode, _rows = compare_documents(current, baseline)
    outcome = GateOutcome(mode=mode, passed=True)
    if inject_slowdown != 1.0:
        outcome.notes.append(
            "synthetic slowdown x%g injected into non-reference entries"
            % inject_slowdown
        )
    if mode == "relative":
        outcome.notes.append(
            "host fingerprints differ: comparing worklist-normalised "
            "ratios, reference entries skipped"
        )

    for key, base in baseline_entries.items():
        now = current_entries.get(key)
        if now is None:
            outcome.regressions.append({
                "key": key,
                "kind": "missing",
                "detail": "entry in baseline but absent from current run",
            })
            continue
        if base.get("certified") and not now.get("certified"):
            outcome.regressions.append({
                "key": key,
                "kind": "certification",
                "detail": "baseline was certified bit-identical to the "
                          "worklist solver; current run is not",
            })
        is_reference = bool(base.get("reference"))
        if mode == "relative" and is_reference:
            continue
        slowdown = 1.0 if is_reference else inject_slowdown
        if mode == "absolute":
            base_value = _best(base)
            now_value = _best(now) * slowdown
        else:
            base_value = _normalised(base, baseline_entries)
            now_norm = _normalised(now, current_entries)
            now_value = now_norm * slowdown if now_norm is not None else None
        if not base_value or now_value is None:
            continue
        ratio = now_value / base_value
        allowed = 1.0 + per_entry.get(key, tolerance)
        comparison = {
            "key": key,
            "mode": mode,
            "ratio": round(ratio, 4),
            "allowed": round(allowed, 4),
            "baseline": round(base_value, 6),
            "current": round(now_value, 6),
        }
        outcome.comparisons.append(comparison)
        if ratio > allowed:
            outcome.regressions.append({
                "key": key,
                "kind": "timing",
                "detail": "ratio %.3f exceeds allowed %.3f (%s mode)"
                          % (ratio, allowed, mode),
            })

    for key in current_entries:
        if key not in baseline_entries:
            outcome.notes.append(
                "new entry %s has no baseline (gates after re-pin)" % key
            )
    outcome.passed = not outcome.regressions
    return outcome


def format_gate(outcome: GateOutcome) -> str:
    """Human-readable gate report."""
    lines = [
        "bench gate: %s mode, %d comparison(s)"
        % (outcome.mode, len(outcome.comparisons)),
    ]
    for comparison in outcome.comparisons:
        lines.append(
            "  %-40s ratio %6.3f (allowed %.3f)"
            % (comparison["key"], comparison["ratio"],
               comparison["allowed"])
        )
    for note in outcome.notes:
        lines.append("  note: %s" % note)
    if outcome.passed:
        lines.append("PASS: no regressions against baseline")
    else:
        lines.append("FAIL: %d regression(s)" % len(outcome.regressions))
        for regression in outcome.regressions:
            lines.append(
                "  %s [%s]: %s"
                % (regression["key"], regression["kind"],
                   regression["detail"])
            )
    return "\n".join(lines)


def format_compare(mode: str, rows: List[Dict]) -> str:
    """Human-readable side-by-side comparison."""
    lines = ["bench compare: %s mode" % mode]
    for row in rows:
        base = row["baseline_best"]
        now = row["current_best"]
        ratio = row["ratio"]
        lines.append(
            "  %-40s baseline %-10s current %-10s ratio %s%s"
            % (
                row["key"],
                "%.4fs" % base if base is not None else "—",
                "%.4fs" % now if now is not None else "—",
                "%.3f" % ratio if ratio is not None else "—",
                " (reference)" if row["reference"] else "",
            )
        )
    return "\n".join(lines)
