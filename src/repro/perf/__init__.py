"""Benchmark-corpus subsystem: named suites, warmup protocol, gating.

The paper's empirical case (Figure 6) rests on a fixed corpus of DaCapo
2006 benchmarks measured under a disciplined protocol.  This package is
that protocol for the reproduction, in the DaCapo-harness idiom:

* :mod:`repro.perf.registry` — a :class:`BenchmarkRegistry` of named,
  versioned workloads: the seven synthetic DaCapo analogues plus corpus
  entries that stress the execution surfaces differently (``towers``:
  deep wrapper chains; ``fanout``: wide dispatch);
* :mod:`repro.perf.adapters` — the :class:`SuiteAdapter` protocol, so
  one benchmark definition drives every execution surface (worklist /
  engine / compiled / kernel backends, sharded parallel, incremental
  edit churn, and the serving gateway);
* :mod:`repro.perf.result` — :class:`RunResult`: explicit warmup vs
  steady-state iterations, per-phase timers (factgen / compile / solve
  / query), and a ``certified`` flag meaning the timed run was verified
  bit-identical to the sequential worklist solver;
* :mod:`repro.perf.suite` — named suites (``smoke``, ``micro``,
  ``corpus``) and the runner producing ``repro-bench/1`` documents;
* :mod:`repro.perf.document` — the byte-stable ``repro-bench/1`` JSON
  document (canonical ordering, sha256 digest, schema validation — the
  format ``repro lint`` self-checks);
* :mod:`repro.perf.gate` — regression gating against a committed
  baseline with noise-aware thresholds (min-of-N steady state,
  per-entry tolerance, host-fingerprint-aware relative mode);
* :mod:`repro.perf.trajectory` — the committed ``BENCH_<date>.json``
  perf-trajectory files (``repro-bench-trajectory/2``: points keyed by
  commit sha + run id, cross-host points flagged non-comparable, with
  a migration shim for the v1 layout);
* :mod:`repro.perf.stats` — the one implementation of the percentile /
  best-of / stopwatch arithmetic previously re-implemented across the
  ``repro.bench`` workload modules;
* :mod:`repro.perf.env` — environment capture: git commit sha and a
  stable host fingerprint, so cross-host points are marked
  non-comparable instead of silently compared.

Driven by ``python -m repro bench`` (``run`` / ``compare`` / ``gate``
/ ``record`` / ``trend``).
"""

from repro.perf.adapters import (
    ADAPTERS,
    AdapterError,
    SuiteAdapter,
    adapter_for,
)
from repro.perf.document import (
    BENCH_SCHEMA,
    BenchDocumentError,
    bench_document,
    describe_document,
    load_document,
    render_document,
    validate_document,
    write_document,
)
from repro.perf.env import capture_environment, git_sha, host_fingerprint
from repro.perf.gate import GateOutcome, compare_documents, gate_documents
from repro.perf.registry import (
    CORPUS_NAMES,
    DEFAULT_REGISTRY,
    BenchmarkDef,
    BenchmarkRegistry,
    corpus_facts,
    corpus_program,
)
from repro.perf.result import RunResult
from repro.perf.stats import (
    best_of,
    latency_summary_us,
    percentile,
    speedup,
    stopwatch,
    to_ms,
)
from repro.perf.suite import SUITES, Suite, SuiteEntry, run_suite
from repro.perf.trajectory import (
    TRAJECTORY_SCHEMA,
    TrajectoryError,
    append_point,
    format_trend,
    load_trajectory,
    trajectory_point,
    write_trajectory,
)

__all__ = [
    "ADAPTERS",
    "AdapterError",
    "BENCH_SCHEMA",
    "BenchDocumentError",
    "BenchmarkDef",
    "BenchmarkRegistry",
    "CORPUS_NAMES",
    "DEFAULT_REGISTRY",
    "GateOutcome",
    "RunResult",
    "SUITES",
    "Suite",
    "SuiteAdapter",
    "SuiteEntry",
    "TRAJECTORY_SCHEMA",
    "TrajectoryError",
    "adapter_for",
    "append_point",
    "bench_document",
    "best_of",
    "capture_environment",
    "compare_documents",
    "corpus_facts",
    "corpus_program",
    "describe_document",
    "format_trend",
    "gate_documents",
    "git_sha",
    "host_fingerprint",
    "latency_summary_us",
    "load_document",
    "load_trajectory",
    "percentile",
    "render_document",
    "run_suite",
    "speedup",
    "stopwatch",
    "to_ms",
    "trajectory_point",
    "validate_document",
    "write_document",
    "write_trajectory",
]
