"""The benchmark corpus: named, versioned workload definitions.

The DaCapo harness identifies a benchmark by name and the suite
release it came from; a result from ``bloat`` in one release is not
comparable to ``bloat`` in another.  :class:`BenchmarkDef` carries the
same contract here: a name, a *version* (bumped whenever the generator
weights change, invalidating old baselines for that entry), and a spec
builder mapping a scale multiplier to a
:class:`~repro.bench.workloads.WorkloadSpec`.

:data:`DEFAULT_REGISTRY` holds the paper's seven evaluated analogues
plus two corpus entries added for the execution-surface work, chosen
to stress the backends differently:

* ``towers`` — deep wrapper chains (depth 12): long dependence chains
  that serialise the fixpoint, the worst case for the columnar kernel
  backend's per-round fusion and the best case for semi-naive deltas;
* ``fanout`` — wide dispatch (a 12-subclass hierarchy reached through
  containers): a broad, shallow call graph whose tuples spread across
  shards, stressing the parallel backend's exchange phase.

Every definition is deterministic: same name + scale ⇒ byte-identical
fact set (enforced by ``tests/perf/test_determinism.py`` via
:meth:`BenchmarkDef.fact_digest`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.bench.workloads import (
    DACAPO_NAMES,
    WorkloadSpec,
    dacapo_specs,
    generate,
)
from repro.frontend import ir
from repro.frontend.factgen import FactSet, generate_facts


@dataclass(frozen=True)
class BenchmarkDef:
    """One named, versioned workload in the corpus."""

    name: str
    version: int
    description: str
    build_spec: Callable[[int], WorkloadSpec] = field(repr=False)

    def spec(self, scale: int = 1) -> WorkloadSpec:
        return self.build_spec(scale)

    def program(self, scale: int = 1) -> ir.Program:
        return generate(self.spec(scale))

    def facts(self, scale: int = 1) -> FactSet:
        return generate_facts(self.program(scale))

    def fact_digest(self, scale: int = 1) -> str:
        """sha256 of the canonical fact set — the determinism anchor."""
        return self.facts(scale).digest()


class BenchmarkRegistry:
    """Name → :class:`BenchmarkDef`, iteration in registration order."""

    def __init__(self) -> None:
        self._defs: Dict[str, BenchmarkDef] = {}

    def register(self, definition: BenchmarkDef) -> BenchmarkDef:
        if definition.name in self._defs:
            raise ValueError(
                "benchmark %r already registered" % definition.name
            )
        self._defs[definition.name] = definition
        return definition

    def get(self, name: str) -> BenchmarkDef:
        try:
            return self._defs[name]
        except KeyError:
            raise KeyError(
                "unknown benchmark %r (known: %s)"
                % (name, ", ".join(sorted(self._defs)))
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def __iter__(self) -> Iterator[BenchmarkDef]:
        return iter(self._defs.values())

    def names(self) -> Tuple[str, ...]:
        return tuple(self._defs)

    def versions(self) -> Dict[str, int]:
        return {d.name: d.version for d in self}


def _dacapo_builder(name: str) -> Callable[[int], WorkloadSpec]:
    def build(scale: int) -> WorkloadSpec:
        return dacapo_specs(scale)[name]
    return build


def _towers_spec(scale: int) -> WorkloadSpec:
    s = scale
    return WorkloadSpec(
        "towers", seed=47, value_classes=3, wrapper_chains=2,
        chain_depth=12, receivers_per_chain=2 * s, factories=1,
        containers=1, call_sites=8 * s, factory_sites=2 * s,
        container_ops=2 * s,
    )


def _fanout_spec(scale: int) -> WorkloadSpec:
    s = scale
    return WorkloadSpec(
        "fanout", seed=53, value_classes=4, wrapper_chains=1,
        chain_depth=2, receivers_per_chain=2 * s, factories=2,
        containers=3, hierarchy_width=12, call_sites=8 * s,
        factory_sites=4 * s, container_ops=10 * s,
    )


_DACAPO_DESCRIPTIONS = {
    "antlr": "call-chain heavy parser analogue",
    "bloat": "AST-with-parent-pointers plus stack (paper Section 8)",
    "chart": "factory-allocation heavy",
    "eclipse": "widest dispatch of the paper's seven",
    "luindex": "smallest, most uniform",
    "pmd": "hierarchies mixed with wrappers",
    "xalan": "container heavy",
}


def _build_default_registry() -> BenchmarkRegistry:
    registry = BenchmarkRegistry()
    for name in DACAPO_NAMES:
        registry.register(BenchmarkDef(
            name=name,
            version=1,
            description=_DACAPO_DESCRIPTIONS[name],
            build_spec=_dacapo_builder(name),
        ))
    registry.register(BenchmarkDef(
        name="towers",
        version=1,
        description="deep wrapper chains (depth 12): serial fixpoint, "
                    "kernel-backend stress",
        build_spec=_towers_spec,
    ))
    registry.register(BenchmarkDef(
        name="fanout",
        version=1,
        description="wide dispatch (12-subclass hierarchy): shard-exchange "
                    "stress for the parallel backend",
        build_spec=_fanout_spec,
    ))
    return registry


DEFAULT_REGISTRY = _build_default_registry()

#: Every corpus name, DaCapo analogues first, new entries after.
CORPUS_NAMES: Tuple[str, ...] = DEFAULT_REGISTRY.names()

#: The entries that are not DaCapo analogues.
EXTRA_NAMES: Tuple[str, ...] = tuple(
    name for name in CORPUS_NAMES if name not in DACAPO_NAMES
)


def corpus_program(name: str, scale: int = 1) -> ir.Program:
    """The program for one corpus entry (any registered name)."""
    return DEFAULT_REGISTRY.get(name).program(scale)


def corpus_facts(name: str, scale: int = 1) -> FactSet:
    """Facts for one corpus entry — the shared workload loader the
    figure6 block runners also use."""
    return DEFAULT_REGISTRY.get(name).facts(scale)
