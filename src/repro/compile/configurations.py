"""Transformer-string configurations (paper Section 7).

A *configuration* of a transformer string records its number of exits
(pops), whether it carries a wildcard, and its number of entries
(pushes) — everything about its shape except the concrete context
elements.  Configurations are written as the paper's regular expression
``x* w? e*``: ``xxwe`` is two exits, a wildcard, one entry.

The Section 7 implementation technique replaces each relation carrying a
transformer-string attribute by one specialized relation per
configuration, with the string's elements flattened into ordinary
attributes.  For the ``pts`` relation of a 2-method/1-heap analysis
(domain ``CtxtT^t_{1,2}``) this yields the paper's twelve
configurations: two exit counts × three entry counts × wildcard or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.transformer_strings import TransformerString


@dataclass(frozen=True)
class Configuration:
    """The shape ``x^pops w? e^pushes`` of a transformer string."""

    pops: int
    wildcard: bool
    pushes: int

    @property
    def tag(self) -> str:
        """The paper's subscript string, e.g. ``"xxwe"`` (``""`` for ε)."""
        return (
            "x" * self.pops
            + ("w" if self.wildcard else "")
            + "e" * self.pushes
        )

    @property
    def context_arity(self) -> int:
        """Number of flattened context attributes."""
        return self.pops + self.pushes

    def predicate_name(self, base: str) -> str:
        """The specialized relation name, e.g. ``pts__xxwe``."""
        return f"{base}__{self.tag}"

    def __repr__(self) -> str:
        return f"Configuration({self.tag!r})"


def enumerate_configurations(i: int, j: int) -> Tuple[Configuration, ...]:
    """All configurations of the domain ``CtxtT^t_{i,j}``.

    ``(i+1) · (j+1) · 2`` configurations, ordered by (pops, wildcard,
    pushes) for deterministic rule generation.
    """
    return tuple(
        Configuration(pops, wildcard, pushes)
        for pops in range(i + 1)
        for wildcard in (False, True)
        for pushes in range(j + 1)
    )


def configuration_of(t: TransformerString) -> Configuration:
    """The configuration of a concrete transformer string."""
    return Configuration(len(t.pops), t.wildcard, len(t.pushes))


def encode(t: TransformerString) -> Tuple[str, Tuple[str, ...]]:
    """Flatten a transformer string into ``(tag, context attributes)``.

    The attribute order is pops first (in pop order: first element is
    the first context element stripped) then pushes (in result-prefix
    order: first element ends up top-most) — matching the paper's
    ``pts(Y, H, X1·X2·∗·Ê1) becomes ptst_xxwe(Y, H, X1, X2, E1)``.
    """
    return (configuration_of(t).tag, t.pops + t.pushes)


def decode(tag: str, attributes: Tuple[str, ...]) -> TransformerString:
    """Inverse of :func:`encode`."""
    config = parse_tag(tag)
    if len(attributes) != config.context_arity:
        raise ValueError(
            f"configuration {tag!r} expects {config.context_arity}"
            f" attributes, got {len(attributes)}"
        )
    return TransformerString(
        pops=attributes[: config.pops],
        wildcard=config.wildcard,
        pushes=attributes[config.pops :],
    )


def parse_tag(tag: str) -> Configuration:
    """Parse a subscript string back into a :class:`Configuration`."""
    pops = 0
    position = 0
    while position < len(tag) and tag[position] == "x":
        pops += 1
        position += 1
    wildcard = position < len(tag) and tag[position] == "w"
    if wildcard:
        position += 1
    pushes = len(tag) - position
    if tag[position:] != "e" * pushes:
        raise ValueError(f"malformed configuration tag {tag!r}")
    return Configuration(pops, wildcard, pushes)
