"""Emission of plain Datalog programs for both abstractions.

This is the paper's front-end (Section 8: "The front-end performs the
instantiation of the base deduction rules … The output of the front-end
is a plain Datalog program"), targeting our engine instead of LLVM:

* :func:`compile_transformer_analysis` — the configuration-specialized
  transformer-string program of Section 7 (pure Datalog, no builtins);
* :func:`compile_context_string_analysis` — the context-string program,
  equivalent to Doop's rules, with contexts packed into single
  attributes and the ``record``/``merge``/``merge_s`` constructors
  provided as functional builtins (LogicBlox-style);
* :func:`compile_transformer_analysis_naive` — the *naive* transformer
  instantiation the paper warns against (Section 7): derived relations
  keep a single packed transformer-string attribute and ``comp`` is a
  procedural builtin, so joins lose the context attributes.  Used by the
  indexing ablation benchmark.

Every compiled analysis decodes its engine results back into the same
``(entity…, TransformerString | pair)`` fact tuples the worklist solver
produces, so the two execution paths can be compared fact-for-fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Set, Tuple

from repro.compile.configurations import decode as decode_transformer
from repro.compile.specialize import TransformerSpecializer
from repro.core import sensitivity as sens
from repro.core import transformer_strings as ts
from repro.core.contexts import ENTRY_CONTEXT, prefix
from repro.core.sensitivity import Flavour
from repro.datalog.ast import Const, Literal, Program, Rule
from repro.datalog.builtins import BuiltinFn, function_builtin
from repro.datalog.engine import Engine
from repro.frontend.factgen import FactSet

#: Input relations shared by all instantiations.
_INPUT_RELATIONS = (
    "actual", "assign", "assign_new", "assign_return", "formal",
    "heap_type", "implements", "load", "return_var", "static_invoke",
    "store", "this_var", "virtual_invoke",
    "static_store", "static_load", "throw_var", "catch_var",
)


@dataclass
class CompiledAnalysis:
    """A plain Datalog program plus decoding back to solver-style facts."""

    program: Program
    builtins: Dict[str, BuiltinFn]
    decoder: Callable[[Dict[str, Set[Tuple]]], Dict[str, Set[Tuple]]]
    description: str

    def run(
        self, backend: str = "interpreted", eliminate_dead: bool = False,
        cost_order: bool = False,
    ) -> "CompiledResult":
        """Evaluate the program.

        ``backend`` selects the Datalog engine: ``"interpreted"`` (the
        semi-naive interpreter), ``"compiled"`` (rule bodies compiled
        to Python source — the analogue of the paper's LLVM back-end)
        or ``"kernel"`` (fused integer kernels over the columnar store
        of an interned program — :mod:`repro.compile.kernels`).

        ``eliminate_dead=True`` first drops rules that can never fire
        against the installed fact set (the configuration cross-product
        emits many — e.g. rules consuming a ``call__xx`` shape no rule
        of this flavour ever derives), shrinking the rule set the
        semi-naive loop re-evaluates each round.  Results are identical
        by construction (tested).

        ``cost_order=True`` evaluates the cost-chosen body orders of
        :mod:`repro.datalog.cost` instead of the emitted source order —
        also bit-identical by construction (tested across the full
        configuration sweep).
        """
        program = self.program
        if eliminate_dead:
            from repro.datalog.lint import eliminate_dead_rules

            program, _ = eliminate_dead_rules(program, self.builtins)
        if backend == "interpreted":
            engine = Engine(program, self.builtins, cost_order=cost_order)
        elif backend == "compiled":
            from repro.datalog.codegen import CompiledEngine

            engine = CompiledEngine(
                program, self.builtins, cost_order=cost_order
            )
        elif backend == "kernel":
            from repro.datalog.kernel import KernelEngine

            engine = KernelEngine(
                program, self.builtins, cost_order=cost_order
            )
        else:
            raise ValueError(f"unknown backend {backend!r}")
        raw = engine.run()
        return CompiledResult(self.decoder(raw), engine)


@dataclass
class CompiledResult:
    """Decoded relations plus the engine that produced them."""

    relations: Dict[str, Set[Tuple]]
    engine: Engine

    @property
    def pts(self) -> Set[Tuple]:
        return self.relations.get("pts", set())

    @property
    def hpts(self) -> Set[Tuple]:
        return self.relations.get("hpts", set())

    @property
    def call(self) -> Set[Tuple]:
        return self.relations.get("call", set())

    @property
    def reach(self) -> Set[Tuple]:
        return self.relations.get("reach", set())

    @property
    def spts(self) -> Set[Tuple]:
        return self.relations.get("spts", set())

    @property
    def texc(self) -> Set[Tuple]:
        return self.relations.get("texc", set())

    def pts_ci(self) -> Set[Tuple]:
        return {(y, h) for (y, h, _) in self.pts}

    def call_graph(self) -> Set[Tuple]:
        return {(i, p) for (i, p, _) in self.call}


def _install_input_facts(program: Program, facts: FactSet) -> None:
    for name in _INPUT_RELATIONS:
        rows = getattr(facts, name)
        if rows:
            program.add_facts(name, rows)
    if facts.class_of:
        program.add_facts("class_of", facts.class_of.items())
    if facts.invocation_parent:
        program.add_facts("invocation_parent", facts.invocation_parent.items())


def _lint_emitted(analysis: "CompiledAnalysis") -> "CompiledAnalysis":
    """Statically verify an emitted configuration before returning it.

    Every instantiation path runs through here, so a specialization bug
    (unsafe rule, arity clash, mis-typed attribute) is a coded
    :class:`repro.datalog.lint.LintError` at emission time rather than
    a crash — or a silently wrong points-to set — during evaluation.
    Error diagnostics only; warnings (e.g. rules dead under this
    particular fact set) are expected and left to ``repro lint``.
    """
    from repro.datalog.lint import lint_program

    lint_program(
        analysis.program,
        builtins=analysis.builtins,
        subject=analysis.description,
        passes=(
            "safety", "schema", "configurations", "sorts", "stratification",
        ),
    ).raise_if_errors()
    return analysis


# ---------------------------------------------------------------------------
# Transformer strings, configuration-specialized (the Section 7 technique).
# ---------------------------------------------------------------------------

def compile_transformer_analysis(
    facts: FactSet, flavour: Flavour, m: int, h: int
) -> CompiledAnalysis:
    """The specialized transformer-string instantiation: pure Datalog."""
    specializer = TransformerSpecializer(flavour, m, h)
    program = Program()
    program.rules.extend(specializer.rules())
    if facts.main_method is None:
        raise ValueError("fact set has no main method")
    program.rules.append(specializer.entry_fact(facts.main_method))
    _install_input_facts(program, facts)

    def decoder(raw: Dict[str, Set[Tuple]]) -> Dict[str, Set[Tuple]]:
        out: Dict[str, Set[Tuple]] = {
            "pts": set(), "hpts": set(), "hload": set(), "call": set(),
            "reach": set(), "spts": set(), "texc": set(),
        }
        entity_arity = {
            "pts": 2, "hpts": 3, "hload": 3, "call": 2, "spts": 2, "texc": 2,
        }
        for pred, rows in raw.items():
            if pred.startswith("reach_"):
                out["reach"].update((row[0], tuple(row[1:])) for row in rows)
                continue
            base, _, tag = pred.partition("__")
            if base not in entity_arity or not pred.startswith(f"{base}__"):
                continue
            arity = entity_arity[base]
            for row in rows:
                out[base].add(
                    row[:arity] + (decode_transformer(tag, row[arity:]),)
                )
        return out

    return _lint_emitted(CompiledAnalysis(
        program=program,
        builtins={},
        decoder=decoder,
        description=f"{m}-{flavour.value}+{h}H/transformer-string/specialized",
    ))


# ---------------------------------------------------------------------------
# Context strings (the Doop-equivalent program, builtin constructors).
# ---------------------------------------------------------------------------

_CS_RULES = """
pts(Y, H, U, V)      :- pts(Z, H, U, V), assign(Z, Y).
hload(G, F, Z, U, V) :- pts(Y, G, U, V), load(Y, F, Z).
hpts(G, F, H, U, W)  :- pts(X, H, U, V), store(X, F, Z), pts(Z, G, W, V).
pts(Y, H, U, W)      :- hpts(G, F, H, U, V), hload(G, F, Y, V, W).
pts(Y, H, U, W)      :- pts(Z, H, U, V), actual(Z, I, O), call(I, P, V, W),
                        formal(Y, P, O).
pts(Y, H, U, W)      :- pts(Z, H, U, V), return_var(Z, P), call(I, P, W, V),
                        assign_return(I, Y).
pts(Y, H, HC, M)     :- assign_new(H, Y, P), reach(P, M), record_cs(M, HC).
call(I, Q, V, W)     :- virtual_invoke(I, Z, S), pts(Z, H, U, V),
                        heap_type(H, T), implements(Q, T, S),
                        merge_cs(H, I, U, V, W).
pts(Y, H, U, W)      :- virtual_invoke(I, Z, S), pts(Z, H, U, V),
                        heap_type(H, T), implements(Q, T, S),
                        merge_cs(H, I, U, V, W), this_var(Y, Q).
call(I, Q, M, W)     :- static_invoke(I, Q, P), reach(P, M),
                        merge_s_cs(I, M, W).
reach(P, W)          :- call(I, P, V, W).
spts(F, H, U)        :- pts(X, H, U, V), static_store(X, F).
pts(Y, H, U, M)      :- static_load(F, Y, P), reach(P, M), spts(F, H, U).
texc(P, H, U, V)     :- pts(Z, H, U, V), throw_var(Z, P).
texc(P2, H, U, W)    :- texc(Q, H, U, V), call(I, Q, W, V),
                        invocation_parent(I, P2).
pts(Y, H, U, V)      :- texc(P, H, U, V), catch_var(Y, P).
"""


def compile_context_string_analysis(
    facts: FactSet, flavour: Flavour, m: int, h: int
) -> CompiledAnalysis:
    """The context-string instantiation (paper Section 7's first half).

    Inlining ``comp``/``inv`` into the rules and unifying variables
    yields "the familiar rule[s] … found in the Doop framework"; the
    flavour-specific constructors are builtins over packed context
    tuples.
    """
    from repro.datalog.parser import parse_datalog

    sens.validate_levels(flavour, m, h)
    program = parse_datalog(_CS_RULES)
    if facts.main_method is None:
        raise ValueError("fact set has no main method")
    entry = prefix(ENTRY_CONTEXT, m)
    program.rules.append(
        Rule(Literal("reach", (Const(facts.main_method), Const(entry))))
    )
    _install_input_facts(program, facts)

    class_of = facts.class_of_heap

    builtins = {
        "record_cs": function_builtin(
            "record_cs", lambda m_ctx: (prefix(m_ctx, h),), out_positions=(1,)
        ),
        "merge_cs": function_builtin(
            "merge_cs",
            lambda heap, inv, heap_ctx, m_ctx: (
                sens.merge_cs(
                    flavour, heap, inv, (heap_ctx, m_ctx), m, class_of
                )[1],
            ),
            out_positions=(4,),
        ),
        "merge_s_cs": function_builtin(
            "merge_s_cs",
            lambda inv, m_ctx: (
                sens.merge_s_cs(flavour, inv, m_ctx, m)[1],
            ),
            out_positions=(2,),
        ),
    }

    def decoder(raw: Dict[str, Set[Tuple]]) -> Dict[str, Set[Tuple]]:
        return {
            "pts": {
                (y, h_, (u, v)) for (y, h_, u, v) in raw.get("pts", set())
            },
            "hpts": {
                (g, f, h_, (u, v))
                for (g, f, h_, u, v) in raw.get("hpts", set())
            },
            "hload": {
                (g, f, y, (u, v))
                for (g, f, y, u, v) in raw.get("hload", set())
            },
            "call": {
                (i, p, (u, v)) for (i, p, u, v) in raw.get("call", set())
            },
            "reach": set(raw.get("reach", set())),
            "spts": {
                (f, h_, (u, ())) for (f, h_, u) in raw.get("spts", set())
            },
            "texc": {
                (p, h_, (u, v)) for (p, h_, u, v) in raw.get("texc", set())
            },
        }

    return _lint_emitted(CompiledAnalysis(
        program=program,
        builtins=builtins,
        decoder=decoder,
        description=f"{m}-{flavour.value}+{h}H/context-string",
    ))


# ---------------------------------------------------------------------------
# The naive transformer instantiation (Section 7's cautionary example).
# ---------------------------------------------------------------------------

_NAIVE_RULES = """
pts(Y, H, A)      :- pts(Z, H, A), assign(Z, Y).
hload(G, F, Z, A) :- pts(Y, G, A), load(Y, F, Z).
hpts(G, F, H, A)  :- pts(X, H, B), store(X, F, Z), pts(Z, G, C),
                     inv_t(C, CI), comp_hh(B, CI, A).
pts(Y, H, A)      :- hpts(G, F, H, B), hload(G, F, Y, C), comp_hm(B, C, A).
pts(Y, H, A)      :- pts(Z, H, B), actual(Z, I, O), call(I, P, C),
                     formal(Y, P, O), comp_hm(B, C, A).
pts(Y, H, A)      :- pts(Z, H, B), return_var(Z, P), call(I, P, C),
                     assign_return(I, Y), inv_t(C, CI), comp_hm(B, CI, A).
pts(Y, H, A)      :- assign_new(H, Y, P), reach(P, M), record_t(M, A).
spts(F, H, A2)    :- pts(X, H, A), static_store(X, F), to_global_t(A, A2).
pts(Y, H, A2)     :- static_load(F, Y, P), reach(P, M), spts(F, H, A),
                     from_global_t(A, M, A2).
texc(P, H, A)     :- pts(Z, H, A), throw_var(Z, P).
texc(P2, H, A)    :- texc(Q, H, B), call(I, Q, C), inv_t(C, CI),
                     comp_hm(B, CI, A), invocation_parent(I, P2).
pts(Y, H, A)      :- texc(P, H, A), catch_var(Y, P).
call(I, Q, C)     :- virtual_invoke(I, Z, S), pts(Z, H, B), heap_type(H, T),
                     implements(Q, T, S), merge_t(H, I, B, C).
pts(Y, H, A)      :- virtual_invoke(I, Z, S), pts(Z, H, B), heap_type(H, T),
                     implements(Q, T, S), merge_t(H, I, B, C),
                     comp_hm(B, C, A), this_var(Y, Q).
call(I, Q, C)     :- static_invoke(I, Q, P), reach(P, M), merge_s_t(I, M, C).
reach(P, M)       :- call(I, P, C), target_t(C, M).
"""


def compile_transformer_analysis_naive(
    facts: FactSet, flavour: Flavour, m: int, h: int
) -> CompiledAnalysis:
    """The naive (unspecialized) transformer-string program.

    Transformer strings stay packed in a single attribute and ``comp``
    is a procedural builtin — "the performance of such an implementation
    is significantly slower than a context string instantiation"
    (Section 7).  Kept as the baseline for the indexing ablation.
    """
    from repro.datalog.parser import parse_datalog

    sens.validate_levels(flavour, m, h)
    program = parse_datalog(_NAIVE_RULES)
    if facts.main_method is None:
        raise ValueError("fact set has no main method")
    entry = prefix(ENTRY_CONTEXT, m)
    program.rules.append(
        Rule(Literal("reach", (Const(facts.main_method), Const(entry))))
    )
    _install_input_facts(program, facts)

    class_of = facts.class_of_heap

    def comp(i, j):
        return lambda b, c: _maybe(ts.compose_trunc(b, c, i, j))

    def _maybe(value):
        return None if value is None else (value,)

    builtins = {
        "comp_hh": function_builtin("comp_hh", comp(h, h), out_positions=(2,)),
        "comp_hm": function_builtin("comp_hm", comp(h, m), out_positions=(2,)),
        "inv_t": function_builtin(
            "inv_t", lambda t: (ts.inverse(t),), out_positions=(1,)
        ),
        "record_t": function_builtin(
            "record_t", lambda m_ctx: (sens.record_ts(m_ctx, h),),
            out_positions=(1,),
        ),
        "merge_t": function_builtin(
            "merge_t",
            lambda heap, inv, receiver: _maybe(
                sens.merge_ts(flavour, heap, inv, receiver, m, class_of)
            ),
            out_positions=(3,),
        ),
        "merge_s_t": function_builtin(
            "merge_s_t",
            lambda inv, m_ctx: (sens.merge_s_ts(flavour, inv, m_ctx, m),),
            out_positions=(2,),
        ),
        "target_t": function_builtin(
            "target_t", lambda t: (t.pushes,), out_positions=(1,)
        ),
        "to_global_t": function_builtin(
            "to_global_t", lambda t: (ts.trunc(t, h, 0),), out_positions=(1,)
        ),
        "from_global_t": function_builtin(
            "from_global_t",
            lambda t, m_ctx: (
                ts.TransformerString(t.pops, True, ()),
            ),
            out_positions=(2,),
        ),
    }

    def decoder(raw: Dict[str, Set[Tuple]]) -> Dict[str, Set[Tuple]]:
        return {
            name: set(raw.get(name, set()))
            for name in (
                "pts", "hpts", "hload", "call", "reach", "spts", "texc",
            )
        }

    return _lint_emitted(CompiledAnalysis(
        program=program,
        builtins=builtins,
        decoder=decoder,
        description=f"{m}-{flavour.value}+{h}H/transformer-string/naive",
    ))
