"""Symbolic specialization of the deduction rules (paper Section 7).

The transformer-string instantiation becomes efficient Datalog by
*decomposing transformer strings into every possible configuration*:
each derived relation is split into one relation per configuration with
the string's context elements flattened into attributes, every rule is
duplicated for every combination of body configurations, and the
``comp``/``inv``/``record``/``merge``/``merge_s`` operations are
evaluated *symbolically* at compile time — a composition of two symbolic
strings turns the cancelling push/pop positions into shared rule
variables, which is exactly what restores indexable equi-joins.

The paper's worked example, reproduced by this module verbatim::

    hpts__xe(G, F, H, X, M), hload__xe(G, F, M, E)  ⊢  pts__xe(Y, H, X, E)

(the unifier identifies ``hpts``'s entry with ``hload``'s exit as the
shared variable ``M``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compile.configurations import Configuration, enumerate_configurations
from repro.core.sensitivity import Flavour
from repro.datalog.ast import Const, Literal, Rule, Term, Var


@dataclass(frozen=True)
class SymbolicTransformer:
    """A transformer string whose context elements are Datalog terms."""

    pops: Tuple[Term, ...]
    wildcard: bool
    pushes: Tuple[Term, ...]

    @property
    def configuration(self) -> Configuration:
        return Configuration(len(self.pops), self.wildcard, len(self.pushes))

    @property
    def attributes(self) -> Tuple[Term, ...]:
        """Flattened context attributes: pops then pushes."""
        return self.pops + self.pushes


#: Pairs of terms that must be equal for a composition to succeed.
Constraints = List[Tuple[Term, Term]]


def fresh_symbolic(config: Configuration, prefix: str) -> SymbolicTransformer:
    """A symbolic string of shape ``config`` with fresh variables.

    Variable names are capitalized so generated rules survive a round
    trip through the text syntax (capital-initial = variable).
    """
    tag = prefix.upper()
    return SymbolicTransformer(
        pops=tuple(Var(f"{tag}x{k}") for k in range(config.pops)),
        wildcard=config.wildcard,
        pushes=tuple(Var(f"{tag}e{k}") for k in range(config.pushes)),
    )


def inverse_symbolic(t: SymbolicTransformer) -> SymbolicTransformer:
    """``inv``: swap pops and pushes (same variables)."""
    return SymbolicTransformer(t.pushes, t.wildcard, t.pops)


def compose_symbolic(
    x: SymbolicTransformer, y: SymbolicTransformer
) -> Tuple[SymbolicTransformer, Constraints]:
    """``match(X·Y)`` at the symbolic level.

    Returns the resulting shape plus the equality constraints between
    ``x``'s pushes and ``y``'s pops; with fresh variables a symbolic
    composition never bottoms out — the constraints become shared
    variables, and the runtime ``⊥`` case is precisely a failed join.
    """
    overlap = min(len(x.pushes), len(y.pops))
    constraints: Constraints = list(zip(x.pushes[:overlap], y.pops[:overlap]))
    wildcard = x.wildcard or y.wildcard
    if len(y.pops) > len(x.pushes):
        pops = x.pops if x.wildcard else x.pops + y.pops[overlap:]
        pushes = y.pushes
    else:
        pops = x.pops
        pushes = y.pushes if y.wildcard else y.pushes + x.pushes[overlap:]
    return SymbolicTransformer(pops, wildcard, pushes), constraints


def trunc_symbolic(t: SymbolicTransformer, i: int, j: int) -> SymbolicTransformer:
    """``trunc_{i,j}`` at the symbolic level (Lemma 4.2 shape)."""
    if len(t.pops) <= i and len(t.pushes) <= j:
        return t
    return SymbolicTransformer(t.pops[:i], True, t.pushes[:j])


def solve_constraints(constraints: Constraints) -> Optional[Dict[Var, Term]]:
    """Most-general unifier of the equality constraints, or ``None``."""
    substitution: Dict[Var, Term] = {}

    def find(term: Term) -> Term:
        while isinstance(term, Var) and term in substitution:
            term = substitution[term]
        return term

    for left, right in constraints:
        root_left, root_right = find(left), find(right)
        if root_left == root_right:
            continue
        if isinstance(root_left, Var):
            substitution[root_left] = root_right
        elif isinstance(root_right, Var):
            substitution[root_right] = root_left
        else:
            return None
    # Path-compress so application is a single dict lookup.
    return {var: find(var) for var in substitution}


def apply_substitution(literal: Literal, subst: Dict[Var, Term]) -> Literal:
    if not subst:
        return literal
    return Literal(
        literal.pred,
        tuple(subst.get(t, t) if isinstance(t, Var) else t for t in literal.args),
        literal.negated,
    )


# ---------------------------------------------------------------------------
# Rule generation.
# ---------------------------------------------------------------------------

def _v(*names: str) -> Tuple[Var, ...]:
    return tuple(Var(n) for n in names)


class TransformerSpecializer:
    """Instantiates Figure 3 into configuration-specialized Datalog.

    ``reach`` is specialized by context-prefix *length* (``reach_0``,
    ``reach_1``, …) since the shapes of ``merge_s`` and ``target``
    depend on it, just as transformer shapes depend on configurations.
    """

    def __init__(self, flavour: Flavour, m: int, h: int):
        from repro.core.sensitivity import validate_levels

        validate_levels(flavour, m, h)
        self.flavour = flavour
        self.m = m
        self.h = h
        self.pts_configs = enumerate_configurations(h, m)
        self.hpts_configs = enumerate_configurations(h, h)
        self.call_configs = enumerate_configurations(m, m)
        self.spts_configs = enumerate_configurations(h, 0)

    # -- atoms over specialized predicates --------------------------------

    @staticmethod
    def spec_atom(base: str, entity: Sequence[Term], t: SymbolicTransformer) -> Literal:
        return Literal(
            t.configuration.predicate_name(base),
            tuple(entity) + t.attributes,
        )

    @staticmethod
    def reach_atom(method: Term, context: Sequence[Term]) -> Literal:
        return Literal(f"reach_{len(context)}", (method,) + tuple(context))

    # -- rule families --------------------------------------------------------

    def rules(self) -> List[Rule]:
        out: List[Rule] = []
        out += self.assign_rules()
        out += self.load_rules()
        out += self.store_rules()
        out += self.indirect_rules()
        out += self.param_rules()
        out += self.return_rules()
        out += self.virtual_rules()
        out += self.static_rules()
        out += self.reach_rules()
        out += self.new_rules()
        out += self.static_field_rules()
        out += self.exception_rules()
        for rule in out:
            rule.validate()
        return out

    def assign_rules(self) -> List[Rule]:
        (z, y, h) = _v("Z", "Y", "H")
        rules = []
        for config in self.pts_configs:
            t = fresh_symbolic(config, "a")
            rules.append(
                Rule(
                    self.spec_atom("pts", (y, h), t),
                    (
                        Literal("assign", (z, y)),
                        self.spec_atom("pts", (z, h), t),
                    ),
                )
            )
        return rules

    def load_rules(self) -> List[Rule]:
        (y, g, f, z) = _v("Y", "G", "F", "Z")
        rules = []
        for config in self.pts_configs:
            t = fresh_symbolic(config, "a")
            rules.append(
                Rule(
                    self.spec_atom("hload", (g, f, z), t),
                    (
                        self.spec_atom("pts", (y, g), t),
                        Literal("load", (y, f, z)),
                    ),
                )
            )
        return rules

    def _binary_comp_rules(
        self,
        head_base: str,
        head_entity: Sequence[Term],
        left_base: str,
        left_entity: Sequence[Term],
        left_configs: Sequence[Configuration],
        right_base: str,
        right_entity: Sequence[Term],
        right_configs: Sequence[Configuration],
        extra_body: Sequence[Literal],
        invert_right: bool,
        trunc_to: Tuple[int, int],
    ) -> List[Rule]:
        """Shared scaffold for STORE / IND / PARAM / RET instantiation."""
        rules = []
        for left_config, right_config in itertools.product(
            left_configs, right_configs
        ):
            left = fresh_symbolic(left_config, "b")
            right = fresh_symbolic(right_config, "c")
            operand = inverse_symbolic(right) if invert_right else right
            composed, constraints = compose_symbolic(left, operand)
            composed = trunc_symbolic(composed, *trunc_to)
            subst = solve_constraints(constraints)
            if subst is None:  # pragma: no cover - no constants involved
                continue
            body = [
                self.spec_atom(left_base, left_entity, left),
                *extra_body,
                self.spec_atom(right_base, right_entity, right),
            ]
            head = self.spec_atom(head_base, head_entity, composed)
            rules.append(
                Rule(
                    apply_substitution(head, subst),
                    tuple(apply_substitution(lit, subst) for lit in body),
                )
            )
        return rules

    def store_rules(self) -> List[Rule]:
        # hpts(G,F,H, B;inv(C)) :- pts(X,H,B), store(X,F,Z), pts(Z,G,C).
        (x, h, f, z, g) = _v("X", "H", "F", "Z", "G")
        return self._binary_comp_rules(
            "hpts", (g, f, h),
            "pts", (x, h), self.pts_configs,
            "pts", (z, g), self.pts_configs,
            extra_body=[Literal("store", (x, f, z))],
            invert_right=True,
            trunc_to=(self.h, self.h),
        )

    def indirect_rules(self) -> List[Rule]:
        # pts(Y,H, B;C) :- hpts(G,F,H,B), hload(G,F,Y,C).
        (g, f, h, y) = _v("G", "F", "H", "Y")
        return self._binary_comp_rules(
            "pts", (y, h),
            "hpts", (g, f, h), self.hpts_configs,
            "hload", (g, f, y), self.pts_configs,
            extra_body=[],
            invert_right=False,
            trunc_to=(self.h, self.m),
        )

    def param_rules(self) -> List[Rule]:
        # pts(Y,H, B;C) :- pts(Z,H,B), actual(Z,I,O), call(I,P,C),
        #                  formal(Y,P,O).
        (z, h, i, o, p, y) = _v("Z", "H", "I", "O", "P", "Y")
        rules = self._binary_comp_rules(
            "pts", (y, h),
            "pts", (z, h), self.pts_configs,
            "call", (i, p), self.call_configs,
            extra_body=[Literal("actual", (z, i, o))],
            invert_right=False,
            trunc_to=(self.h, self.m),
        )
        # append formal(Y, P, O) to every body (needs head var Y bound).
        return [
            Rule(r.head, r.body + (Literal("formal", (y, p, o)),))
            for r in rules
        ]

    def return_rules(self) -> List[Rule]:
        # pts(Y,H, B;inv(C)) :- pts(Z,H,B), return_var(Z,P), call(I,P,C),
        #                       assign_return(I,Y).
        (z, h, p, i, y) = _v("Z", "H", "P", "I", "Y")
        rules = self._binary_comp_rules(
            "pts", (y, h),
            "pts", (z, h), self.pts_configs,
            "call", (i, p), self.call_configs,
            extra_body=[Literal("return_var", (z, p))],
            invert_right=True,
            trunc_to=(self.h, self.m),
        )
        return [
            Rule(r.head, r.body + (Literal("assign_return", (i, y)),))
            for r in rules
        ]

    # -- virtual invocations ---------------------------------------------------

    def _merge_symbolic(
        self, receiver: SymbolicTransformer, heap: Var, inv: Var, class_type: Var
    ) -> SymbolicTransformer:
        """``merge`` per Figure 4, evaluated on the symbolic string."""
        if self.flavour in (Flavour.CALL_SITE, Flavour.PLAIN_OBJECT):
            restricted, constraints = compose_symbolic(
                inverse_symbolic(receiver), receiver
            )
            # inv(B);B unifies B's pops with themselves: no-op constraints.
            assert all(left == right for left, right in constraints)
            element = inv if self.flavour is Flavour.CALL_SITE else heap
            edge, _ = compose_symbolic(
                restricted,
                SymbolicTransformer((), False, (element,)),
            )
        elif self.flavour in (Flavour.OBJECT, Flavour.HYBRID):
            edge, _ = compose_symbolic(
                inverse_symbolic(receiver),
                SymbolicTransformer((), False, (heap,)),
            )
        else:
            edge, _ = compose_symbolic(
                inverse_symbolic(receiver),
                SymbolicTransformer((), False, (class_type,)),
            )
        return trunc_symbolic(edge, self.m, self.m)

    def virtual_rules(self) -> List[Rule]:
        (i, z, s, h, t, q, y, ct) = _v("I", "Z", "S", "H", "T", "Q", "Y", "CT")
        rules = []
        for config in self.pts_configs:
            receiver = fresh_symbolic(config, "b")
            edge = self._merge_symbolic(receiver, h, i, ct)
            this_pts, constraints = compose_symbolic(receiver, edge)
            this_pts = trunc_symbolic(this_pts, self.h, self.m)
            subst = solve_constraints(constraints)
            assert subst is not None
            body = [
                Literal("virtual_invoke", (i, z, s)),
                self.spec_atom("pts", (z, h), receiver),
                Literal("heap_type", (h, t)),
                Literal("implements", (q, t, s)),
            ]
            if self.flavour is Flavour.TYPE:
                body.append(Literal("class_of", (h, ct)))
            call_head = self.spec_atom("call", (i, q), edge)
            rules.append(
                Rule(
                    apply_substitution(call_head, subst),
                    tuple(apply_substitution(lit, subst) for lit in body),
                )
            )
            this_head = self.spec_atom("pts", (y, h), this_pts)
            this_body = body + [Literal("this_var", (y, q))]
            rules.append(
                Rule(
                    apply_substitution(this_head, subst),
                    tuple(apply_substitution(lit, subst) for lit in this_body),
                )
            )
        return rules

    # -- static invocations and reachability -----------------------------------

    def static_rules(self) -> List[Rule]:
        (i, q, p) = _v("I", "Q", "P")
        rules = []
        for length in range(self.m + 1):
            context = _v(*(f"M{k}" for k in range(length)))
            if self.flavour in (Flavour.CALL_SITE, Flavour.HYBRID):
                edge = trunc_symbolic(
                    SymbolicTransformer((), False, (i,)), self.m, self.m
                )
            else:
                edge = SymbolicTransformer(context, False, context)
            rules.append(
                Rule(
                    self.spec_atom("call", (i, q), edge),
                    (
                        Literal("static_invoke", (i, q, p)),
                        self.reach_atom(p, context),
                    ),
                )
            )
        return rules

    def reach_rules(self) -> List[Rule]:
        (i, p) = _v("I", "P")
        rules = []
        for config in self.call_configs:
            t = fresh_symbolic(config, "c")
            rules.append(
                Rule(
                    self.reach_atom(p, t.pushes),
                    (self.spec_atom("call", (i, p), t),),
                )
            )
        return rules

    def new_rules(self) -> List[Rule]:
        (h, y, p) = _v("H", "Y", "P")
        epsilon = SymbolicTransformer((), False, ())
        rules = []
        for length in range(self.m + 1):
            context = _v(*(f"M{k}" for k in range(length)))
            rules.append(
                Rule(
                    self.spec_atom("pts", (y, h), epsilon),
                    (
                        Literal("assign_new", (h, y, p)),
                        self.reach_atom(p, context),
                    ),
                )
            )
        return rules

    # -- static fields (paper extension) ---------------------------------------

    def static_field_rules(self) -> List[Rule]:
        """SSTORE / SLOAD: the global-scope projections specialize like
        everything else — ``to_global`` is ``trunc_{h,0}`` at the
        symbolic level, ``from_global`` forces the wildcard shape."""
        (x, h, f, y, p) = _v("X", "H", "F", "Y", "P")
        rules = []
        for config in self.pts_configs:
            t = fresh_symbolic(config, "b")
            projected = trunc_symbolic(
                SymbolicTransformer(t.pops, t.wildcard, t.pushes), self.h, 0
            )
            rules.append(
                Rule(
                    self.spec_atom("spts", (f, h), projected),
                    (
                        self.spec_atom("pts", (x, h), t),
                        Literal("static_store", (x, f)),
                    ),
                )
            )
        for config in self.spts_configs:
            t = fresh_symbolic(config, "s")
            retargeted = SymbolicTransformer(t.pops, True, ())
            for length in range(self.m + 1):
                context = _v(*(f"M{k}" for k in range(length)))
                rules.append(
                    Rule(
                        self.spec_atom("pts", (y, h), retargeted),
                        (
                            Literal("static_load", (f, y, p)),
                            self.reach_atom(p, context),
                            self.spec_atom("spts", (f, h), t),
                        ),
                    )
                )
        return rules

    # -- exceptions (paper extension) -------------------------------------------

    def exception_rules(self) -> List[Rule]:
        """THROW / EPROP / ECATCH over the pts configurations."""
        (z, h, p, y, i, q, p2) = _v("Z", "H", "P", "Y", "I", "Q", "P2")
        rules = []
        for config in self.pts_configs:
            t = fresh_symbolic(config, "b")
            rules.append(
                Rule(
                    self.spec_atom("texc", (p, h), t),
                    (
                        self.spec_atom("pts", (z, h), t),
                        Literal("throw_var", (z, p)),
                    ),
                )
            )
            rules.append(
                Rule(
                    self.spec_atom("pts", (y, h), t),
                    (
                        self.spec_atom("texc", (p, h), t),
                        Literal("catch_var", (y, p)),
                    ),
                )
            )
        prop = self._binary_comp_rules(
            "texc", (p2, h),
            "texc", (q, h), self.pts_configs,
            "call", (i, q), self.call_configs,
            extra_body=[],
            invert_right=True,
            trunc_to=(self.h, self.m),
        )
        rules.extend(
            Rule(r.head, r.body + (Literal("invocation_parent", (i, p2)),))
            for r in prop
        )
        return rules

    # -- entry fact -----------------------------------------------------------

    def entry_fact(self, main_method: str) -> Rule:
        from repro.core.contexts import ENTRY_CONTEXT, prefix

        context = prefix(ENTRY_CONTEXT, self.m)
        return Rule(
            Literal(
                f"reach_{len(context)}",
                (Const(main_method),) + tuple(Const(c) for c in context),
            )
        )
