"""Configuration-closure certification of the kernel pipeline (DL505).

Configuration specialization (:mod:`repro.compile.specialize`) is only
sound if the configuration universe at a sensitivity cell ``(m, h)`` is
*closed*: every symbolic ``comp`` / ``inv`` / ``merge`` / ``trunc``
a rule family performs must map universe configurations back into the
universe of the head relation, or the specializer would need a
per-configuration relation it never emitted and derivations would be
silently dropped.  The kernel compiler (:mod:`repro.compile.kernels`)
adds a second exhaustiveness obligation on top: every non-fact rule
needs its full-evaluation variant *and* one delta variant per positive
non-builtin IDB body position, or semi-naive rounds would skip
frontiers.

This module discharges both obligations statically and emits a
byte-stable ``repro-kernel-cert/1`` certificate:

1. **Closure obligations** — enumerate the universes
   (``pts`` = ``CtxtT_{h,m}``, ``hpts`` = ``CtxtT_{h,h}``,
   ``call`` = ``CtxtT_{m,m}``, ``spts`` = ``CtxtT_{h,0}``,
   ``reach`` = prefix lengths ``0..m``) and replay every rule family's
   symbolic operation — the *same* code path the specializer runs,
   via :class:`~repro.compile.specialize.TransformerSpecializer` —
   checking each result configuration for universe membership.
2. **Variant coverage** — compare the kernel program's
   ``variants_by_key`` against the required key set derived from the
   emitted rules.

Any violated obligation or missing variant becomes a ``DL505``
*error* diagnostic (unlike the advisory DL501–DL504 cost findings in
:mod:`repro.datalog.cost`, an uncovered configuration means wrong
results, not slow ones).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.compile.configurations import Configuration, enumerate_configurations
from repro.compile.kernels import KernelProgram
from repro.compile.specialize import (
    SymbolicTransformer,
    TransformerSpecializer,
    compose_symbolic,
    fresh_symbolic,
    inverse_symbolic,
    trunc_symbolic,
)
from repro.core.sensitivity import Flavour
from repro.datalog.ast import Program, Rule, Var
from repro.datalog.builtins import DEFAULT_BUILTINS
from repro.lint.diagnostics import Diagnostic, Severity

SCHEMA = "repro-kernel-cert/1"


def _tag(config: Configuration) -> str:
    return config.tag or "ε"


def _tags(configs: Sequence[Configuration]) -> Tuple[str, ...]:
    return tuple(_tag(c) for c in configs)


@dataclass(frozen=True)
class ClosureObligation:
    """One discharged proof obligation: a rule family's symbolic
    operation applied to universe configurations, with the resulting
    configuration checked against the head relation's universe."""

    family: str
    operands: Tuple[str, ...]
    result: str
    universe: str
    ok: bool

    def to_json(self) -> Dict:
        return {
            "family": self.family,
            "operands": list(self.operands),
            "result": self.result,
            "universe": self.universe,
            "ok": self.ok,
        }


def closure_obligations(
    flavour: Flavour, m: int, h: int
) -> List[ClosureObligation]:
    """Every closure obligation of the specializer at ``(m, h)``.

    One obligation per (rule family × operand-configuration tuple),
    replaying the family's exact symbolic operation from
    :class:`TransformerSpecializer` and checking the result against
    the head universe.  The enumeration order is the specializer's own
    (``enumerate_configurations`` order), so the certificate is
    deterministic.
    """
    spec = TransformerSpecializer(flavour, m, h)
    pts = set(spec.pts_configs)
    hpts = set(spec.hpts_configs)
    call = set(spec.call_configs)
    spts = set(spec.spts_configs)

    out: List[ClosureObligation] = []

    def oblige(family, operands, result_config, universe, members):
        out.append(ClosureObligation(
            family=family,
            operands=tuple(_tag(c) for c in operands),
            result=_tag(result_config),
            universe=universe,
            ok=result_config in members,
        ))

    def fresh(config, prefix):
        return fresh_symbolic(config, prefix)

    # ASSIGN / LOAD / THROW / ECATCH copy the transformer unchanged.
    for config in spec.pts_configs:
        for family in ("assign", "load", "throw", "catch"):
            oblige(family, (config,), config, "pts", pts)

    # STORE: hpts ⊇ trunc_{h,h}(pts ; inv(pts)).
    for left in spec.pts_configs:
        for right in spec.pts_configs:
            composed, _ = compose_symbolic(
                fresh(left, "b"), inverse_symbolic(fresh(right, "c"))
            )
            composed = trunc_symbolic(composed, h, h)
            oblige(
                "store", (left, right), composed.configuration, "hpts", hpts
            )

    # IND: pts ⊇ trunc_{h,m}(hpts ; hload) (hload shares pts's universe).
    for left in spec.hpts_configs:
        for right in spec.pts_configs:
            composed, _ = compose_symbolic(fresh(left, "b"), fresh(right, "c"))
            composed = trunc_symbolic(composed, h, m)
            oblige("indirect", (left, right), composed.configuration, "pts", pts)

    # PARAM: pts ⊇ trunc_{h,m}(pts ; call);
    # RET / EPROP: pts ⊇ trunc_{h,m}(pts ; inv(call)).
    for left in spec.pts_configs:
        for right in spec.call_configs:
            operand = fresh(right, "c")
            composed, _ = compose_symbolic(fresh(left, "b"), operand)
            composed = trunc_symbolic(composed, h, m)
            oblige("param", (left, right), composed.configuration, "pts", pts)
            inverted, _ = compose_symbolic(
                fresh(left, "b"), inverse_symbolic(operand)
            )
            inverted = trunc_symbolic(inverted, h, m)
            for family in ("return", "exception"):
                oblige(
                    family, (left, right), inverted.configuration, "pts", pts
                )

    # MERGE: call ⊇ merge(pts); pts ⊇ trunc_{h,m}(pts ; merge(pts)).
    heap, inv, class_type = Var("H"), Var("I"), Var("CT")
    for config in spec.pts_configs:
        receiver = fresh(config, "b")
        edge = spec._merge_symbolic(receiver, heap, inv, class_type)
        oblige("merge", (config,), edge.configuration, "call", call)
        this_pts, _ = compose_symbolic(receiver, edge)
        this_pts = trunc_symbolic(this_pts, h, m)
        oblige("this", (config,), this_pts.configuration, "pts", pts)

    # STATIC: the static-invoke edge per reach-prefix length.
    for length in range(m + 1):
        context = tuple(Var(f"M{k}") for k in range(length))
        if flavour in (Flavour.CALL_SITE, Flavour.HYBRID):
            edge = trunc_symbolic(
                SymbolicTransformer((), False, (Var("I"),)), m, m
            )
        else:
            edge = SymbolicTransformer(context, False, context)
        oblige(
            "static",
            (Configuration(length, False, length),),
            edge.configuration,
            "call",
            call,
        )

    # REACH: every call configuration's entry prefix is a valid length.
    for config in spec.call_configs:
        out.append(ClosureObligation(
            family="reach",
            operands=(_tag(config),),
            result=str(config.pushes),
            universe="reach",
            ok=config.pushes <= m,
        ))

    # NEW: the ε transformer is a pts configuration.
    epsilon = Configuration(0, False, 0)
    oblige("new", (), epsilon, "pts", pts)

    # SSTORE: spts ⊇ trunc_{h,0}(pts); SLOAD: pts ⊇ retarget(spts).
    for config in spec.pts_configs:
        projected = trunc_symbolic(fresh(config, "b"), h, 0)
        oblige("static_store", (config,), projected.configuration, "spts", spts)
    for config in spec.spts_configs:
        retargeted = Configuration(config.pops, True, 0)
        oblige("static_load", (config,), retargeted, "pts", pts)

    return out


def required_variant_keys(
    program: Program, builtins: Optional[Mapping] = None
) -> List[Tuple[int, Optional[int]]]:
    """The kernel-variant keys an exhaustive compile must cover.

    Mirrors :func:`repro.compile.kernels.compile_kernels` exactly: per
    non-fact rule, the full-evaluation variant ``(i, None)`` plus one
    delta variant per positive, non-builtin, IDB body position.
    """
    builtin_names = set(DEFAULT_BUILTINS)
    if builtins:
        builtin_names |= set(builtins)
    idb = program.idb_predicates()
    keys: List[Tuple[int, Optional[int]]] = []
    for index, rule in enumerate(program.rules):
        if rule.is_fact():
            continue
        keys.append((index, None))
        keys.extend(
            (index, position)
            for position, literal in enumerate(rule.body)
            if not literal.negated
            and literal.pred not in builtin_names
            and literal.pred in idb
        )
    return keys


@dataclass
class KernelCertificate:
    """The discharged obligations plus the coverage audit.

    ``variants`` fields are ``None`` when no kernel program was
    supplied (closure-only certification).  ``certified`` requires
    both halves: every obligation holds *and* (when audited) every
    required variant exists.
    """

    flavour: Flavour
    m: int
    h: int
    universes: Dict[str, Tuple[str, ...]]
    obligations: List[ClosureObligation]
    rules: Optional[int] = None
    required: Optional[List[Tuple[int, Optional[int]]]] = None
    missing: Optional[List[Tuple[int, Optional[int]]]] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)

    SCHEMA = SCHEMA

    @property
    def closed(self) -> bool:
        return all(obligation.ok for obligation in self.obligations)

    @property
    def exhaustive(self) -> Optional[bool]:
        if self.missing is None:
            return None
        return not self.missing

    @property
    def certified(self) -> bool:
        return self.closed and self.exhaustive is not False

    def violations(self) -> List[ClosureObligation]:
        return [o for o in self.obligations if not o.ok]

    def body(self) -> Dict:
        families: Dict[str, int] = {}
        for obligation in self.obligations:
            families[obligation.family] = families.get(obligation.family, 0) + 1
        body = {
            "generator": "repro.compile.closure",
            "flavour": self.flavour.value,
            "m": self.m,
            "h": self.h,
            "universes": {
                name: list(tags) for name, tags in sorted(self.universes.items())
            },
            "obligations": {
                "total": len(self.obligations),
                "violations": len(self.violations()),
                "families": dict(sorted(families.items())),
                "records": [o.to_json() for o in self.obligations],
            },
            "variants": None,
            "closed": self.closed,
            "certified": self.certified,
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": str(d.severity),
                    "rule": d.rule_index,
                    "message": d.message,
                }
                for d in self.diagnostics
            ],
        }
        if self.required is not None:
            body["variants"] = {
                "rules": self.rules,
                "required": len(self.required),
                "covered": len(self.required) - len(self.missing or ()),
                "missing": [list(key) for key in (self.missing or ())],
            }
        return body

    def digest(self) -> str:
        return _digest(self.body())

    def to_json(self) -> Dict:
        body = self.body()
        return {"schema": self.SCHEMA, "digest": _digest(body), "body": body}

    def render(self) -> str:
        lines = [
            f"kernel certificate ({self.m}-{self.flavour.value}"
            f"+{self.h}H): {len(self.obligations)} closure obligations,"
            f" {len(self.violations())} violated"
        ]
        if self.required is not None:
            lines.append(
                f"  variants: {len(self.required) - len(self.missing or ())}"
                f"/{len(self.required)} required keys covered over"
                f" {self.rules} rules"
            )
        lines.append(
            "  certified" if self.certified else "  NOT CERTIFIED (DL505)"
        )
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic.render()}")
        return "\n".join(lines)


def _digest(body: Dict) -> str:
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def certify_kernels(
    flavour: Flavour,
    m: int,
    h: int,
    program: Optional[Program] = None,
    kernels: Optional[KernelProgram] = None,
    builtins: Optional[Mapping] = None,
) -> KernelCertificate:
    """Certify the specializer (and optionally a compiled kernel
    program) at one sensitivity cell.

    Closure is always checked.  When ``program`` and ``kernels`` are
    supplied, the kernel program's ``variants_by_key`` is audited
    against :func:`required_variant_keys` (the program must be the one
    the kernels were compiled from — for a
    :class:`~repro.datalog.kernel.KernelEngine` that is
    ``engine.program``, the interned form).  Every violation surfaces
    as a DL505 error diagnostic.
    """
    spec = TransformerSpecializer(flavour, m, h)
    universes = {
        "pts": _tags(spec.pts_configs),
        "hpts": _tags(spec.hpts_configs),
        "call": _tags(spec.call_configs),
        "spts": _tags(spec.spts_configs),
        "reach": tuple(str(k) for k in range(m + 1)),
    }
    obligations = closure_obligations(flavour, m, h)

    diagnostics: List[Diagnostic] = []
    for obligation in obligations:
        if obligation.ok:
            continue
        operands = ", ".join(obligation.operands) or "ε"
        diagnostics.append(Diagnostic(
            "DL505", Severity.ERROR,
            f"configuration closure violated: family"
            f" {obligation.family!r} maps ({operands}) to"
            f" {obligation.result!r}, outside the {obligation.universe!r}"
            f" universe at ({m},{h})",
            where=obligation.family,
        ))

    rules = required = missing = None
    if program is not None and kernels is not None:
        required = required_variant_keys(program, builtins=builtins)
        rules = sum(1 for rule in program.rules if not rule.is_fact())
        missing = [
            key for key in required if key not in kernels.variants_by_key
        ]
        for rule_index, position in missing:
            rule: Rule = program.rules[rule_index]
            kind = (
                "full-evaluation variant" if position is None
                else f"delta variant for body position {position}"
                f" ({rule.body[position].pred!r})"
            )
            diagnostics.append(Diagnostic(
                "DL505", Severity.ERROR,
                f"kernel program is not exhaustive: rule"
                f" #{rule_index} ({rule.head.pred!r}) has no {kind}",
                rule_index=rule_index, pos=rule.pos, where=rule.head.pred,
            ))
    elif program is not None or kernels is not None:
        raise ValueError(
            "variant coverage needs both the program and its kernels"
        )

    return KernelCertificate(
        flavour=flavour, m=m, h=h, universes=universes,
        obligations=obligations, rules=rules, required=required,
        missing=missing, diagnostics=diagnostics,
    )


def verify_kernel_cert(document: Dict) -> Dict:
    """Self-check a ``repro-kernel-cert/1`` document.

    Raises :class:`ValueError` on schema mismatch, digest mismatch, or
    internal inconsistency (counts vs. records, ``closed`` /
    ``certified`` flags vs. their definitions); returns a summary dict
    on success — the same contract as the other self-checking
    documents (``repro-cost-plan/1``, shard plans, bench reports).
    """
    if document.get("schema") != SCHEMA:
        raise ValueError(
            f"expected schema {SCHEMA!r}, got {document.get('schema')!r}"
        )
    body = document.get("body")
    if not isinstance(body, dict):
        raise ValueError("kernel certificate has no body")
    digest = _digest(body)
    if document.get("digest") != digest:
        raise ValueError(
            f"digest mismatch: document says {document.get('digest')!r},"
            f" body hashes to {digest!r}"
        )
    obligations = body.get("obligations", {})
    records = obligations.get("records", [])
    if obligations.get("total") != len(records):
        raise ValueError(
            f"obligation count mismatch: total says"
            f" {obligations.get('total')}, {len(records)} records"
        )
    violations = [record for record in records if not record.get("ok")]
    if obligations.get("violations") != len(violations):
        raise ValueError(
            f"violation count mismatch: says"
            f" {obligations.get('violations')}, records show"
            f" {len(violations)}"
        )
    closed = not violations
    if body.get("closed") != closed:
        raise ValueError("closed flag contradicts the obligation records")
    variants = body.get("variants")
    exhaustive = True
    if variants is not None:
        missing = variants.get("missing", [])
        if variants.get("covered") != variants.get("required") - len(missing):
            raise ValueError("variant coverage arithmetic is inconsistent")
        exhaustive = not missing
    if body.get("certified") != (closed and exhaustive):
        raise ValueError("certified flag contradicts the audit results")
    return {
        "schema": SCHEMA,
        "digest": digest,
        "flavour": body.get("flavour"),
        "m": body.get("m"),
        "h": body.get("h"),
        "obligations": len(records),
        "violations": len(violations),
        "variants": None if variants is None else variants.get("required"),
        "missing": None if variants is None else len(variants.get("missing")),
        "certified": body.get("certified"),
    }
