"""Fused integer join kernels over the columnar store.

The last step of the paper's Section 7 pipeline.  Configuration
specialization (:mod:`repro.compile.specialize` → :mod:`.emit`) turns
every ``comp``/``inv``/``merge`` constraint into plain Datalog over
per-configuration relations ``base__x^a w? e^b`` whose transformer
letters are ordinary attributes — at which point arities and
shared-variable positions are *statically known*, and nothing generic
needs to survive into the hot loop.  This module cashes that in: each
(rule × delta-position) variant is compiled to a straight-line Python
function over the :class:`~repro.store.columnar.ColumnarRelation`
arrays of an interned program — no ``TransformerString`` objects, no
literal dispatch, no tuple materialization on the probe path.

Differences from :mod:`repro.datalog.codegen` (the tuple-row code
generator it structurally mirrors):

* relations are columnar: the delta is a range of *row ids* and
  destructuring reads ``column[row_id]`` from hoisted ``array('q')``
  locals instead of indexing a materialized tuple;
* index probes hit row-id buckets keyed by bare ints (single column)
  or int tuples, so a probe allocates nothing;
* constants are inlined as int literals — the program must already be
  interned (see :func:`repro.datalog.kernel.intern_program`);
* builtins run through explicit decode/encode shims at the interner
  boundary, with the interpreting engine's exact semantics (repeated
  unbound variables checked for consistency, negated builtins
  supported).

The generated functions have the signature
``fn(cols, db, idx, delta, out)``: ``cols`` the flat column-array
table, ``db`` the per-predicate row dicts (membership + full scans),
``idx`` the row-id bucket indices, ``delta`` the frontier's id range,
``out`` the list head rows are appended to.  A driver — the
:class:`~repro.datalog.kernel.KernelEngine` or a
:class:`~repro.datalog.parallel.ParallelEngine` shard — owns the
semi-naive rounds.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compile.configurations import parse_tag
from repro.datalog.ast import Const, Literal, Program, Rule, Var
from repro.datalog.builtins import DEFAULT_BUILTINS, BuiltinFn
from repro.store.interner import Interner


class KernelCompilationError(ValueError):
    """A program the kernel compiler cannot lower (e.g. not interned)."""


def _mangle(name: str) -> str:
    return re.sub(r"\W", "_", name)


def relation_layout(name: str, arity: int) -> Dict:
    """The columnar layout of one relation, configuration-aware.

    A configuration-specialized name (``pts__xwe``-style suffix whose
    tag parses as ``x^a w? e^b``) splits into entity columns followed
    by flattened context-letter columns; anything else is all entity.
    """
    base, sep, tag = name.partition("__")
    if sep:
        try:
            configuration = parse_tag(tag)
        except ValueError:
            configuration = None
        if configuration is not None:
            return {
                "relation": name,
                "arity": arity,
                "base": base,
                "tag": tag,
                "context_arity": configuration.context_arity,
                "entity_arity": arity - configuration.context_arity,
            }
    return {
        "relation": name,
        "arity": arity,
        "base": None,
        "tag": None,
        "context_arity": 0,
        "entity_arity": arity,
    }


@dataclass(frozen=True)
class KernelVariant:
    """One compiled (rule × delta-position) function."""

    rule_index: int
    delta_position: Optional[int]
    head: str
    delta_pred: Optional[str]
    name: str


@dataclass
class KernelProgram:
    """The compiled kernels plus the storage-binding tables a driver
    needs: predicate → ``db`` slot, (predicate, positions) → ``idx``
    slot, (predicate, column) → ``cols`` slot."""

    source: str
    variants: List[KernelVariant]
    pred_ids: Dict[str, int]
    pred_arities: Dict[str, int]
    index_ids: Dict[Tuple[str, Tuple[int, ...]], int]
    column_ids: Dict[Tuple[str, int], int]
    builtin_ids: Dict[str, int]
    var_pool: List[Var]
    variants_by_key: Dict[Tuple[int, Optional[int]], KernelVariant] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.variants_by_key:
            self.variants_by_key = {
                (v.rule_index, v.delta_position): v for v in self.variants
            }

    def arity_of(self, pred: str) -> int:
        return self.pred_arities[pred]

    def instantiate(
        self,
        builtins: Optional[Dict[str, BuiltinFn]] = None,
        interner: Optional[Interner] = None,
    ):
        """Exec the generated source; returns ``{function name: fn}``.

        The functions close over nothing mutable per run — storage is
        passed per call — so one instantiation can be shared by many
        drivers (e.g. every shard of a parallel run).
        """
        if self.builtin_ids and interner is None:
            raise KernelCompilationError(
                "kernels with builtins need an interner for the"
                " decode/encode boundary"
            )
        table: List[Optional[BuiltinFn]] = [None] * len(self.builtin_ids)
        for name, slot in self.builtin_ids.items():
            fn = (builtins or {}).get(name, DEFAULT_BUILTINS.get(name))
            if fn is None:
                raise KernelCompilationError(f"unknown builtin {name!r}")
            table[slot] = fn
        namespace = {
            "_B": table,
            "_V": self.var_pool,
            "_EMPTY": (),
            "_dec": interner.value_of if interner is not None else None,
            "_enc": interner.intern if interner is not None else None,
        }
        exec(compile(self.source, "<datalog-kernels>", "exec"), namespace)
        return {v.name: namespace[v.name] for v in self.variants}

    def layout(self) -> List[Dict]:
        """Per-relation columnar layouts (configuration split included)."""
        return [
            relation_layout(pred, self.pred_arities[pred])
            for pred in sorted(self.pred_arities)
        ]


class _KernelCompiler:
    """Emits one kernel function for (rule, delta position or None)."""

    def __init__(
        self,
        rule: Rule,
        delta_position: Optional[int],
        builtin_names: Set[str],
        function_name: str,
        pred_ids: Dict[str, int],
        index_ids: Dict[Tuple[str, Tuple[int, ...]], int],
        column_ids: Dict[Tuple[str, int], int],
        builtin_ids: Dict[str, int],
        var_pool: List[Var],
    ):
        self.rule = rule
        self.delta_position = delta_position
        self.builtin_names = builtin_names
        self.function_name = function_name
        self._pred_ids = pred_ids
        self._index_ids = index_ids
        self._column_ids = column_ids
        self._builtin_ids = builtin_ids
        self._var_pool = var_pool
        self.lines: List[str] = []
        self.indent = 1
        self.loop_depth = 0
        self.bound: Dict[Var, str] = {}
        self.fresh = itertools.count()
        self._used_columns: Dict[int, None] = {}
        self._delta_index_lines: List[str] = []

    # -- plumbing ----------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def emit_guard(self, condition: str) -> None:
        # Inside a loop a failed guard skips the candidate; before any
        # loop it means the whole rule yields nothing.
        self.emit(f"if {condition}:")
        self.indent += 1
        self.emit("continue" if self.loop_depth else "return")
        self.indent -= 1

    def open_loop(self, header: str) -> None:
        self.emit(header)
        self.indent += 1
        self.loop_depth += 1

    def local(self, hint: str = "t") -> str:
        return f"_{hint}{next(self.fresh)}"

    def _pred_id(self, pred: str) -> int:
        return self._pred_ids.setdefault(pred, len(self._pred_ids))

    def _index_id(self, pred: str, positions: Tuple[int, ...]) -> int:
        return self._index_ids.setdefault(
            (pred, positions), len(self._index_ids)
        )

    def _builtin_id(self, pred: str) -> int:
        return self._builtin_ids.setdefault(pred, len(self._builtin_ids))

    def _column(self, pred: str, position: int) -> str:
        slot = self._column_ids.setdefault(
            (pred, position), len(self._column_ids)
        )
        self._used_columns[slot] = None
        return f"_col{slot}"

    def _const_expr(self, term: Const) -> str:
        if not isinstance(term.value, int) or isinstance(term.value, bool):
            raise KernelCompilationError(
                f"kernel constants must be interned ints; got"
                f" {term.value!r} in {self.rule!r} — run the program"
                " through intern_program first"
            )
        return repr(term.value)

    def _term_expr(self, term) -> Optional[str]:
        if isinstance(term, Const):
            return self._const_expr(term)
        return self.bound.get(term)

    # -- code emission -----------------------------------------------------

    def compile(self) -> str:
        self.lines.append(
            f"def {self.function_name}(cols, db, idx, delta, out):"
        )
        for index, literal in enumerate(self.rule.body):
            if index == self.delta_position:
                self._emit_delta_scan(literal)
            elif literal.pred in self.builtin_names:
                self._emit_builtin(literal)
            elif literal.negated:
                self._emit_negation(literal)
            else:
                self._emit_lookup(literal)
        self._emit_head()
        # Hoist the used column arrays once, after the def line.
        preamble = [
            f"    _col{slot} = cols[{slot}]" for slot in self._used_columns
        ]
        preamble += ["    " + line for line in self._delta_index_lines]
        self.lines[1:1] = preamble
        if len(self.lines) == 1:
            self.emit("pass")
        return "\n".join(self.lines)

    def _destructure_columns(self, literal: Literal, rid: str) -> None:
        # Left-to-right, interleaving binds and equality guards (a
        # repeated variable's second occurrence checks against its
        # first; constants filter rows) — reading column[rid] instead
        # of a materialized tuple.
        pending_checks: List[str] = []
        for position, term in enumerate(literal.args):
            cell = f"{self._column(literal.pred, position)}[{rid}]"
            if isinstance(term, Const):
                pending_checks.append(f"{cell} != {self._const_expr(term)}")
            elif term in self.bound:
                pending_checks.append(f"{cell} != {self.bound[term]}")
            else:
                if pending_checks:
                    self.emit_guard(" or ".join(pending_checks))
                    pending_checks = []
                name = self.local(_mangle(term.name))
                self.emit(f"{name} = {cell}")
                self.bound[term] = name
        if pending_checks:
            self.emit_guard(" or ".join(pending_checks))

    def _destructure_tuple(self, literal: Literal, row: str) -> None:
        # Full scans iterate the row dict and hand out tuples.
        pending_checks: List[str] = []
        for position, term in enumerate(literal.args):
            cell = f"{row}[{position}]"
            if isinstance(term, Const):
                pending_checks.append(f"{cell} != {self._const_expr(term)}")
            elif term in self.bound:
                pending_checks.append(f"{cell} != {self.bound[term]}")
            else:
                if pending_checks:
                    self.emit_guard(" or ".join(pending_checks))
                    pending_checks = []
                name = self.local(_mangle(term.name))
                self.emit(f"{name} = {cell}")
                self.bound[term] = name
        if pending_checks:
            self.emit_guard(" or ".join(pending_checks))

    def _emit_delta_scan(self, literal: Literal) -> None:
        bound_positions = tuple(
            position
            for position, term in enumerate(literal.args)
            if isinstance(term, Const) or term in self.bound
        )
        rid = self.local("r")
        if bound_positions:
            # Bucket the delta ids by the probe's bound columns once per
            # invocation (the build lands in the function preamble,
            # before any outer loop opens).  Without it every prefix
            # binding would rescan the whole delta behind equality
            # guards — penalizing any body order that doesn't put the
            # delta literal first.
            build_rid = self.local("dr")
            cells = [
                f"{self._column(literal.pred, p)}[{build_rid}]"
                for p in bound_positions
            ]
            build_key = (
                cells[0] if len(cells) == 1
                else "(" + ", ".join(cells) + ")"
            )
            self._delta_index_lines = [
                "_dbuckets = {}",
                f"for {build_rid} in delta:",
                f"    _dbuckets.setdefault({build_key}, [])"
                f".append({build_rid})",
            ]
            key_terms = [literal.args[p] for p in bound_positions]
            if len(key_terms) == 1:
                key = self._term_expr(key_terms[0])
            else:
                key = (
                    "(" + ", ".join(self._term_expr(t) for t in key_terms)
                    + ")"
                )
            self.open_loop(f"for {rid} in _dbuckets.get({key}, _EMPTY):")
        else:
            self.open_loop(f"for {rid} in delta:")
        self._destructure_columns(literal, rid)

    def _emit_lookup(self, literal: Literal) -> None:
        bound_positions = tuple(
            position
            for position, term in enumerate(literal.args)
            if isinstance(term, Const) or term in self.bound
        )
        if len(bound_positions) == len(literal.args):
            # Fully bound: membership test on the row dict.
            key = ", ".join(self._term_expr(t) for t in literal.args)
            trailing = "," if len(literal.args) == 1 else ""
            self.emit_guard(
                f"({key}{trailing}) not in db[{self._pred_id(literal.pred)}]"
            )
            return
        if bound_positions:
            key_terms = [literal.args[p] for p in bound_positions]
            if len(key_terms) == 1:
                # Single-column bucket: bare int key, no tuple built.
                key = self._term_expr(key_terms[0])
            else:
                key = (
                    "(" + ", ".join(self._term_expr(t) for t in key_terms)
                    + ")"
                )
            rid = self.local("r")
            self.open_loop(
                f"for {rid} in"
                f" idx[{self._index_id(literal.pred, bound_positions)}]"
                f".get({key}, _EMPTY):"
            )
            self._destructure_columns(literal, rid)
        else:
            row = self.local("t")
            self.open_loop(f"for {row} in db[{self._pred_id(literal.pred)}]:")
            self._destructure_tuple(literal, row)

    def _emit_negation(self, literal: Literal) -> None:
        if any(self._term_expr(t) is None for t in literal.args):
            raise KernelCompilationError(
                f"negated literal {literal!r} reached with unbound"
                f" variables in {self.rule!r}"
            )
        key = ", ".join(self._term_expr(t) for t in literal.args)
        trailing = "," if len(literal.args) == 1 else ""
        self.emit_guard(
            f"({key}{trailing}) in db[{self._pred_id(literal.pred)}]"
        )

    def _emit_builtin(self, literal: Literal) -> None:
        # The interner boundary: builtins see raw values.  Bound args
        # decode (O(1) table read, no allocation); produced values for
        # unbound positions re-intern.  Semantics mirror the
        # interpreting engine's _eval_builtin exactly — including the
        # repeated-unbound-variable consistency check and negated
        # builtins (both of which repro.datalog.codegen elides).
        args: List[str] = []
        unbound: List[Tuple[int, Var]] = []
        for position, term in enumerate(literal.args):
            expr = self._term_expr(term)
            if expr is None:
                self._var_pool.append(term)
                args.append(f"_V[{len(self._var_pool) - 1}]")
                unbound.append((position, term))
            else:
                args.append(f"_dec({expr})")
        call = (
            f"_B[{self._builtin_id(literal.pred)}]"
            f"(({', '.join(args)}{',' if len(args) == 1 else ''}))"
        )
        if literal.negated:
            # Succeeds iff the builtin produces nothing; never binds
            # (unbound variables are passed through as Var objects,
            # exactly like the interpreter).
            self.emit_guard(f"next(iter({call}), None) is not None")
            return
        row = self.local("b")
        self.open_loop(f"for {row} in {call}:")
        pending_checks: List[str] = []
        for position, term in enumerate(literal.args):
            cell = f"{row}[{position}]"
            if isinstance(term, Const):
                pending_checks.append(
                    f"{cell} != _dec({self._const_expr(term)})"
                )
            elif term in self.bound:
                pending_checks.append(f"{cell} != _dec({self.bound[term]})")
            else:
                if pending_checks:
                    self.emit_guard(" or ".join(pending_checks))
                    pending_checks = []
                name = self.local(_mangle(term.name))
                self.emit(f"{name} = _enc({cell})")
                self.bound[term] = name
        if pending_checks:
            self.emit_guard(" or ".join(pending_checks))

    def _emit_head(self) -> None:
        head = self.rule.head
        key = ", ".join(self._term_expr(t) for t in head.args)
        trailing = "," if len(head.args) == 1 else ""
        self.emit(f"out.append(({key}{trailing}))")


def compile_kernels(
    program: Program,
    builtins: Optional[Dict[str, BuiltinFn]] = None,
    rules: Optional[Sequence[Tuple[int, Rule]]] = None,
) -> KernelProgram:
    """Compile (a subset of) a program's rules to columnar kernels.

    ``rules`` is a sequence of ``(rule_index, rule)`` pairs — by
    default every non-fact rule with its position in ``program.rules``
    — so a :class:`~repro.datalog.parallel.ParallelEngine` shard can
    compile just its plan's shard-local rules while keeping indices
    aligned with the plan's rule numbering.  Delta variants are
    generated for every positive, non-builtin IDB body position
    (variant selection at run time is the driver's job).

    The program must be interned (all constants ints); the compiler
    raises :class:`KernelCompilationError` otherwise.
    """
    builtin_names = set(DEFAULT_BUILTINS)
    if builtins:
        builtin_names |= set(builtins)
    idb = program.idb_predicates()

    pred_ids: Dict[str, int] = {}
    index_ids: Dict[Tuple[str, Tuple[int, ...]], int] = {}
    column_ids: Dict[Tuple[str, int], int] = {}
    builtin_ids: Dict[str, int] = {}
    var_pool: List[Var] = []

    if rules is None:
        rules = [
            (index, rule)
            for index, rule in enumerate(program.rules)
            if not rule.is_fact()
        ]

    sources: List[str] = []
    variants: List[KernelVariant] = []
    for rule_index, rule in rules:
        positions: List[Optional[int]] = [None]
        positions += [
            i for i, lit in enumerate(rule.body)
            if not lit.negated and lit.pred not in builtin_names
            and lit.pred in idb
        ]
        for variant_number, delta_position in enumerate(positions):
            name = f"_k{rule_index}_v{variant_number}"
            compiler = _KernelCompiler(
                rule, delta_position, builtin_names, name,
                pred_ids, index_ids, column_ids, builtin_ids, var_pool,
            )
            sources.append(compiler.compile())
            delta_pred = (
                None if delta_position is None
                else rule.body[delta_position].pred
            )
            variants.append(
                KernelVariant(
                    rule_index, delta_position, rule.head.pred,
                    delta_pred, name,
                )
            )

    # Every predicate mentioned anywhere gets a db slot and an arity,
    # whether or not these rules touch it — drivers bind storage for
    # the whole program once.
    pred_arities: Dict[str, int] = {}
    for rule in program.rules:
        for literal in (rule.head, *rule.body):
            if literal.pred in builtin_names:
                continue
            pred_ids.setdefault(literal.pred, len(pred_ids))
            pred_arities.setdefault(literal.pred, literal.arity)
    for pred, rows in program.facts.items():
        pred_ids.setdefault(pred, len(pred_ids))
        for row in rows:
            pred_arities.setdefault(pred, len(row))
            break

    return KernelProgram(
        source="\n\n".join(sources),
        variants=variants,
        pred_ids=pred_ids,
        pred_arities=pred_arities,
        index_ids=index_ids,
        column_ids=column_ids,
        builtin_ids=builtin_ids,
        var_pool=var_pool,
    )
