"""repro — a reproduction of *Context Transformations for Pointer
Analysis* (Rei Thiessen and Ondřej Lhoták, PLDI 2017).

The package implements the paper's context-transformation algebra, its
parameterized deduction rules under both the traditional context-string
abstraction and the paper's transformer-string abstraction, the three
flavours of context sensitivity (call-site, object, type), a Datalog
substrate with the Section 7 configuration-specialization compiler, a
CFL-reachability formulation, a Java-subset frontend with Doop-style
facts I/O, an incremental evaluation engine (fact deltas with DRed
retraction), a live-updatable analysis service, and the benchmark
harness that regenerates the paper's evaluation tables.

Public entry points::

    from repro import analyze, AnalysisConfig, Flavour, parse_program

    result = analyze(java_source, AnalysisConfig(
        abstraction="transformer-string", flavour=Flavour.OBJECT, m=2, h=1,
    ))
    result.points_to("T.main/x")
"""

from repro.core.analysis import PointerAnalysis, analyze
from repro.core.config import AnalysisConfig, PAPER_CONFIGURATIONS, config_by_name
from repro.core.demand import DemandPointerAnalysis
from repro.core.results import AnalysisResult
from repro.core.sensitivity import Flavour
from repro.core.transformer_strings import TransformerString
from repro.frontend.factgen import FactSet, facts_from_source, generate_facts
from repro.frontend.parser import parse_program
from repro.incremental import FactDelta, IncrementalSolver, diff_programs

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "DemandPointerAnalysis",
    "FactDelta",
    "FactSet",
    "Flavour",
    "IncrementalSolver",
    "PAPER_CONFIGURATIONS",
    "PointerAnalysis",
    "TransformerString",
    "analyze",
    "config_by_name",
    "diff_programs",
    "facts_from_source",
    "generate_facts",
    "parse_program",
    "__version__",
]
