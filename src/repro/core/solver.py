"""Worklist evaluation of the parameterized deduction rules (Figure 3).

This is the library's fast path: a tuple-at-a-time semi-naive solver
hand-specialized to the eleven rules of paper Figure 3, parameterized by
an :class:`repro.core.domains.AbstractionDomain`.  Each newly derived
fact is pushed on a worklist; popping a fact fires exactly the rules in
which it can participate, joining against the already-derived portion of
the other relations — the classical semi-naive discipline, so every rule
instance fires exactly once.

Indexing mirrors the paper's Section 7 discussion.  Every derived
relation carrying a context transformation is indexed by its entity
attributes *plus* domain-provided join-compatibility buckets
(:meth:`AbstractionDomain.insert_keys` / ``probe_keys``): for context
strings the bucket is the shared middle context, recovering Doop's
three-attribute joins; for transformer strings the buckets realize the
configuration specialization's prefix-compatible joins — probing
enumerates exactly the composable partners.  The
``naive_transformer_index`` switch reverts to entity-only buckets (the
two-attribute join the paper warns about); the effect is measured by
``benchmarks/test_bench_indexing.py``.

Storage lives in the shared substrate of :mod:`repro.store`: each
derived relation is a counter-instrumented ``Relation`` and each join
bucket a ``KeyedIndex`` over ``(entity, bucket)`` composites, so the
hot join path is one dict probe per bucket.  Per-relation counters
(inserts, dedup hits, probes, index sizes) are surfaced through
:class:`SolverStats` and the CLI's ``--stats`` flag.

Derived relations and their context-transformation domains:

* ``pts(Y, H, A)``      with ``A ∈ CtxtT_{h,m}``
* ``hpts(G, F, H, A)``  with ``A ∈ CtxtT_{h,h}``
* ``hload(G, F, Y, A)`` with ``A ∈ CtxtT_{h,m}``
* ``call(I, P, C)``     with ``C ∈ CtxtT_{m,m}``
* ``reach(P, M)``       with ``M`` a method-context prefix
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Set, Tuple

from repro.core.domains import AbstractionDomain
from repro.frontend.factgen import FactSet
from repro.store import TupleStore, multimap


class SolverStats:
    """Counters describing one solver run.

    ``relations`` holds the per-relation store counters (inserts, dedup
    hits, probes, index builds/sizes) captured from the shared
    :class:`repro.store.TupleStore` when the run finishes.
    """

    def __init__(self) -> None:
        self.facts_derived = 0
        self.facts_deduplicated = 0
        self.facts_subsumed = 0
        self.rule_firings = 0
        self.seconds = 0.0
        self.relations: Dict[str, Dict[str, int]] = {}

    def as_dict(self) -> Dict[str, float]:
        return {
            "facts_derived": self.facts_derived,
            "facts_deduplicated": self.facts_deduplicated,
            "facts_subsumed": self.facts_subsumed,
            "rule_firings": self.rule_firings,
            "seconds": self.seconds,
        }

    def full_dict(self) -> Dict[str, object]:
        """``as_dict`` plus the per-relation store counters."""
        out: Dict[str, object] = dict(self.as_dict())
        out["relations"] = self.relations
        return out


class Solver:
    """Evaluates the Figure 3 rules over one program and one domain.

    ``eliminate_subsumed`` enables the paper's Section 8 future-work
    optimization for transformer strings: a new ``pts``/``hpts``/``call``
    fact is dropped when an already-derived fact on the same entity tuple
    subsumes it (its wildcard concretization covers the new fact).  This
    never changes the context-insensitive projection — the subsuming fact
    derives a superset of the subsumed fact's consequences — but reduces
    the number of stored facts.
    """

    def __init__(
        self,
        facts: FactSet,
        domain: AbstractionDomain,
        eliminate_subsumed: bool = False,
        naive_transformer_index: bool = False,
        track_provenance: bool = False,
    ):
        self.facts = facts
        self.domain = domain
        self.eliminate_subsumed = (
            eliminate_subsumed and domain.abstraction == "transformer-string"
        )
        # Ablation switch (Section 7): with the naive index, transformer
        # facts are bucketed by entity attributes only — every probe
        # scans all of an entity's facts and filters with `comp`, the
        # two-attribute join the paper warns about.  The default is the
        # prefix-compatible bucket scheme (see AbstractionDomain).
        self.naive_transformer_index = (
            naive_transformer_index
            and domain.abstraction == "transformer-string"
        )
        # When enabled, the first derivation of every fact is recorded
        # as (rule name, premise fact keys, note); see
        # AnalysisResult.explain for the rendered derivation trees.
        self.track_provenance = track_provenance
        self.provenance: Dict[Tuple, Tuple] = {}
        # Support-instance graph for incremental maintenance (see
        # repro.incremental): None in batch mode (zero cost); after
        # enable_support_tracking(), every add_* call records its
        # (rule, premises) instance under the conclusion's key, with a
        # reverse premise → instances index for DRed cascades.
        self.support: Dict[Tuple, set] = None
        self.uses: Dict[Tuple, set] = None
        self.stats = SolverStats()
        self._build_input_indices()
        self._init_derived()

    # ------------------------------------------------------------------
    # Input indexing.
    # ------------------------------------------------------------------

    def _build_input_indices(self, only: Optional[set] = None) -> None:
        """(Re)build the per-relation join multimaps from ``self.facts``.

        ``only`` restricts the rebuild to the indices derived from the
        named input relations — the incremental engine passes the
        relations a delta touched, so a one-row edit does not pay a
        whole-program rebuild.
        """
        facts = self.facts

        def want(relation: str) -> bool:
            return only is None or relation in only

        if want("assign"):
            self.assign_by_src = multimap(
                (src, dst) for (src, dst) in facts.assign
            )
        if want("store"):
            self.store_by_value = multimap(
                (x, (f, z)) for (x, f, z) in facts.store
            )
            self.store_by_base = multimap(
                (z, (x, f)) for (x, f, z) in facts.store
            )
        if want("load"):
            self.load_by_base = multimap(
                (y, (f, z)) for (y, f, z) in facts.load
            )
        if want("actual"):
            self.actual_by_var = multimap(
                (z, (i, o)) for (z, i, o) in facts.actual
            )
            self.actual_by_inv = multimap(
                (i, (z, o)) for (z, i, o) in facts.actual
            )
        if want("formal"):
            self.formal_at = multimap(
                ((p, o), y) for (y, p, o) in facts.formal
            )
        if want("assign_return"):
            self.assign_return_by_inv = multimap(facts.assign_return)
        if want("return_var"):
            self.return_by_var = multimap(facts.return_var)
            self.returns_of_method = multimap(
                (p, z) for (z, p) in facts.return_var
            )
        if want("virtual_invoke"):
            self.virtual_by_recv = multimap(
                (z, (i, s)) for (i, z, s) in facts.virtual_invoke
            )
        if want("heap_type"):
            self.heap_type_of: Dict[str, str] = dict(facts.heap_type)
        if want("implements"):
            self.implements_at = multimap(
                ((t, s), q) for (q, t, s) in facts.implements
            )
        if want("this_var"):
            self.this_var_of: Dict[str, str] = {
                method: var for (var, method) in facts.this_var
            }
        if want("assign_new"):
            self.assign_new_by_method = multimap(
                (p, (h, y)) for (h, y, p) in facts.assign_new
            )
        if want("static_invoke"):
            self.static_invokes_in = multimap(
                (p, (i, q)) for (i, q, p) in facts.static_invoke
            )
        # Static fields (SSTORE / SLOAD).
        if want("static_store"):
            self.static_store_by_var = multimap(facts.static_store)
        if want("static_load"):
            self.static_load_by_field = multimap(
                (f, (y, p)) for (f, y, p) in facts.static_load
            )
            self.static_loads_in = multimap(
                (p, (f, y)) for (f, y, p) in facts.static_load
            )
        # Exceptions (THROW / EPROP / ECATCH).
        if want("throw_var"):
            self.throw_by_var = multimap(facts.throw_var)
        if want("catch_var"):
            self.catch_vars_of = multimap(
                (p, y) for (y, p) in facts.catch_var
            )
        if want("invocation_parent"):
            self.invocation_parent = dict(facts.invocation_parent)

    def _init_derived(self) -> None:
        # One shared store: each derived relation is a counter-
        # instrumented row set, each join bucket an interner-backed
        # KeyedIndex sharing its relation's counters.  The solver owns
        # its frontier (the worklist), so delta tracking is off.
        self.store = TupleStore()

        def rel(name: str, arity: int):
            return self.store.relation(name, arity, track_delta=False)

        self.pts_rel = rel("pts", 3)
        self.hpts_rel = rel("hpts", 4)
        self.hload_rel = rel("hload", 4)
        self.call_rel = rel("call", 3)
        self.reach_rel = rel("reach", 2)
        self.spts_rel = rel("spts", 3)
        self.texc_rel = rel("texc", 3)

        # Raw row sets under the historical attribute names; results and
        # the differential tests compare these sets directly.
        self.pts: Set[Tuple[str, str, object]] = self.pts_rel.rows
        self.hpts: Set[Tuple[str, str, str, object]] = self.hpts_rel.rows
        self.hload: Set[Tuple[str, str, str, object]] = self.hload_rel.rows
        self.call: Set[Tuple[str, str, object]] = self.call_rel.rows
        self.reach: Set[Tuple[str, Tuple[str, ...]]] = self.reach_rel.rows
        self.spts: Set[Tuple[str, str, object]] = self.spts_rel.rows
        self.texc: Set[Tuple[str, str, object]] = self.texc_rel.rows

        self.pts_index = self.store.keyed_index("pts")
        self.hpts_index = self.store.keyed_index("hpts")
        self.hload_index = self.store.keyed_index("hload")
        self.call_by_inv = self.store.keyed_index("call", "call_by_inv")
        self.call_by_callee = self.store.keyed_index("call", "call_by_callee")
        self.reach_by_method = self.store.keyed_index("reach")
        self.spts_by_field = self.store.keyed_index("spts")
        self.texc_index = self.store.keyed_index("texc")

        # Per-entity transformer lists, maintained only when subsumption
        # elimination is enabled (so its cost is paid only in that mode).
        self._entity_transformers: Dict[Tuple, List] = {}

        self._worklist: deque = deque()

    # ------------------------------------------------------------------
    # Fact insertion.
    # ------------------------------------------------------------------

    def _subsumed(self, entity: Tuple, candidate) -> bool:
        """Subsumption check for one entity tuple (only in ablation mode)."""
        if not self.eliminate_subsumed:
            return False
        from repro.core.transformer_strings import subsumes

        existing = self._entity_transformers.setdefault(entity, [])
        if any(subsumes(old, candidate) for old in existing):
            return True
        existing.append(candidate)
        return False

    _NAIVE_KEY = ("all",)

    def _index(self, index, entity, segment, payload) -> None:
        if self.naive_transformer_index:
            index.add((entity, self._NAIVE_KEY), payload)
            return
        for key in self.domain.insert_keys(segment):
            index.add((entity, key), payload)

    def _unindex(self, index, entity, segment, payload) -> None:
        """Undo :meth:`_index` — same bucket keys, payload discarded."""
        if self.naive_transformer_index:
            index.discard((entity, self._NAIVE_KEY), payload)
            return
        for key in self.domain.insert_keys(segment):
            index.discard((entity, key), payload)

    # -- support-instance recording (incremental mode only) ---------------

    def enable_support_tracking(self) -> None:
        """Record every derivation instance, not just the first.

        ``support[conclusion]`` is the set of ``(rule, premises)``
        instances observed deriving ``conclusion``; ``uses[premise]``
        is the reverse index of ``(rule, premises, conclusion)``
        triples the premise participates in.  Fact keys are the
        provenance keys, ``(relation, *attributes)``.  The incremental
        engine's DRed retraction consumes both maps; batch solves keep
        them ``None`` and pay one predictable-branch test per add.
        """
        self.support = {}
        self.uses = {}

    def _note_support(self, conclusion: Tuple, why) -> None:
        instance = (why[0], why[1])
        bucket = self.support.get(conclusion)
        if bucket is None:
            self.support[conclusion] = bucket = set()
        elif instance in bucket:
            return
        bucket.add(instance)
        entry = (why[0], why[1], conclusion)
        for premise in why[1]:
            uses_bucket = self.uses.get(premise)
            if uses_bucket is None:
                self.uses[premise] = uses_bucket = set()
            uses_bucket.add(entry)

    def _probe(self, index, entity, segment):
        if self.naive_transformer_index:
            yield from index.probe((entity, self._NAIVE_KEY))
            return
        for key in self.domain.probe_keys(segment):
            yield from index.probe((entity, key))

    def add_pts(self, var: str, heap: str, trans, why=None) -> None:
        fact = (var, heap, trans)
        if self.support is not None and why is not None:
            self._note_support(("pts",) + fact, why)
        if fact in self.pts:
            self.pts_rel.counters.dedup_hits += 1
            self.stats.facts_deduplicated += 1
            return
        if self._subsumed(("pts", var, heap), trans):
            self.stats.facts_subsumed += 1
            return
        self.pts_rel.add(fact)
        if self.track_provenance:
            self.provenance[("pts",) + fact] = why
        self._index(self.pts_index, var, self.domain.key_out(trans), (heap, trans))
        self.stats.facts_derived += 1
        self._worklist.append(("pts", fact))

    def add_hpts(self, base_heap: str, field: str, heap: str, trans,
                 why=None) -> None:
        fact = (base_heap, field, heap, trans)
        if self.support is not None and why is not None:
            self._note_support(("hpts",) + fact, why)
        if fact in self.hpts:
            self.hpts_rel.counters.dedup_hits += 1
            self.stats.facts_deduplicated += 1
            return
        if self._subsumed(("hpts", base_heap, field, heap), trans):
            self.stats.facts_subsumed += 1
            return
        self.hpts_rel.add(fact)
        if self.track_provenance:
            self.provenance[("hpts",) + fact] = why
        self._index(
            self.hpts_index, (base_heap, field),
            self.domain.key_out(trans), (heap, trans),
        )
        self.stats.facts_derived += 1
        self._worklist.append(("hpts", fact))

    def add_hload(self, base_heap: str, field: str, var: str, trans,
                  why=None) -> None:
        fact = (base_heap, field, var, trans)
        if self.support is not None and why is not None:
            self._note_support(("hload",) + fact, why)
        if not self.hload_rel.add(fact):
            self.stats.facts_deduplicated += 1
            return
        if self.track_provenance:
            self.provenance[("hload",) + fact] = why
        self._index(
            self.hload_index, (base_heap, field),
            self.domain.key_in(trans), (var, trans),
        )
        self.stats.facts_derived += 1
        self._worklist.append(("hload", fact))

    def add_call(self, inv: str, method: str, trans, why=None) -> None:
        fact = (inv, method, trans)
        if self.support is not None and why is not None:
            self._note_support(("call",) + fact, why)
        if fact in self.call:
            self.call_rel.counters.dedup_hits += 1
            self.stats.facts_deduplicated += 1
            return
        if self._subsumed(("call", inv, method), trans):
            self.stats.facts_subsumed += 1
            return
        self.call_rel.add(fact)
        if self.track_provenance:
            self.provenance[("call",) + fact] = why
        self._index(
            self.call_by_inv, inv, self.domain.key_in(trans), (method, trans)
        )
        self._index(
            self.call_by_callee, method,
            self.domain.key_out(trans), (inv, trans),
        )
        self.stats.facts_derived += 1
        self._worklist.append(("call", fact))

    def add_reach(self, method: str, context: Tuple[str, ...],
                  why=None) -> None:
        fact = (method, context)
        if self.support is not None and why is not None:
            self._note_support(("reach",) + fact, why)
        if not self.reach_rel.add(fact):
            self.stats.facts_deduplicated += 1
            return
        if self.track_provenance:
            self.provenance[("reach",) + fact] = why
        self.reach_by_method.add(method, context)
        self.stats.facts_derived += 1
        self._worklist.append(("reach", fact))

    def add_spts(self, field: str, heap: str, trans, why=None) -> None:
        fact = (field, heap, trans)
        if self.support is not None and why is not None:
            self._note_support(("spts",) + fact, why)
        if not self.spts_rel.add(fact):
            self.stats.facts_deduplicated += 1
            return
        if self.track_provenance:
            self.provenance[("spts",) + fact] = why
        self.spts_by_field.add(field, (heap, trans))
        self.stats.facts_derived += 1
        self._worklist.append(("spts", fact))

    def add_texc(self, method: str, heap: str, trans, why=None) -> None:
        fact = (method, heap, trans)
        if self.support is not None and why is not None:
            self._note_support(("texc",) + fact, why)
        if fact in self.texc:
            self.texc_rel.counters.dedup_hits += 1
            self.stats.facts_deduplicated += 1
            return
        if self._subsumed(("texc", method, heap), trans):
            self.stats.facts_subsumed += 1
            return
        self.texc_rel.add(fact)
        if self.track_provenance:
            self.provenance[("texc",) + fact] = why
        self._index(
            self.texc_index, method, self.domain.key_out(trans), (heap, trans)
        )
        self.stats.facts_derived += 1
        self._worklist.append(("texc", fact))

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    #: Process-wide count of :meth:`solve` invocations.  The analysis
    #: service's snapshot path promises to answer queries *without*
    #: solving; tests pin that promise by reading this counter around a
    #: snapshot-served session.
    invocations = 0

    def solve(self) -> "Solver":
        """Run to fixpoint; returns ``self`` for chaining."""
        Solver.invocations += 1
        start = time.perf_counter()
        if self.facts.main_method is None:
            raise ValueError("fact set has no main method")
        # [ENTRY] reach(main, [entry]).
        self.add_reach(
            self.facts.main_method, self.domain.entry_context(),
            why=("ENTRY", (), "program entry point"),
        )
        self._drain()
        self.stats.seconds = time.perf_counter() - start
        self.stats.relations = self.store.describe()
        return self

    def _drain(self) -> None:
        """Pop until the worklist empties, firing each fact's rules.

        Factored out of :meth:`solve` so the incremental engine can
        reuse the dispatch loop after seeding the worklist with delta
        consequences (see :mod:`repro.incremental.solver`).
        """
        while self._worklist:
            kind, fact = self._worklist.popleft()
            if kind == "pts":
                self._on_pts(*fact)
            elif kind == "hpts":
                self._on_hpts(*fact)
            elif kind == "hload":
                self._on_hload(*fact)
            elif kind == "call":
                self._on_call(*fact)
            elif kind == "reach":
                self._on_reach(*fact)
            elif kind == "spts":
                self._on_spts(*fact)
            else:
                self._on_texc(*fact)

    # ------------------------------------------------------------------
    # Retraction (incremental mode only).
    # ------------------------------------------------------------------

    def retract_derived(self, kind: str, fact: Tuple) -> bool:
        """Remove one derived fact from its relation and join buckets.

        The inverse of the corresponding ``add_*`` — the row leaves the
        :class:`Relation`, every :class:`KeyedIndex` bucket that
        :meth:`_index` filed it under, and the provenance map.  Support
        bookkeeping is *not* touched here; the DRed driver owns the
        support/uses maps.  True iff the fact was present.
        """
        domain = self.domain
        if kind == "pts":
            if not self.pts_rel.retract(fact):
                return False
            var, heap, trans = fact
            self._unindex(
                self.pts_index, var, domain.key_out(trans), (heap, trans)
            )
        elif kind == "hpts":
            if not self.hpts_rel.retract(fact):
                return False
            base_heap, field, heap, trans = fact
            self._unindex(
                self.hpts_index, (base_heap, field),
                domain.key_out(trans), (heap, trans),
            )
        elif kind == "hload":
            if not self.hload_rel.retract(fact):
                return False
            base_heap, field, var, trans = fact
            self._unindex(
                self.hload_index, (base_heap, field),
                domain.key_in(trans), (var, trans),
            )
        elif kind == "call":
            if not self.call_rel.retract(fact):
                return False
            inv, method, trans = fact
            self._unindex(
                self.call_by_inv, inv, domain.key_in(trans), (method, trans)
            )
            self._unindex(
                self.call_by_callee, method,
                domain.key_out(trans), (inv, trans),
            )
        elif kind == "reach":
            if not self.reach_rel.retract(fact):
                return False
            method, context = fact
            self.reach_by_method.discard(method, context)
        elif kind == "spts":
            if not self.spts_rel.retract(fact):
                return False
            field, heap, trans = fact
            self.spts_by_field.discard(field, (heap, trans))
        elif kind == "texc":
            if not self.texc_rel.retract(fact):
                return False
            method, heap, trans = fact
            self._unindex(
                self.texc_index, method, domain.key_out(trans), (heap, trans)
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown derived relation {kind!r}")
        if self.track_provenance:
            self.provenance.pop((kind,) + fact, None)
        return True

    # ------------------------------------------------------------------
    # Rule firings, grouped by triggering fact.
    # ------------------------------------------------------------------

    def _on_pts(self, var: str, heap: str, trans) -> None:
        domain = self.domain
        h, m = domain.h, domain.m
        out_segment = domain.key_out(trans)
        self.stats.rule_firings += 1

        # [ASSIGN] pts(Z,H,A), assign(Z,Y) => pts(Y,H,A).
        for dst in self.assign_by_src.get(var, ()):
            self.add_pts(
                dst, heap, trans,
                why=("ASSIGN", (("pts", var, heap, trans),),
                     f"{dst} = {var}"),
            )

        # [LOAD] pts(Y,G,A), load(Y,F,Z) => hload(G,F,Z,A).
        for (field, dst) in self.load_by_base.get(var, ()):
            self.add_hload(
                heap, field, dst, trans,
                why=("LOAD", (("pts", var, heap, trans),),
                     f"{dst} = {var}.{field}"),
            )

        # [STORE], this fact as the stored value pts(X,H,B):
        #   pts(X,H,B), store(X,F,Z), pts(Z,G,C) => hpts(G,F,H, B;inv(C)).
        # comp(B, inv(C)) joins B's out side with C's out side.
        for (field, base) in self.store_by_value.get(var, ()):
            for (base_heap, base_trans) in self._probe(
                self.pts_index, base, out_segment
            ):
                composed = domain.comp(trans, domain.inv(base_trans), h, h)
                if composed is not None:
                    self.add_hpts(
                        base_heap, field, heap, composed,
                        why=("STORE", (("pts", var, heap, trans),
                                       ("pts", base, base_heap, base_trans)),
                             f"{base}.{field} = {var}"),
                    )

        # [STORE], this fact as the base pointer pts(Z,G,C):
        for (value, field) in self.store_by_base.get(var, ()):
            for (value_heap, value_trans) in self._probe(
                self.pts_index, value, out_segment
            ):
                composed = domain.comp(value_trans, domain.inv(trans), h, h)
                if composed is not None:
                    self.add_hpts(
                        heap, field, value_heap, composed,
                        why=("STORE", (("pts", value, value_heap, value_trans),
                                       ("pts", var, heap, trans)),
                             f"{var}.{field} = {value}"),
                    )

        # [PARAM] pts(Z,H,B), actual(Z,I,O), call(I,P,C), formal(Y,P,O)
        #         => pts(Y,H, B;C): B's out side joins C's in side.
        for (inv, index) in self.actual_by_var.get(var, ()):
            for (callee, call_trans) in self._probe(
                self.call_by_inv, inv, out_segment
            ):
                for formal in self.formal_at.get((callee, index), ()):
                    composed = domain.comp(trans, call_trans, h, m)
                    if composed is not None:
                        self.add_pts(
                            formal, heap, composed,
                            why=("PARAM", (("pts", var, heap, trans),
                                           ("call", inv, callee, call_trans)),
                                 f"argument {var} passed at {inv}"),
                        )

        # [RET] pts(Z,H,B), return(Z,P), call(I,P,C), assign_return(I,Y)
        #       => pts(Y,H, B;inv(C)): B's out side joins C's out side.
        for callee in self.return_by_var.get(var, ()):
            for (inv, call_trans) in self._probe(
                self.call_by_callee, callee, out_segment
            ):
                for dst in self.assign_return_by_inv.get(inv, ()):
                    composed = domain.comp(trans, domain.inv(call_trans), h, m)
                    if composed is not None:
                        self.add_pts(
                            dst, heap, composed,
                            why=("RET", (("pts", var, heap, trans),
                                         ("call", inv, callee, call_trans)),
                                 f"{var} returned to {dst} at {inv}"),
                        )

        # [SSTORE] pts(X,H,B), static_store(X,F) => spts(F,H, toGlobal(B)).
        for field in self.static_store_by_var.get(var, ()):
            self.add_spts(
                field, heap, domain.to_global(trans),
                why=("SSTORE", (("pts", var, heap, trans),),
                     f"{field} = {var}"),
            )

        # [THROW] pts(Z,H,B), throw_var(Z,P) => texc(P,H,B).
        for method in self.throw_by_var.get(var, ()):
            self.add_texc(
                method, heap, trans,
                why=("THROW", (("pts", var, heap, trans),),
                     f"throw {var} in {method}"),
            )

        # [VIRT] virtual_invoke(I,Z,S), pts(Z,H,B), heap_type(H,T),
        #        implements(Q,T,S), this_var(Y,Q), C = merge(H,I,B)
        #        => pts(Y,H, B;C), call(I,Q,C).
        recv_sites = self.virtual_by_recv.get(var, ())
        if recv_sites:
            heap_class = self.heap_type_of.get(heap)
            if heap_class is not None:
                for (inv, signature) in recv_sites:
                    for callee in self.implements_at.get(
                        (heap_class, signature), ()
                    ):
                        edge = domain.merge(heap, inv, trans)
                        if edge is None:
                            continue
                        self.add_call(
                            inv, callee, edge,
                            why=("VIRT", (("pts", var, heap, trans),),
                                 f"{inv} dispatches to {callee} via {heap}"),
                        )
                        this_var = self.this_var_of.get(callee)
                        if this_var is not None:
                            composed = domain.comp(trans, edge, h, m)
                            if composed is not None:
                                # The call edge is a premise so the
                                # derivation names its dispatch site —
                                # two sites sharing a receiver must not
                                # collapse to one support instance.
                                self.add_pts(
                                    this_var, heap, composed,
                                    why=("VIRT",
                                         (("pts", var, heap, trans),
                                          ("call", inv, callee, edge)),
                                         f"receiver {var} bound to this"
                                         f" of {callee}"),
                                )

    def _on_hpts(self, base_heap: str, field: str, heap: str, trans) -> None:
        # [IND] hpts(G,F,H,B), hload(G,F,Y,C) => pts(Y,H, B;C).
        domain = self.domain
        self.stats.rule_firings += 1
        for (var, load_trans) in self._probe(
            self.hload_index, (base_heap, field), domain.key_out(trans)
        ):
            composed = domain.comp(trans, load_trans, domain.h, domain.m)
            if composed is not None:
                self.add_pts(
                    var, heap, composed,
                    why=("IND", (("hpts", base_heap, field, heap, trans),
                                 ("hload", base_heap, field, var, load_trans)),
                         f"{var} loads {base_heap}.{field}"),
                )

    def _on_hload(self, base_heap: str, field: str, var: str, trans) -> None:
        # [IND], triggered from the load side.
        domain = self.domain
        self.stats.rule_firings += 1
        for (heap, store_trans) in self._probe(
            self.hpts_index, (base_heap, field), domain.key_in(trans)
        ):
            composed = domain.comp(store_trans, trans, domain.h, domain.m)
            if composed is not None:
                self.add_pts(
                    var, heap, composed,
                    why=("IND", (("hpts", base_heap, field, heap, store_trans),
                                 ("hload", base_heap, field, var, trans)),
                         f"{var} loads {base_heap}.{field}"),
                )

    def _on_call(self, inv: str, callee: str, trans) -> None:
        domain = self.domain
        h, m = domain.h, domain.m
        self.stats.rule_firings += 1

        # [REACH] call(I,P,A) => reach(P, target(A)).
        self.add_reach(
            callee, domain.target(trans),
            why=("REACH", (("call", inv, callee, trans),),
                 f"{callee} called from {inv}"),
        )

        # [PARAM], triggered from the call edge: C's in side joins B's
        # out side.
        in_segment = domain.key_in(trans)
        for (arg, index) in self.actual_by_inv.get(inv, ()):
            for formal in self.formal_at.get((callee, index), ()):
                for (heap, arg_trans) in self._probe(
                    self.pts_index, arg, in_segment
                ):
                    composed = domain.comp(arg_trans, trans, h, m)
                    if composed is not None:
                        self.add_pts(
                            formal, heap, composed,
                            why=("PARAM", (("pts", arg, heap, arg_trans),
                                           ("call", inv, callee, trans)),
                                 f"argument {arg} passed at {inv}"),
                        )

        # [RET], triggered from the call edge: C's out side joins B's
        # out side (through inv).
        out_segment = domain.key_out(trans)
        dsts = self.assign_return_by_inv.get(inv, ())
        if dsts:
            for ret_var in self.returns_of_method.get(callee, ()):
                for (heap, ret_trans) in self._probe(
                    self.pts_index, ret_var, out_segment
                ):
                    composed = domain.comp(ret_trans, domain.inv(trans), h, m)
                    if composed is not None:
                        for dst in dsts:
                            self.add_pts(
                                dst, heap, composed,
                                why=("RET", (("pts", ret_var, heap, ret_trans),
                                             ("call", inv, callee, trans)),
                                     f"{ret_var} returned to {dst} at {inv}"),
                            )

        # [EPROP], triggered from the call edge: exceptions already known
        # to escape the callee propagate to this caller.
        caller = self.invocation_parent.get(inv)
        if caller is not None:
            for (heap, exc_trans) in self._probe(
                self.texc_index, callee, out_segment
            ):
                composed = domain.comp(exc_trans, domain.inv(trans), h, m)
                if composed is not None:
                    self.add_texc(
                        caller, heap, composed,
                        why=("EPROP", (("texc", callee, heap, exc_trans),
                                       ("call", inv, callee, trans)),
                             f"exception escapes {callee} into {caller}"),
                    )

    def _on_reach(self, method: str, context: Tuple[str, ...]) -> None:
        domain = self.domain
        self.stats.rule_firings += 1

        # [NEW] assign_new(H,Y,P), reach(P,M) => pts(Y,H, record(M)).
        for (heap, var) in self.assign_new_by_method.get(method, ()):
            self.add_pts(
                var, heap, domain.record(context),
                why=("NEW", (("reach", method, context),),
                     f"{var} = new … at {heap}"),
            )

        # [STATIC] static_invoke(I,Q,P), reach(P,B) => call(I,Q, merge_s(I,B)).
        for (inv, callee) in self.static_invokes_in.get(method, ()):
            self.add_call(
                inv, callee, domain.merge_s(inv, context),
                why=("STATIC", (("reach", method, context),),
                     f"static call {inv} in {method}"),
            )

        # [SLOAD] static_load(F,Y,P), reach(P,M), spts(F,H,C)
        #         => pts(Y,H, fromGlobal(C,M)).
        for (field, var) in self.static_loads_in.get(method, ()):
            for (heap, trans) in self.spts_by_field.probe(field):
                self.add_pts(
                    var, heap, domain.from_global(trans, context),
                    why=("SLOAD", (("spts", field, heap, trans),
                                   ("reach", method, context)),
                         f"{var} = {field}"),
                )

    def _on_spts(self, field: str, heap: str, trans) -> None:
        # [SLOAD], triggered from the static-field side.
        domain = self.domain
        self.stats.rule_firings += 1
        for (var, method) in self.static_load_by_field.get(field, ()):
            for context in self.reach_by_method.probe(method):
                self.add_pts(
                    var, heap, domain.from_global(trans, context),
                    why=("SLOAD", (("spts", field, heap, trans),
                                   ("reach", method, context)),
                         f"{var} = {field}"),
                )

    def _on_texc(self, method: str, heap: str, trans) -> None:
        domain = self.domain
        self.stats.rule_firings += 1

        # [ECATCH] texc(P,H,A), catch_var(Y,P) => pts(Y,H,A).
        for var in self.catch_vars_of.get(method, ()):
            self.add_pts(
                var, heap, trans,
                why=("ECATCH", (("texc", method, heap, trans),),
                     f"caught by {var} in {method}"),
            )

        # [EPROP] texc(Q,H,B), call(I,Q,C) => texc(parent(I),H, B;inv(C)).
        out_segment = domain.key_out(trans)
        for (inv, call_trans) in self._probe(
            self.call_by_callee, method, out_segment
        ):
            caller = self.invocation_parent.get(inv)
            if caller is None:
                continue
            composed = domain.comp(
                trans, domain.inv(call_trans), domain.h, domain.m
            )
            if composed is not None:
                self.add_texc(
                    caller, heap, composed,
                    why=("EPROP", (("texc", method, heap, trans),
                                   ("call", inv, method, call_trans)),
                         f"exception escapes {method} into {caller}"),
                )

    # ------------------------------------------------------------------
    # Result accessors.
    # ------------------------------------------------------------------

    def relation_sizes(self) -> Dict[str, int]:
        """Sizes of the context-sensitive derived relations (Figure 6
        counts the first three; ``spts``/``texc`` are the extensions)."""
        return {
            "pts": len(self.pts),
            "hpts": len(self.hpts),
            "call": len(self.call),
            "hload": len(self.hload),
            "reach": len(self.reach),
            "spts": len(self.spts),
            "texc": len(self.texc),
        }

    def store_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-relation store counters (rows, inserts, dedup, probes,
        index builds/sizes) — see :meth:`repro.store.TupleStore.describe`."""
        return self.store.describe()
