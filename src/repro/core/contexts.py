"""Calling contexts and elemental context values.

The paper's domain of *method contexts* is ``Ctxts = Ctxt* ∪ {err}``:
finite strings over a set ``Ctxt`` of elemental contexts, plus a
distinguished error context that marks infeasible data-flow paths.  The
meaning of an elemental context depends on the flavour of context
sensitivity in force:

* call-site sensitivity — ``Ctxt`` is the set of invocation sites;
* object sensitivity   — ``Ctxt`` is the set of heap allocation sites;
* type sensitivity     — ``Ctxt`` is the set of class types.

This module fixes the concrete representation used throughout the
library: an elemental context is an interned ``str``, a method context is
a ``tuple`` of elemental contexts with the *top-most* (most recent)
element first, and the error context is the singleton :data:`ERR`.

The special element :data:`ENTRY` is the paper's ``entry`` context for
program entry points; ``reach(main, (ENTRY,))`` seeds every analysis.
"""

from __future__ import annotations

from typing import Tuple

#: Type alias for an elemental context (a call site, allocation site or
#: class type, depending on the flavour of sensitivity).
CtxtElem = str

#: Type alias for a method context: a string over ``Ctxt`` with the
#: top-most element first, e.g. ``("c1", "c4", "<entry>")``.
MethodContext = Tuple[CtxtElem, ...]


class _ErrContext:
    """The error context ``err`` marking infeasible paths.

    A singleton; all primitive transformations map ``err`` to ``err``.
    """

    _instance = None

    def __new__(cls) -> "_ErrContext":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "err"

    def __reduce__(self):
        return (_ErrContext, ())


#: The unique error context.
ERR = _ErrContext()

#: The distinguished elemental context for program entry points.
ENTRY: CtxtElem = "<entry>"

#: The initial method context of ``main`` (and other entry points).
ENTRY_CONTEXT: MethodContext = (ENTRY,)

#: The empty method context.
EMPTY_CONTEXT: MethodContext = ()


def prefix(s: MethodContext, i: int) -> MethodContext:
    """Return ``prefix_i(s)``: the prefix of ``s`` of length ``min(|s|, i)``.

    Matches the paper's Section 2.3 string helper.  ``i`` may be zero (the
    empty prefix); negative values are treated as zero, which lets callers
    write ``prefix(m, k - 1)`` without special-casing ``k == 0``.
    """
    if i <= 0:
        return ()
    return s[:i]


def drop(s: MethodContext, i: int) -> MethodContext:
    """Return ``drop_i(s)``: the suffix of ``s`` of length ``|s| - min(|s|, i)``."""
    if i <= 0:
        return s
    return s[i:]


def is_prefix(p: MethodContext, s: MethodContext) -> bool:
    """True iff ``p`` is a prefix of ``s``."""
    return len(p) <= len(s) and s[: len(p)] == p


def context_universe(elements, max_length: int):
    """Enumerate every method context over ``elements`` up to ``max_length``.

    Used by the ground-truth semantics (:mod:`repro.core.transformations`)
    and by property-based tests to build small finite universes of
    contexts on which abstract and concrete operations can be compared
    exhaustively.

    The universe is returned as a list ordered by length then
    lexicographically, beginning with the empty context.
    """
    elements = sorted(set(elements))
    universe = [()]
    frontier = [()]
    for _ in range(max_length):
        frontier = [(e,) + ctx for ctx in frontier for e in elements]
        universe.extend(frontier)
    return universe
