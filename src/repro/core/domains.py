"""Abstraction domains binding an algebra to a flavour and levels.

A :class:`AbstractionDomain` packages every non-logical symbol of the
parameterized deduction rules (paper Figure 3) for one point in the
instantiation space: *abstraction* × *flavour* × *(m, h)*.  The solver
(:mod:`repro.core.solver`) is written once against this interface; the
Section 7 compiler consumes the same information symbolically.

The ``comp`` operation takes the truncation bounds ``(i, j)`` of the
target domain ``CtxtT_{i,j}`` because, as Figure 3 notes, ``comp`` is
polymorphic: the same rule set composes ``CtxtT_{h,m} × CtxtT_{m,m} →
CtxtT_{h,m}`` in PARAM but ``CtxtT_{h,m} × CtxtT_{m,h} → CtxtT_{h,h}``
in STORE.  Context strings never need the bounds (their components stay
within bounds by construction); transformer strings truncate.

``comp_out_key``/``comp_in_key`` expose an optional equality key for the
two sides of a composition so the solver can index facts by it: for
context strings the middle string must match exactly, which restores the
paper's three-attribute joins.  Transformer strings return ``None`` —
their composition is not an equality join (that is the whole point of
the paper's Section 7 specialization, reproduced in
:mod:`repro.compile`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache
from typing import Hashable, Optional, Tuple

from repro.core import context_strings as cs
from repro.core import sensitivity as sens
from repro.core import transformer_strings as ts
from repro.core.contexts import ENTRY_CONTEXT, MethodContext, prefix
from repro.core.sensitivity import ClassOf, Flavour


class AbstractionDomain(ABC):
    """All non-logical symbols of Figure 3 for one instantiation."""

    #: Short name of the abstraction ("context-string" / "transformer-string").
    abstraction: str

    def __init__(self, flavour: Flavour, m: int, h: int,
                 class_of: Optional[ClassOf] = None):
        sens.validate_levels(flavour, m, h)
        if flavour is Flavour.TYPE and class_of is None:
            raise ValueError("type sensitivity requires a class_of function")
        self.flavour = flavour
        self.m = m
        self.h = h
        self.class_of = class_of

    # -- context transformation algebra ---------------------------------

    @abstractmethod
    def comp(self, x, y, i: int, j: int):
        """``comp(x, y)`` into ``CtxtT_{i,j}``, or ``None`` for ``⊥``."""

    @abstractmethod
    def inv(self, x):
        """The semigroup inverse of ``x``."""

    @abstractmethod
    def target(self, x) -> MethodContext:
        """The callee method-context (prefix) of a call-edge transformation."""

    # -- flavour symbols ---------------------------------------------------

    @abstractmethod
    def record(self, m_ctx: MethodContext):
        """Context transformation for a heap allocation in context ``m_ctx``."""

    @abstractmethod
    def merge(self, heap: str, inv: str, receiver):
        """Call-edge transformation for a virtual invocation."""

    @abstractmethod
    def merge_s(self, inv: str, m_ctx: MethodContext):
        """Call-edge transformation for a static invocation."""

    # -- static fields (paper extension; see factgen docstring) ----------

    @abstractmethod
    def to_global(self, t):
        """Project a ``pts`` transformation for storage in a static
        field: the destination (method-context) side is dropped, since
        static fields are global — the result lives in ``CtxtT_{h,0}``."""

    @abstractmethod
    def from_global(self, t, m_ctx: MethodContext):
        """Re-target a static-field transformation at a load occurring
        in method context ``m_ctx`` — the result lives in
        ``CtxtT_{h,m}``."""

    # -- solver support -----------------------------------------------------

    def entry_context(self) -> MethodContext:
        """The truncated method context seeding ``reach(main, ·)``."""
        return prefix(ENTRY_CONTEXT, self.m)

    # -- join indexing (the Section 7 technique, in worklist form) --------
    #
    # ``comp(x, y)`` can only succeed when the *out* side of ``x`` is
    # compatible with the *in* side of ``y``.  Each domain exposes the
    # two sides as tuples plus the bucket keys under which a fact must
    # be stored (``insert_keys``) and probed (``probe_keys``) so that a
    # probe enumerates exactly the compatible partners:
    #
    # * context strings — compatibility is *equality* of the shared
    #   middle context: one bucket per context (Doop's indexing);
    # * transformer strings — compatibility is *prefix-compatibility*
    #   of the cancelling push/pop segments: a fact with segment ``s``
    #   lives in the length-graded buckets ``("ge", k, s[:k])`` for all
    #   ``k`` plus ``("eq", |s|, s)``; a probe for segment ``p`` reads
    #   ``("ge", |p|, p)`` (partners with longer-or-equal segments) and
    #   ``("eq", j, p[:j])`` for ``j < |p|`` (strictly shorter
    #   partners).  The buckets are disjoint, so every compatible
    #   partner is visited exactly once and no incompatible one ever —
    #   the same effect as the paper's configuration-specialized
    #   relations, realized as a tuple-at-a-time index.

    @abstractmethod
    def key_out(self, t) -> Tuple:
        """The out-side segment of ``t`` (its pushes / destination)."""

    @abstractmethod
    def key_in(self, t) -> Tuple:
        """The in-side segment of ``t`` (its pops / source)."""

    def insert_keys(self, segment: Tuple) -> Tuple[Hashable, ...]:
        """Bucket keys a fact with this segment is stored under."""
        return (segment,)

    def probe_keys(self, segment: Tuple) -> Tuple[Hashable, ...]:
        """Bucket keys enumerating all facts compatible with ``segment``."""
        return (segment,)

    def describe(self) -> str:
        """Human-readable instantiation tag, e.g. ``2-object+H/transformer``."""
        heap_tag = f"+{self.h}H" if self.h else ""
        return f"{self.m}-{self.flavour.value}{heap_tag}/{self.abstraction}"


class ContextStringDomain(AbstractionDomain):
    """The traditional pairs-of-k-limited-strings abstraction."""

    abstraction = "context-string"

    def comp(self, x, y, i: int, j: int):
        return cs.compose(x, y)

    def inv(self, x):
        return cs.inverse(x)

    def target(self, x) -> MethodContext:
        return cs.target(x)

    def record(self, m_ctx: MethodContext):
        return sens.record_cs(m_ctx, self.h)

    def merge(self, heap: str, inv: str, receiver):
        return sens.merge_cs(
            self.flavour, heap, inv, receiver, self.m, self.class_of
        )

    def merge_s(self, inv: str, m_ctx: MethodContext):
        return sens.merge_s_cs(self.flavour, inv, m_ctx, self.m)

    def to_global(self, t):
        return (t[0], ())

    def from_global(self, t, m_ctx: MethodContext):
        return (t[0], m_ctx)

    def key_out(self, t) -> Tuple:
        return t[1]

    def key_in(self, t) -> Tuple:
        return t[0]


class TransformerStringDomain(AbstractionDomain):
    """The paper's transformer-string abstraction."""

    abstraction = "transformer-string"

    def comp(self, x, y, i: int, j: int):
        return ts.compose_trunc(x, y, i, j)

    def inv(self, x):
        return ts.inverse(x)

    def target(self, x) -> MethodContext:
        return x.pushes

    def record(self, m_ctx: MethodContext):
        return sens.record_ts(m_ctx, self.h)

    def merge(self, heap: str, inv: str, receiver):
        return sens.merge_ts(
            self.flavour, heap, inv, receiver, self.m, self.class_of
        )

    def merge_s(self, inv: str, m_ctx: MethodContext):
        return sens.merge_s_ts(self.flavour, inv, m_ctx, self.m)

    def to_global(self, t):
        from repro.core.transformer_strings import trunc

        return trunc(t, self.h, 0)

    def from_global(self, t, m_ctx: MethodContext):
        # A static field is readable from every context: the wildcard
        # expresses that in one fact (vs one fact per reachable context
        # for context strings) — the abstraction's compactness extends
        # naturally to the global scope.
        from repro.core.transformer_strings import TransformerString

        return TransformerString(t.pops, True, ())

    def key_out(self, t) -> Tuple:
        return t.pushes

    def key_in(self, t) -> Tuple:
        return t.pops

    def insert_keys(self, segment: Tuple) -> Tuple[Hashable, ...]:
        return _transformer_insert_keys(segment)

    def probe_keys(self, segment: Tuple) -> Tuple[Hashable, ...]:
        return _transformer_probe_keys(segment)


@lru_cache(maxsize=None)
def _transformer_insert_keys(segment: Tuple) -> Tuple[Hashable, ...]:
    length = len(segment)
    keys = tuple(("ge", k, segment[:k]) for k in range(length + 1))
    return keys + (("eq", length, segment),)


@lru_cache(maxsize=None)
def _transformer_probe_keys(segment: Tuple) -> Tuple[Hashable, ...]:
    length = len(segment)
    return (("ge", length, segment),) + tuple(
        ("eq", j, segment[:j]) for j in range(length)
    )


def make_domain(
    abstraction: str,
    flavour: Flavour,
    m: int,
    h: int,
    class_of: Optional[ClassOf] = None,
) -> AbstractionDomain:
    """Factory over the instantiation space.

    ``abstraction`` is ``"context-string"`` or ``"transformer-string"``
    (the prefixes ``"cs"``/``"ts"`` are accepted as shorthand).
    """
    key = abstraction.lower()
    if key in ("context-string", "cs", "context_strings", "context-strings"):
        return ContextStringDomain(flavour, m, h, class_of)
    if key in ("transformer-string", "ts", "transformer_strings",
               "transformer-strings"):
        return TransformerStringDomain(flavour, m, h, class_of)
    raise ValueError(f"unknown abstraction {abstraction!r}")
