"""Transformer strings: the paper's abstraction of context transformations.

A *transformer string* (paper Section 4.2) is a word over the alphabet
``T_W = {â, ǎ | a ∈ Ctxt} ∪ {*}`` together with the bottom element
``⊥``.  The rewriting function ``match`` reduces any word to one of three
canonical shapes (Lemma 4.1):

* ``Ǎ·B̂``      — pops the string ``A`` off the front of a context and
  then pushes the string ``B`` (an injective partial map);
* ``Ǎ·*·B̂``    — tests that the input has prefix ``A`` (non-emptiness of
  the popped set) and maps to *all* contexts with prefix ``B``;
* ``⊥``         — the empty transformation.

We represent a canonical transformer string as an immutable triple
``(pops, wildcard, pushes)`` where ``pops`` and ``pushes`` are context
strings (tuples, top-most element first).  Note the orientation
convention, which follows the paper's Section 2.3 notation: for a context
string ``M = m1·…·mn``,

* ``M̌ = m̌1·…·m̌n`` pops ``m1`` first (so it strips the prefix ``M``), and
* ``M̂ = m̂n·…·m̂1`` pushes ``mn`` first (so it *prefixes* ``M``).

Storing ``pushes`` as the context string that ends up prefixed (rather
than as the letter sequence) makes ``semantics`` direct: with no
wildcard, ``(A, B)`` maps a context ``A·C`` to ``B·C``; with a wildcard
it maps any set containing some ``A·C`` to the cone of all ``B·C'``.

The domain ``CtxtT^t_{i,j}`` of paper Section 4.2 limits ``|pops| ≤ i``
and ``|pushes| ≤ j``; :func:`trunc` maps an arbitrary canonical string
into the domain, introducing a wildcard when truncation loses letters
(Lemma 4.2: truncation only ever *adds* behaviours, never removes them).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Optional, Tuple

from repro.core.contexts import MethodContext
from repro.core.transformations import (
    ContextSet,
    Letter,
    WILDCARD,
    pop_letter,
    push_letter,
)


class TransformerString:
    """A canonical transformer string ``Ǎ·w·B̂`` (never ``⊥``).

    Instances are immutable, hashable, and interned per-field as plain
    tuples.  ``⊥`` is represented *outside* this class by ``None`` in
    composition results: ``compose`` returns ``None`` when the match
    fails, mirroring the paper's ``comp`` predicate which derives no fact
    for ``⊥``.
    """

    __slots__ = ("pops", "wildcard", "pushes", "_hash")

    def __init__(
        self,
        pops: Tuple[str, ...] = (),
        wildcard: bool = False,
        pushes: Tuple[str, ...] = (),
    ):
        self.pops = tuple(pops)
        self.wildcard = bool(wildcard)
        self.pushes = tuple(pushes)
        self._hash = hash((self.pops, self.wildcard, self.pushes))

    # -- constructors ---------------------------------------------------

    @staticmethod
    def identity() -> "TransformerString":
        """The identity transformation ``ε``."""
        return _IDENTITY

    @staticmethod
    def entry(context: MethodContext) -> "TransformerString":
        """``M̂``: prefix the context string ``M``."""
        return TransformerString(pushes=tuple(context))

    @staticmethod
    def exit(context: MethodContext) -> "TransformerString":
        """``M̌``: strip the prefix ``M``."""
        return TransformerString(pops=tuple(context))

    @staticmethod
    def guard(context: MethodContext) -> "TransformerString":
        """``M̌·M̂``: the idempotent that keeps only contexts with prefix ``M``."""
        return TransformerString(pops=tuple(context), pushes=tuple(context))

    @staticmethod
    def top() -> "TransformerString":
        """``*``: any non-empty set of contexts maps to all contexts."""
        return _TOP

    # -- structure -------------------------------------------------------

    @property
    def configuration(self) -> str:
        """The Section 7 configuration tag ``x*w?e*`` of this string.

        ``x`` letters count pops (exits), ``w`` marks a wildcard, and
        ``e`` letters count pushes (entries).  Example: ``Ǎ·*·b̂`` with
        ``|A| = 2`` has configuration ``"xxwe"``.
        """
        return (
            "x" * len(self.pops)
            + ("w" if self.wildcard else "")
            + "e" * len(self.pushes)
        )

    def letters(self) -> List[Letter]:
        """The word over ``T_W`` this canonical string denotes.

        Pops emit ``pops`` in order (``m̌1`` first strips the first
        element); pushes emit ``pushes`` reversed (``m̂n`` first so that
        ``pushes[0]`` ends up on top).
        """
        word: List[Letter] = [pop_letter(a) for a in self.pops]
        if self.wildcard:
            word.append(WILDCARD)
        word.extend(push_letter(a) for a in reversed(self.pushes))
        return word

    def semantics(self, contexts: ContextSet) -> ContextSet:
        """Apply the denoted transformation to a set of contexts (oracle)."""
        from repro.core.transformations import apply_word

        return apply_word(self.letters(), contexts)

    def is_identity(self) -> bool:
        """True iff this is ``ε``."""
        return not self.pops and not self.wildcard and not self.pushes

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransformerString):
            return NotImplemented
        return (
            self.pops == other.pops
            and self.wildcard == other.wildcard
            and self.pushes == other.pushes
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [f"{a}ˇ" for a in self.pops]
        if self.wildcard:
            parts.append("*")
        parts.extend(f"{a}ˆ" for a in reversed(self.pushes))
        return "⟨" + "·".join(parts) + "⟩" if parts else "⟨ε⟩"


_IDENTITY = TransformerString()
_TOP = TransformerString(wildcard=True)


@lru_cache(maxsize=None)
def compose(
    x: TransformerString, y: TransformerString
) -> Optional[TransformerString]:
    """``match(X·Y)``: compose two canonical strings, or ``None`` for ``⊥``.

    The concatenated word is ``X.popš · w1 · X.pusheŝ · Y.popš · w2 ·
    Y.pusheŝ``; the only non-canonical juxtaposition is ``X``'s pushes
    against ``Y``'s pops, which cancel pairwise from the top of the stack
    (``X.pushes[0]`` is the top-most pushed element and ``Y.pops[0]`` is
    the first element popped).  A disagreement anywhere in the overlap is
    the paper's ``match(…·â·b̌·…) = ⊥`` case.  Leftover pops extend
    ``X.pops`` unless ``X`` carries a wildcard (``match(…·*·ǎ·…) =
    match(…·*·…)``); leftover pushes survive in front of ``Y.pushes``
    unless ``Y`` carries a wildcard (``match(…·â·*·…) = match(…·*·…)``).
    """
    b, c = x.pushes, y.pops
    overlap = min(len(b), len(c))
    if b[:overlap] != c[:overlap]:
        return None

    pops = x.pops
    wildcard = x.wildcard or y.wildcard
    if len(c) > len(b):
        # Y pops more than X pushed: the excess pops reach X's input —
        # unless X's wildcard absorbs them.
        if not x.wildcard:
            pops = x.pops + c[len(b):]
        pushes = y.pushes
    else:
        # X pushed at least as much as Y pops: the surviving pushes sit
        # beneath Y's own pushes — unless Y's wildcard absorbs them.
        if y.wildcard:
            pushes = y.pushes
        else:
            pushes = y.pushes + b[overlap:]
    return TransformerString(pops, wildcard, pushes)


@lru_cache(maxsize=None)
def inverse(t: TransformerString) -> TransformerString:
    """The semigroup inverse: ``inv(Ǎ·w·B̂) = B̌·w·Â``.

    Satisfies ``t ; inv(t) ; t = t`` and ``inv(t) ; t ; inv(t) = inv(t)``
    (the inverse-semigroup laws of Section 3).
    """
    return TransformerString(t.pushes, t.wildcard, t.pops)


@lru_cache(maxsize=None)
def trunc(t: TransformerString, i: int, j: int) -> TransformerString:
    """``trunc_{i,j}``: force the string into ``CtxtT^t_{i,j}``.

    If both sides already fit, the string is unchanged; otherwise both
    sides are cut to their first ``i`` (resp. ``j``) elements and a
    wildcard is inserted to conservatively stand for the lost suffix
    (Lemma 4.2).
    """
    if len(t.pops) <= i and len(t.pushes) <= j:
        return t
    return TransformerString(t.pops[:i], True, t.pushes[:j])


def compose_trunc(
    x: TransformerString, y: TransformerString, i: int, j: int
) -> Optional[TransformerString]:
    """The paper's ``comp`` macro: ``trunc_{i,j}(match(X·Y))`` or ``None``."""
    composed = compose(x, y)
    if composed is None:
        return None
    return trunc(composed, i, j)


def in_domain(t: TransformerString, i: int, j: int) -> bool:
    """True iff ``t ∈ CtxtT^t_{i,j}``."""
    return len(t.pops) <= i and len(t.pushes) <= j


def match_word(letters: Iterable[Letter]) -> Optional[TransformerString]:
    """Canonicalize an arbitrary word over ``T_W`` (the full ``match``).

    Returns the canonical :class:`TransformerString` or ``None`` for
    ``⊥``.  This is the reference implementation of the paper's
    rewriting system, used by tests to confirm that :func:`compose`
    agrees with letter-by-letter reduction and that all application
    orders of the rewrite rules converge (confluence).
    """
    result: Optional[TransformerString] = TransformerString.identity()
    for letter in letters:
        if result is None:
            return None
        if letter[0] == "push":
            step = TransformerString(pushes=(letter[1],))
        elif letter[0] == "pop":
            step = TransformerString(pops=(letter[1],))
        elif letter == WILDCARD:
            step = TransformerString.top()
        else:
            raise ValueError(f"unknown letter {letter!r}")
        result = compose(result, step)
    return result


def concretize(
    t: TransformerString,
    elements: Iterable[str],
    source_length: int,
    dest_length: int,
) -> frozenset:
    """The context-string pairs a transformer string stands for.

    Enumerates every pair ``(prefix_i(M), prefix_j(M'))`` with
    ``M' ∈ t({M})`` over the universe of contexts built from
    ``elements`` — the paper's observation that "the traditional
    representation of context information is the explicit enumeration of
    input-output mapping pairs of these transformations", made
    executable.  ``source_length``/``dest_length`` are the truncation
    lengths ``i``/``j`` of the context-string domain being compared
    against.

    Exponential in the universe; intended for tests and exposition
    (e.g. Figure 5: concretizing ``ε`` at ``i = j = 1`` over
    ``{m1, m2}`` yields exactly ``{(m1, m1), (m2, m2)}``).
    """
    from repro.core.contexts import context_universe

    # Inputs must be long enough that truncation to `source_length` is
    # surjective onto the pair domain; popping consumes up to len(pops).
    depth = max(source_length, dest_length) + len(t.pops) + len(t.pushes)
    pairs = set()
    for context in context_universe(elements, depth):
        from repro.core.transformations import ContextSet

        image = t.semantics(ContextSet.of(context))
        source = context[:source_length]
        for out in image.concrete:
            pairs.add((source, out[:dest_length]))
        for prefix in image.prefixes:
            # A cone's truncations: every extension of the prefix, cut.
            if len(prefix) >= dest_length:
                pairs.add((source, prefix[:dest_length]))
            else:
                for extension in context_universe(
                    elements, dest_length - len(prefix)
                ):
                    pairs.add(
                        (source, (prefix + extension)[:dest_length])
                    )
    return frozenset(pairs)


def subsumes(general: TransformerString, specific: TransformerString) -> bool:
    """True iff every behaviour of ``specific`` is implied by ``general``.

    Paper Section 8 calls ``specific`` a *subsumed fact* when both are
    attached to the same points-to tuple.  Two cases:

    * ``Ǎ·*·B̂`` subsumes ``Ǎ'·w·B̂'`` whenever ``A`` is a prefix of
      ``A'`` and ``B`` is a prefix of ``B'`` (its cone-shaped image
      covers anything the more specific string can produce);
    * a wildcard-free ``Ǎ·B̂`` (a partial bijection ``A·C ↦ B·C``)
      subsumes exactly its guarded restrictions ``(A·E)ˇ·(B·E)ˆ`` — the
      paper's Figure 7 example, where ``ε`` subsumes ``Č·Ĉ``.
    """
    if general == specific:
        return True
    if not general.wildcard:
        if specific.wildcard:
            return False
        la, lb = len(general.pops), len(general.pushes)
        if (
            specific.pops[:la] != general.pops
            or specific.pushes[:lb] != general.pushes
        ):
            return False
        # The remainders must be one and the same extension E.
        return specific.pops[la:] == specific.pushes[lb:]
    if len(general.pops) > len(specific.pops):
        return False
    if len(general.pushes) > len(specific.pushes):
        return False
    return (
        specific.pops[: len(general.pops)] == general.pops
        and specific.pushes[: len(general.pushes)] == general.pushes
    )


#: Convenient aliases matching the paper's symbols.
EPSILON = TransformerString.identity()
STAR = TransformerString.top()
