"""Context strings: the traditional abstraction (paper Section 4.1).

A pair ``(A, B)`` of k-limited context strings represents the
transformation over ``P(Ctxt*)`` that maps any set intersecting the cone
``{A·C}`` to the full cone ``{B·C}``, and everything else to the empty
set.  The domain ``CtxtT^c_{i,j}`` bounds ``|A| ≤ i`` and ``|B| ≤ j``.

Composition is the exact-middle join the Doop family of analyses
performs implicitly: ``(U, V) ; (V, W) = (U, W)``, with any other
combination composing to the empty transformation.  (That rule is sound
only because the analysis always composes pairs whose middle strings are
drawn from the same truncation length — a property the deduction rules of
paper Figure 3 maintain by construction; see the ``comp`` domain
annotations there.)

A pair ``(A, B)`` denotes exactly the same transformation as the
wildcard transformer string ``Ǎ·*·B̂`` — the correspondence exploited by
the paper's soundness argument, and checked by our property tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.contexts import MethodContext, prefix
from repro.core.transformations import ContextSet
from repro.core.transformer_strings import TransformerString

#: A context-string pair ``(A, B)``: source (e.g. heap) context string
#: first, destination (e.g. method) context string second.
ContextStringPair = Tuple[MethodContext, MethodContext]


def make_pair(source: MethodContext, dest: MethodContext) -> ContextStringPair:
    """Build a pair, normalizing the components to plain tuples."""
    return (tuple(source), tuple(dest))


def compose(
    x: ContextStringPair, y: ContextStringPair
) -> Optional[ContextStringPair]:
    """``comp^c``: ``(U, V) ; (V, W) = (U, W)``; ``None`` otherwise."""
    if x[1] != y[0]:
        return None
    return (x[0], y[1])


def inverse(x: ContextStringPair) -> ContextStringPair:
    """``inv^c((U, V)) = (V, U)``."""
    return (x[1], x[0])


def target(x: ContextStringPair) -> MethodContext:
    """``target^c((U, V)) = V``: the destination (callee) context."""
    return x[1]


def in_domain(x: ContextStringPair, i: int, j: int) -> bool:
    """True iff ``x ∈ CtxtT^c_{i,j}``."""
    return len(x[0]) <= i and len(x[1]) <= j


def truncate(x: ContextStringPair, i: int, j: int) -> ContextStringPair:
    """Truncate both components into ``CtxtT^c_{i,j}``."""
    return (prefix(x[0], i), prefix(x[1], j))


def to_transformer_string(x: ContextStringPair) -> TransformerString:
    """The transformer string ``Ǎ·*·B̂`` denoting the same transformation."""
    return TransformerString(pops=x[0], wildcard=True, pushes=x[1])


def semantics(x: ContextStringPair, contexts: ContextSet) -> ContextSet:
    """Apply the denoted transformation to a set of contexts (oracle)."""
    source, dest = x
    if _meets_cone(contexts, source):
        return ContextSet.cone(dest)
    return ContextSet.empty()


def _meets_cone(contexts: ContextSet, cone_prefix: MethodContext) -> bool:
    """True iff ``contexts`` intersects the cone of ``cone_prefix``."""
    popped = contexts
    for a in cone_prefix:
        popped = popped.apply_pop(a)
    return not popped.is_empty()
