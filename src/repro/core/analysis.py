"""The top-level pointer-analysis API.

Typical use::

    from repro import PointerAnalysis, AnalysisConfig, Flavour

    config = AnalysisConfig(
        abstraction="transformer-string", flavour=Flavour.OBJECT, m=2, h=1
    )
    result = PointerAnalysis(source_text, config).run()
    result.points_to("T.main/x2")     # {"h1"}
    result.call_graph()
    result.relation_sizes()

The analysis accepts Java-subset source text, a parsed
:class:`repro.frontend.ir.Program`, or a pre-generated
:class:`repro.frontend.factgen.FactSet` (e.g. read from a Doop-style
facts directory via :func:`repro.frontend.doopfacts.read_facts`).
"""

from __future__ import annotations

from typing import Union

from repro.core.config import AnalysisConfig
from repro.core.domains import make_domain
from repro.core.results import AnalysisResult
from repro.core.solver import Solver
from repro.frontend.factgen import FactSet, generate_facts
from repro.frontend.ir import Program


class PointerAnalysis:
    """Context-sensitive pointer analysis per the parameterized rules."""

    def __init__(
        self,
        program: Union[str, Program, FactSet],
        config: AnalysisConfig = AnalysisConfig(),
    ):
        self.config = config
        self.facts = _to_facts(program)
        self.domain = make_domain(
            config.abstraction,
            config.flavour,
            config.m,
            config.h,
            class_of=self.facts.class_of_heap,
        )

    def run(self) -> AnalysisResult:
        """Evaluate the rules to fixpoint and return the result."""
        solver = Solver(
            self.facts,
            self.domain,
            eliminate_subsumed=self.config.eliminate_subsumed,
            naive_transformer_index=self.config.naive_transformer_index,
            track_provenance=self.config.track_provenance,
        )
        solver.solve()
        return AnalysisResult(self.config, solver)


def analyze(
    program: Union[str, Program, FactSet],
    config: AnalysisConfig = AnalysisConfig(),
) -> AnalysisResult:
    """One-shot convenience wrapper around :class:`PointerAnalysis`."""
    return PointerAnalysis(program, config).run()


def _to_facts(program: Union[str, Program, FactSet]) -> FactSet:
    if isinstance(program, FactSet):
        return program
    if isinstance(program, Program):
        return generate_facts(program)
    if isinstance(program, str):
        from repro.frontend.parser import parse_program

        return generate_facts(parse_program(program))
    raise TypeError(
        f"expected source text, Program or FactSet, got {type(program).__name__}"
    )
