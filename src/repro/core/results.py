"""Analysis results: projections, call graphs, statistics, subsumption.

An :class:`AnalysisResult` wraps the derived relations of one solver run
and provides the views the paper's evaluation uses:

* the *context-insensitive projections* of ``pts``, ``hpts`` and
  ``call`` (Section 6: the context attribute existentially projected
  out), which are how the two abstractions' precision is compared;
* the context-sensitive relation sizes (the quantities of Figure 6);
* subsuming-fact detection for transformer strings (Section 8 /
  Figure 7).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.config import AnalysisConfig
from repro.core.solver import Solver


class AnalysisResult:
    """The outcome of one pointer-analysis run."""

    def __init__(self, config: AnalysisConfig, solver: Solver):
        self.config = config
        self._solver = solver
        self.stats = solver.stats

    # -- raw context-sensitive relations ---------------------------------

    @property
    def pts(self) -> Set[Tuple[str, str, object]]:
        """``pts(Y, H, A)`` facts."""
        return self._solver.pts

    @property
    def hpts(self) -> Set[Tuple[str, str, str, object]]:
        """``hpts(G, F, H, A)`` facts."""
        return self._solver.hpts

    @property
    def call(self) -> Set[Tuple[str, str, object]]:
        """``call(I, P, C)`` facts."""
        return self._solver.call

    @property
    def reach(self) -> Set[Tuple[str, Tuple[str, ...]]]:
        """``reach(P, M)`` facts."""
        return self._solver.reach

    @property
    def spts(self) -> Set[Tuple[str, str, object]]:
        """``spts(F, H, A)`` facts (static fields; paper extension)."""
        return self._solver.spts

    @property
    def texc(self) -> Set[Tuple[str, str, object]]:
        """``texc(P, H, A)`` facts (exceptions escaping ``P``)."""
        return self._solver.texc

    # -- context-insensitive projections (paper Section 6) -----------------

    def points_to(self, var: str) -> FrozenSet[str]:
        """The set of allocation sites ``var`` may point to."""
        return frozenset(h for (y, h, _) in self.pts if y == var)

    def points_to_with_contexts(self, var: str) -> FrozenSet[Tuple[str, object]]:
        """``(H, A)`` pairs for ``var``: pointee site and transformation."""
        return frozenset((h, a) for (y, h, a) in self.pts if y == var)

    def pts_ci(self) -> FrozenSet[Tuple[str, str]]:
        """The context-insensitive points-to relation."""
        return frozenset((y, h) for (y, h, _) in self.pts)

    def hpts_ci(self) -> FrozenSet[Tuple[str, str, str]]:
        """The context-insensitive heap-points-to relation."""
        return frozenset((g, f, h) for (g, f, h, _) in self.hpts)

    def call_graph(self) -> FrozenSet[Tuple[str, str]]:
        """The context-insensitive call graph: ``(invocation, method)``."""
        return frozenset((i, p) for (i, p, _) in self.call)

    def reachable_methods(self) -> FrozenSet[str]:
        """Methods reachable from the entry point."""
        return frozenset(p for (p, _) in self.reach)

    def may_alias(self, var_a: str, var_b: str) -> bool:
        """True iff the two variables may point to a common site."""
        return bool(self.points_to(var_a) & self.points_to(var_b))

    def static_field_points_to(self, field: str) -> FrozenSet[str]:
        """Allocation sites a static field (``"Cls.f"``) may hold."""
        return frozenset(h for (f, h, _) in self.spts if f == field)

    def thrown_exceptions(self, method: str) -> FrozenSet[str]:
        """Allocation sites of exceptions that may escape ``method``."""
        return frozenset(h for (p, h, _) in self.texc if p == method)

    def field_may_alias(self, heap_a: str, heap_b: str, field: str) -> bool:
        """True iff ``heap_a.field`` and ``heap_b.field`` may hold a
        common object — the Figure 1 heap-context test for ``a.f``/``b.f``."""
        targets_a = {h for (g, f, h) in self.hpts_ci() if g == heap_a and f == field}
        targets_b = {h for (g, f, h) in self.hpts_ci() if g == heap_b and f == field}
        return bool(targets_a & targets_b)

    # -- sizes and statistics (Figure 6 quantities) ---------------------------

    def relation_sizes(self) -> Dict[str, int]:
        """Context-sensitive fact counts of ``pts``, ``hpts``, ``call``."""
        return {
            "pts": len(self.pts),
            "hpts": len(self.hpts),
            "call": len(self.call),
        }

    def total_facts(self) -> int:
        """The "Total" row of Figure 6: |pts| + |hpts| + |call|."""
        return sum(self.relation_sizes().values())

    def ci_sizes(self) -> Dict[str, int]:
        """Context-insensitive fact counts (precision comparison)."""
        return {
            "pts": len(self.pts_ci()),
            "hpts": len(self.hpts_ci()),
            "call": len(self.call_graph()),
        }

    @property
    def seconds(self) -> float:
        """Wall-clock analysis time."""
        return self.stats.seconds

    def store_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-relation store counters (rows, inserts, dedup hits,
        probes, index builds/sizes) from the solver's tuple store —
        see :meth:`repro.store.TupleStore.describe`."""
        return self._solver.store_stats()

    # -- subsumption analysis (paper Section 8 / Figure 7) ----------------------

    def subsumed_pts_facts(self) -> List[Tuple[str, str, object, object]]:
        """Pairs of pts facts where one transformer subsumes the other.

        Returns ``(var, heap, general, specific)`` tuples; only
        meaningful (and non-empty) under the transformer-string
        abstraction.  Paper Section 8 attributes the smaller-than-
        fact-count time reductions to such facts.
        """
        if self.config.abstraction != "transformer-string":
            return []
        from repro.core.transformer_strings import subsumes

        by_entity = defaultdict(list)
        for (var, heap, trans) in self.pts:
            by_entity[(var, heap)].append(trans)
        found = []
        for (var, heap), transformers in by_entity.items():
            for general in transformers:
                for specific in transformers:
                    if general is not specific and subsumes(general, specific):
                        found.append((var, heap, general, specific))
        return found

    # -- comparing analyses -------------------------------------------------

    def compare_to(self, other: "AnalysisResult") -> "ResultComparison":
        """Precision/size comparison against another run on the same
        program (e.g. two configurations, or the two abstractions)."""
        return ResultComparison(self, other)

    # -- provenance (requires AnalysisConfig.track_provenance) --------------

    def derivation(self, fact_key: Tuple) -> Optional[Tuple]:
        """The recorded ``(rule, premises, note)`` for one fact key.

        Fact keys are ``("pts", var, heap, trans)``,
        ``("call", inv, method, trans)``, ``("reach", method, ctx)``,
        ``("hpts", g, f, h, trans)``, ``("hload", g, f, y, trans)``,
        ``("spts", f, h, trans)`` or ``("texc", p, h, trans)``.
        Returns ``None`` for input facts and the entry seed.
        """
        if not self.config.track_provenance:
            raise ValueError(
                "run with AnalysisConfig(track_provenance=True) to record"
                " derivations"
            )
        return self._solver.provenance.get(fact_key)

    def explain(self, fact_key: Tuple, max_depth: int = 12) -> str:
        """A rendered derivation tree for ``fact_key``.

        Shows, for each fact, the rule that first derived it and its
        premises, recursively (each fact expanded once; repeats are
        marked ``[see above]``).
        """
        lines: List[str] = []
        expanded = set()

        def render(key: Tuple, depth: int) -> None:
            indent = "  " * depth
            label = self._format_fact(key)
            why = self._solver.provenance.get(key) if (
                self.config.track_provenance
            ) else None
            if why is None:
                lines.append(f"{indent}{label}")
                return
            rule, premises, note = why
            if key in expanded:
                lines.append(f"{indent}{label}   [{rule}; see above]")
                return
            expanded.add(key)
            lines.append(f"{indent}{label}   [{rule}: {note}]")
            if depth < max_depth:
                for premise in premises:
                    render(premise, depth + 1)
            elif premises:
                lines.append(f"{indent}  …")

        if not self.config.track_provenance:
            raise ValueError(
                "run with AnalysisConfig(track_provenance=True) to record"
                " derivations"
            )
        render(tuple(fact_key), 0)
        return "\n".join(lines)

    def explain_points_to(self, var: str, heap: str, max_depth: int = 12) -> str:
        """Why may ``var`` point to ``heap``?  One tree per context fact."""
        keys = [
            ("pts", y, h, a) for (y, h, a) in self.pts
            if y == var and h == heap
        ]
        if not keys:
            return f"{var} does not point to {heap}"
        return "\n".join(self.explain(key, max_depth) for key in sorted(keys, key=str))

    @staticmethod
    def _format_fact(key: Tuple) -> str:
        kind, *rest = key
        if kind == "reach":
            method, ctx = rest
            return f"reach({method}, {'·'.join(ctx) or 'ε'})"
        return f"{kind}({', '.join(str(r) for r in rest)})"

    def subsumption_ratio(self) -> float:
        """Fraction of pts facts subsumed by a sibling fact."""
        if not self.pts:
            return 0.0
        subsumed = {(v, h, s) for (v, h, _, s) in self.subsumed_pts_facts()}
        return len(subsumed) / len(self.pts)


class ResultComparison:
    """Precision and size relationship between two analysis runs."""

    def __init__(self, left: AnalysisResult, right: AnalysisResult):
        self.left = left
        self.right = right

    def left_only_pts(self) -> FrozenSet[Tuple[str, str]]:
        """CI points-to facts the left analysis derives and the right
        refutes (i.e. where the right is more precise)."""
        return self.left.pts_ci() - self.right.pts_ci()

    def right_only_pts(self) -> FrozenSet[Tuple[str, str]]:
        return self.right.pts_ci() - self.left.pts_ci()

    def equally_precise(self) -> bool:
        """Identical CI projections (Theorem 6.2's observable)."""
        return (
            self.left.pts_ci() == self.right.pts_ci()
            and self.left.hpts_ci() == self.right.hpts_ci()
            and self.left.call_graph() == self.right.call_graph()
        )

    def precision_relation(self) -> str:
        """One of ``"equal"``, ``"left-more-precise"``,
        ``"right-more-precise"``, ``"incomparable"``."""
        if self.equally_precise():
            return "equal"
        left_extra = bool(self.left_only_pts()) or (
            self.left.call_graph() > self.right.call_graph()
        )
        right_extra = bool(self.right_only_pts()) or (
            self.right.call_graph() > self.left.call_graph()
        )
        if left_extra and not right_extra:
            return "right-more-precise"
        if right_extra and not left_extra:
            return "left-more-precise"
        return "incomparable"

    def fact_reduction(self) -> float:
        """Fractional decrease of total context-sensitive facts, right
        relative to left (the Figure 6 quantity)."""
        left_total = self.left.total_facts()
        if left_total == 0:
            return 0.0
        return 1.0 - self.right.total_facts() / left_total

    def summary(self) -> str:
        return (
            f"precision: {self.precision_relation()};"
            f" facts {self.left.total_facts()} ->"
            f" {self.right.total_facts()}"
            f" ({self.fact_reduction() * 100:+.1f}% reduction);"
            f" time {self.left.seconds * 1000:.1f}ms ->"
            f" {self.right.seconds * 1000:.1f}ms"
        )
