"""Demand-driven context-sensitive pointer analysis.

The paper's concluding future-work direction: "There may be synergy
between demand-driven workloads and the transformer string abstraction's
ability to represent local pointer information of a method without
enumerating all reachable contexts."  This module implements that
workload shape for the worklist solver (the magic-sets route over the
compiled programs lives in :mod:`repro.datalog.magic`): a points-to
query for one variable computes a *demand slice* — the transitive
closure, over the deduction rules read right-to-left, of the program
entities that could contribute to the answer — and evaluates the
ordinary solver on the sliced fact set.

Because the slice is closed under every rule's premises (with
class-hierarchy over-approximation where the precise call graph is not
yet known), the sliced run derives **exactly** the full analysis's facts
for every demanded variable (tested against exhaustive runs on the
whole corpus, both abstractions).  The locality the paper anticipates is
then measurable: :meth:`DemandPointerAnalysis.coverage` reports the
fraction of input facts a query actually touched.

The slice grows monotonically across queries on the same instance, so
repeated queries share work (after a query for every variable the slice
is the whole program and the result coincides with the exhaustive run).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.config import AnalysisConfig
from repro.core.domains import make_domain
from repro.core.results import AnalysisResult
from repro.core.solver import Solver
from repro.frontend.factgen import FactSet


class DemandPointerAnalysis:
    """Answers per-variable points-to queries by demand slicing."""

    def __init__(self, facts: FactSet, config: AnalysisConfig = AnalysisConfig()):
        self.facts = facts
        self.config = config
        self._build_maps()
        # Demanded entity sets, monotone across queries.
        self.vars: Set[str] = set()
        self.fields: Set[str] = set()
        self.static_fields: Set[str] = set()
        self.invocations: Set[str] = set()
        self.reach_methods: Set[str] = set()
        self.exc_methods: Set[str] = set()
        self._result: Optional[AnalysisResult] = None
        # Uniform demand-engine statistics (the analysis service and the
        # query-latency benchmark read these): queries answered, sliced
        # solver runs actually performed.
        self.query_count = 0
        self.solve_count = 0

    # ------------------------------------------------------------------
    # Program maps used by the closure.
    # ------------------------------------------------------------------

    def _build_maps(self) -> None:
        facts = self.facts
        self.assign_by_dst = _multimap((d, s) for (s, d) in facts.assign)
        self.load_by_dst = _multimap(
            (z, (y, f)) for (y, f, z) in facts.load
        )
        self.stores_by_field = _multimap(
            (f, (x, z)) for (x, f, z) in facts.store
        )
        self.static_load_by_dst = _multimap(
            (y, (f, p)) for (f, y, p) in facts.static_load
        )
        self.static_stores_by_field = _multimap(
            (f, x) for (x, f) in facts.static_store
        )
        self.formal_info = {
            y: (p, o) for (y, p, o) in facts.formal
        }
        self.this_info = {y: q for (y, q) in facts.this_var}
        self.assign_return_by_dst = _multimap(
            (y, i) for (i, y) in facts.assign_return
        )
        self.catch_info = _multimap(facts.catch_var)
        self.new_methods_by_var = _multimap(
            (y, p) for (h, y, p) in facts.assign_new
        )
        self.signature_of_method: Dict[str, str] = {}
        self.sites_by_signature = _multimap(
            (s, i) for (i, _z, s) in facts.virtual_invoke
        )
        for (q, _t, s) in facts.implements:
            self.signature_of_method[q] = s
        self.virtual_site_info = {
            i: (z, s) for (i, z, s) in facts.virtual_invoke
        }
        self.static_sites_by_callee = _multimap(
            (q, i) for (i, q, _p) in facts.static_invoke
        )
        self.static_site_caller = {
            i: p for (i, _q, p) in facts.static_invoke
        }
        self.actuals_by_inv = _multimap(
            (i, (z, o)) for (z, i, o) in facts.actual
        )
        self.returns_of_method = _multimap(
            (p, z) for (z, p) in facts.return_var
        )
        self.cha_targets = _multimap(())
        implementations = _multimap(
            (s, q) for (q, _t, s) in facts.implements
        )
        for (i, (_z, s)) in self.virtual_site_info.items():
            self.cha_targets[i] = list(dict.fromkeys(implementations.get(s, [])))
        for (i, q, _p) in facts.static_invoke:
            self.cha_targets[i] = [q]
        self.throws_in = _multimap(
            (p, x) for (x, p) in facts.throw_var
        )
        self.invocations_in = _multimap(
            (p, i) for (i, p) in facts.invocation_parent.items()
        )

    # ------------------------------------------------------------------
    # Demand closure.
    # ------------------------------------------------------------------

    def _close(self, worklist: List[Tuple[str, str]]) -> None:
        """Close the slice under the rules from the seeded worklist."""
        while worklist:
            kind, entity = worklist.pop()
            if kind == "var":
                self._demand_var(entity, worklist)
            elif kind == "field":
                self._demand_field(entity, worklist)
            elif kind == "sfield":
                self._demand_static_field(entity, worklist)
            elif kind == "inv":
                self._demand_invocation(entity, worklist)
            elif kind == "reach":
                self._demand_reach(entity, worklist)
            else:
                self._demand_exceptions(entity, worklist)
        self._result = None  # the slice changed; re-solve lazily

    def _demand(self, var: str) -> bool:
        """Grow the slice to cover ``var``; True if anything changed."""
        if var in self.vars:
            return False
        self._close([("var", var)])
        return True

    def _demand_var(self, var: str, worklist) -> None:
        if var in self.vars:
            return
        self.vars.add(var)
        # ASSIGN sources.
        for src in self.assign_by_dst.get(var, ()):
            worklist.append(("var", src))
        # NEW: the allocation requires reachability of its method.
        for method in self.new_methods_by_var.get(var, ()):
            worklist.append(("reach", method))
        # LOAD: the base and the field contents.
        for (base, field) in self.load_by_dst.get(var, ()):
            worklist.append(("var", base))
            worklist.append(("field", field))
        # SLOAD.
        for (field, method) in self.static_load_by_dst.get(var, ()):
            worklist.append(("sfield", field))
            worklist.append(("reach", method))
        # PARAM: var is a formal — demand every potential call site's
        # edge and the matching actuals.
        if var in self.formal_info:
            method, index = self.formal_info[var]
            for site in self._candidate_sites(method):
                worklist.append(("inv", site))
                for (arg, arg_index) in self.actuals_by_inv.get(site, ()):
                    if arg_index == index:
                        worklist.append(("var", arg))
        # VIRT this: demand the candidate sites (whose receivers the
        # invocation demand pulls in).
        if var in self.this_info:
            method = self.this_info[var]
            for site in self._candidate_sites(method):
                worklist.append(("inv", site))
        # RET: var receives a return value.
        for site in self.assign_return_by_dst.get(var, ()):
            worklist.append(("inv", site))
            for callee in self.cha_targets.get(site, ()):
                for ret_var in self.returns_of_method.get(callee, ()):
                    worklist.append(("var", ret_var))
        # ECATCH.
        for method in self.catch_info.get(var, ()):
            worklist.append(("exc", method))

    def _candidate_sites(self, method: str) -> List[str]:
        sites = list(self.static_sites_by_callee.get(method, ()))
        signature = self.signature_of_method.get(method)
        if signature is not None:
            for site in self.sites_by_signature.get(signature, ()):
                if method in self.cha_targets.get(site, ()):
                    sites.append(site)
        return sites

    def _demand_field(self, field: str, worklist) -> None:
        if field in self.fields:
            return
        self.fields.add(field)
        for (value, base) in self.stores_by_field.get(field, ()):
            worklist.append(("var", value))
            worklist.append(("var", base))

    def _demand_static_field(self, field: str, worklist) -> None:
        if field in self.static_fields:
            return
        self.static_fields.add(field)
        for value in self.static_stores_by_field.get(field, ()):
            worklist.append(("var", value))

    def _demand_invocation(self, site: str, worklist) -> None:
        if site in self.invocations:
            return
        self.invocations.add(site)
        info = self.virtual_site_info.get(site)
        if info is not None:
            receiver, _signature = info
            worklist.append(("var", receiver))
        caller = self.static_site_caller.get(site)
        if caller is not None:
            worklist.append(("reach", caller))

    def _demand_reach(self, method: str, worklist) -> None:
        if method in self.reach_methods:
            return
        self.reach_methods.add(method)
        if method == self.facts.main_method:
            return
        for site in self._candidate_sites(method):
            worklist.append(("inv", site))

    def _demand_exceptions(self, method: str, worklist) -> None:
        if method in self.exc_methods:
            return
        self.exc_methods.add(method)
        for thrown in self.throws_in.get(method, ()):
            worklist.append(("var", thrown))
        for site in self.invocations_in.get(method, ()):
            worklist.append(("inv", site))
            for callee in self.cha_targets.get(site, ()):
                worklist.append(("exc", callee))

    # ------------------------------------------------------------------
    # Sliced evaluation.
    # ------------------------------------------------------------------

    def _sliced_facts(self) -> FactSet:
        facts = self.facts
        out = FactSet()
        out.assign = {
            (s, d) for (s, d) in facts.assign if d in self.vars
        }
        out.assign_new = {
            row for row in facts.assign_new if row[1] in self.vars
        }
        out.load = {row for row in facts.load if row[2] in self.vars}
        out.store = {row for row in facts.store if row[1] in self.fields}
        out.static_load = {
            row for row in facts.static_load if row[1] in self.vars
        }
        out.static_store = {
            row for row in facts.static_store if row[1] in self.static_fields
        }
        out.actual = {
            (z, i, o)
            for (z, i, o) in facts.actual
            if i in self.invocations and z in self.vars
        }
        out.formal = {row for row in facts.formal if row[0] in self.vars}
        out.assign_return = {
            row for row in facts.assign_return if row[1] in self.vars
        }
        out.return_var = {
            row for row in facts.return_var if row[0] in self.vars
        }
        out.virtual_invoke = {
            row for row in facts.virtual_invoke if row[0] in self.invocations
        }
        out.static_invoke = {
            row for row in facts.static_invoke if row[0] in self.invocations
        }
        out.this_var = {row for row in facts.this_var if row[0] in self.vars}
        out.throw_var = {
            row for row in facts.throw_var if row[1] in self.exc_methods
        }
        out.catch_var = {row for row in facts.catch_var if row[0] in self.vars}
        out.heap_type = set(facts.heap_type)
        out.implements = set(facts.implements)
        out.class_of = dict(facts.class_of)
        out.invocation_parent = dict(facts.invocation_parent)
        out.main_method = facts.main_method
        return out

    def _solve(self) -> AnalysisResult:
        if self._result is None:
            domain = make_domain(
                self.config.abstraction,
                self.config.flavour,
                self.config.m,
                self.config.h,
                class_of=self.facts.class_of_heap,
            )
            solver = Solver(self._sliced_facts(), domain)
            solver.solve()
            self.solve_count += 1
            self._result = AnalysisResult(self.config, solver)
        return self._result

    # ------------------------------------------------------------------
    # Public queries.
    # ------------------------------------------------------------------

    def points_to(self, var: str) -> FrozenSet[str]:
        """The context-insensitive points-to set of ``var``."""
        self.query_count += 1
        self._demand(var)
        return self._solve().points_to(var)

    def points_to_with_contexts(self, var: str):
        """The context-sensitive facts ``(H, A)`` for ``var``."""
        self.query_count += 1
        self._demand(var)
        return self._solve().points_to_with_contexts(var)

    def may_alias(self, var_a: str, var_b: str) -> bool:
        """True iff the two variables may point to a common site."""
        self.query_count += 1
        self._demand(var_a)
        self._demand(var_b)
        return bool(
            self._solve().points_to(var_a) & self._solve().points_to(var_b)
        )

    def callees(self, site: str) -> FrozenSet[str]:
        """Methods the invocation ``site`` may dispatch to.

        Demands the site (its receiver variable and the caller's
        reachability), so the sliced run derives exactly the exhaustive
        analysis's ``call`` edges for it.
        """
        self.query_count += 1
        if site not in self.invocations:
            self._close([("inv", site)])
        return frozenset(
            method
            for (inv, method) in self._solve().call_graph()
            if inv == site
        )

    def fields_of(self, heap: str) -> Dict[str, FrozenSet[str]]:
        """``{field: pointee sites}`` for objects allocated at ``heap``.

        Heap contents flow in through *any* store whose base may alias
        ``heap``, so the slice must cover every field's writers; the
        field demand pulls in each store's base and value variables.
        """
        self.query_count += 1
        all_fields = {f for (_x, f, _z) in self.facts.store}
        missing = all_fields - self.fields
        if missing:
            self._close([("field", field) for field in missing])
        out: Dict[str, Set[str]] = defaultdict(set)
        for (base, field, pointee) in self._solve().hpts_ci():
            if base == heap:
                out[field].add(pointee)
        return {field: frozenset(sites) for field, sites in out.items()}

    def thrown_exceptions(self, method: str) -> FrozenSet[str]:
        """Exception sites escaping ``method``."""
        self.query_count += 1
        if method not in self.exc_methods:
            self._close([("exc", method)])
        return self._solve().thrown_exceptions(method)

    def field_may_alias(self, heap_a: str, heap_b: str, field: str) -> bool:
        """May ``heap_a.field`` and ``heap_b.field`` hold a common
        object?  (The Figure 1 heap-context test, demand-driven.)

        Like :meth:`fields_of`, heap contents flow in through any store
        of ``field``, so the slice must cover the field's writers (and,
        through them, the base/value variables).
        """
        self.query_count += 1
        if field not in self.fields:
            self._close([("field", field)])
        return self._solve().field_may_alias(heap_a, heap_b, field)

    def demand_all(self) -> None:
        """Grow the slice to the whole program (checker workloads need
        every derived relation, not one variable's slice).

        Seeds every entity kind; the closure then covers every input
        fact, so :meth:`_solve` coincides with the exhaustive run while
        still flowing through the demand engine's statistics.
        """
        facts = self.facts
        seeds: List[Tuple[str, str]] = []
        seeds.extend(("var", v) for v in _all_variables(facts))
        seeds.extend(
            ("field", f) for (_x, f, _z) in facts.store
        )
        seeds.extend(
            ("sfield", f) for (_x, f) in facts.static_store
        )
        seeds.extend(("inv", i) for i in facts.invocation_parent)
        methods = set(facts.invocation_parent.values())
        methods.update(p for (_x, p) in facts.throw_var)
        if facts.main_method:
            methods.add(facts.main_method)
        seeds.extend(("reach", p) for p in sorted(methods))
        seeds.extend(("exc", p) for p in sorted(methods))
        self._close(seeds)

    def coverage(self) -> Tuple[int, int]:
        """``(input facts in the slice, total input facts)``."""
        sliced = sum(self._sliced_facts().counts().values())
        total = sum(self.facts.counts().values())
        return (sliced, total)

    def stats(self) -> Dict[str, int]:
        """Uniform demand-engine counters (service / bench surface)."""
        sliced, total = self.coverage()
        return {
            "queries": self.query_count,
            "solves": self.solve_count,
            "sliced_facts": sliced,
            "total_facts": total,
        }


def _all_variables(facts: FactSet) -> List[str]:
    # Local import: repro.service imports this module's class; reuse
    # its canonical variable-universe helper without a cycle at import
    # time.
    from repro.service.service import variables_of

    return sorted(variables_of(facts))


def _multimap(pairs):
    mapping: Dict = defaultdict(list)
    for key, value in pairs:
        mapping[key].append(value)
    return mapping
