"""Ground-truth semantics of context transformations (paper Section 3).

The paper defines primitive transformations over ``Ctxts = Ctxt* ∪ {err}``:

* ``â`` (*entry*, push): ``â(M) = a·M`` and ``â(err) = err``;
* ``ǎ`` (*exit*, pop): ``ǎ(a·M) = M`` and ``ǎ(M) = err`` otherwise;

and, for the abstractions of Section 4, lifts them to transformations
over *sets* of method contexts (``err`` disappears: it contributes the
empty set) together with a wildcard ``*`` that maps any non-empty set of
contexts to the set of *all* contexts.

This module implements those semantics directly and naively, to serve as
the *oracle* against which the efficient symbolic representations
(:mod:`repro.core.transformer_strings` and
:mod:`repro.core.context_strings`) are validated by unit and
property-based tests.  Nothing in the analysis hot path imports it.

Because ``Ctxt*`` is infinite, the set ``*`` produces cannot be
enumerated.  Sets of contexts are therefore represented as either a
``frozenset`` of concrete contexts or the symbolic token :data:`ALL`
standing for all of ``Ctxt*``.  Every primitive transformation is exact
on this representation:

* ``push(a)(ALL)`` is the set of all contexts beginning with ``a`` —
  which is *not* ``ALL``, so a push is tracked through ``ALL`` by keeping
  a pending prefix (see :class:`ContextSet`);
* ``pop(a)(ALL) = ALL`` (every context is ``a·M`` for some ``M``);
* ``*`` of anything non-empty is ``ALL``.

Composition uses the paper's postfix convention: ``f ; g = g ∘ f``
(first apply ``f``, then ``g``), and a word ``a1·…·an`` denotes
``a1 ; … ; an``.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Sequence, Tuple, Union

from repro.core.contexts import ERR, MethodContext, _ErrContext

Context = Union[MethodContext, _ErrContext]

#: A transformation over single contexts (the un-lifted Section 3 view).
ContextFn = Callable[[Context], Context]


# ---------------------------------------------------------------------------
# Single-context primitives (Section 3).
# ---------------------------------------------------------------------------

def push(a: str) -> ContextFn:
    """The primitive entry transformation ``â``: prefix ``a``."""

    def fn(m: Context) -> Context:
        if m is ERR:
            return ERR
        return (a,) + m

    fn.__name__ = f"push[{a}]"
    return fn


def pop(a: str) -> ContextFn:
    """The primitive exit transformation ``ǎ``: strip a leading ``a``."""

    def fn(m: Context) -> Context:
        if m is ERR or not m or m[0] != a:
            return ERR
        return m[1:]

    fn.__name__ = f"pop[{a}]"
    return fn


def identity() -> ContextFn:
    """The identity transformation ``ε``."""

    def fn(m: Context) -> Context:
        return m

    fn.__name__ = "identity"
    return fn


def compose(*fns: ContextFn) -> ContextFn:
    """Postfix composition: ``compose(f, g)(m) = g(f(m))``."""

    def fn(m: Context) -> Context:
        for f in fns:
            m = f(m)
        return m

    return fn


def apply_word_to_context(word: Sequence[ContextFn], m: Context) -> Context:
    """Apply a word of single-context primitives left-to-right."""
    for f in word:
        m = f(m)
    return m


# ---------------------------------------------------------------------------
# Set semantics with a symbolic ALL (Section 4 lifting).
# ---------------------------------------------------------------------------

#: Letters of the lifted alphabet ``T_W``: ``("push", a)``, ``("pop", a)``
#: or ``("*",)``.
Letter = Tuple[str, ...]

WILDCARD: Letter = ("*",)


def push_letter(a: str) -> Letter:
    """The alphabet letter for ``â``."""
    return ("push", a)


def pop_letter(a: str) -> Letter:
    """The alphabet letter for ``ǎ``."""
    return ("pop", a)


class ContextSet:
    """A set of method contexts, possibly infinite.

    The representation is a pair ``(prefixes, concrete)``:

    * ``prefixes`` — a frozenset of context strings ``P`` such that every
      context with prefix ``P`` belongs to the set (``()`` ∈ prefixes
      means the set is all of ``Ctxt*``);
    * ``concrete`` — a frozenset of individual contexts in the set.

    This is closed under all three primitive letters, which is exactly
    what is needed to evaluate transformer words precisely:

    * ``push a`` prepends ``a`` to every prefix and every concrete context;
    * ``pop a`` filters/strips by leading ``a`` — and a prefix ``()``
      (everything) survives a pop unchanged, since every context is
      ``a·M`` for some ``M``;
    * ``*`` maps any non-empty set to everything.
    """

    __slots__ = ("prefixes", "concrete")

    def __init__(
        self,
        concrete: Iterable[MethodContext] = (),
        prefixes: Iterable[MethodContext] = (),
    ):
        self.prefixes: FrozenSet[MethodContext] = frozenset(prefixes)
        self.concrete: FrozenSet[MethodContext] = frozenset(concrete)

    # -- constructors -------------------------------------------------

    @staticmethod
    def of(*contexts: MethodContext) -> "ContextSet":
        """The finite set of the given contexts."""
        return ContextSet(concrete=contexts)

    @staticmethod
    def everything() -> "ContextSet":
        """All of ``Ctxt*``."""
        return ContextSet(prefixes=((),))

    @staticmethod
    def empty() -> "ContextSet":
        """The empty set of contexts."""
        return ContextSet()

    @staticmethod
    def cone(prefix: MethodContext) -> "ContextSet":
        """All contexts that have ``prefix`` as a prefix."""
        return ContextSet(prefixes=(prefix,))

    # -- queries -------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the set contains no context."""
        return not self.prefixes and not self.concrete

    def __contains__(self, ctx: MethodContext) -> bool:
        if ctx in self.concrete:
            return True
        return any(ctx[: len(p)] == p for p in self.prefixes)

    def restrict(self, max_length: int) -> FrozenSet[MethodContext]:
        """Not meaningful in general; only used for display in tests."""
        return frozenset(c for c in self.concrete if len(c) <= max_length)

    # -- primitive letters ----------------------------------------------

    def apply_push(self, a: str) -> "ContextSet":
        """Image under ``â``."""
        return ContextSet(
            concrete=((a,) + c for c in self.concrete),
            prefixes=((a,) + p for p in self.prefixes),
        )

    def apply_pop(self, a: str) -> "ContextSet":
        """Image under ``ǎ``."""
        concrete = set(c[1:] for c in self.concrete if c and c[0] == a)
        prefixes = set()
        for p in self.prefixes:
            if not p:
                # Everything with prefix () contains a·M for every M.
                prefixes.add(())
            elif p[0] == a:
                prefixes.add(p[1:])
        return ContextSet(concrete=concrete, prefixes=prefixes)

    def apply_wildcard(self) -> "ContextSet":
        """Image under ``*``."""
        if self.is_empty():
            return ContextSet.empty()
        return ContextSet.everything()

    def apply_letter(self, letter: Letter) -> "ContextSet":
        """Image under a single alphabet letter."""
        if letter[0] == "push":
            return self.apply_push(letter[1])
        if letter[0] == "pop":
            return self.apply_pop(letter[1])
        if letter == WILDCARD:
            return self.apply_wildcard()
        raise ValueError(f"unknown letter {letter!r}")

    # -- normalization & comparison --------------------------------------

    def _normalized(self) -> Tuple[FrozenSet[MethodContext], FrozenSet[MethodContext]]:
        """Drop concrete contexts and prefixes subsumed by shorter prefixes."""
        minimal = set()
        for p in sorted(self.prefixes, key=len):
            if not any(p[: len(q)] == q for q in minimal):
                minimal.add(p)
        concrete = frozenset(
            c for c in self.concrete
            if not any(c[: len(q)] == q for q in minimal)
        )
        return frozenset(minimal), concrete

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextSet):
            return NotImplemented
        return self._normalized() == other._normalized()

    def __hash__(self) -> int:
        return hash(self._normalized())

    def __repr__(self) -> str:
        prefixes, concrete = self._normalized()
        parts = [f"{'·'.join(p) or 'ε'}…" for p in sorted(prefixes)]
        parts += ["·".join(c) or "ε" for c in sorted(concrete)]
        return "{" + ", ".join(parts) + "}"


def apply_word(word: Sequence[Letter], contexts: ContextSet) -> ContextSet:
    """Apply a word over ``T_W`` left-to-right (postfix composition)."""
    for letter in word:
        contexts = contexts.apply_letter(letter)
    return contexts


def words_equal_on(
    word_a: Sequence[Letter],
    word_b: Sequence[Letter],
    inputs: Iterable[ContextSet],
) -> bool:
    """True iff the two words agree on every given input set.

    All transformations denoted by words distribute over union except for
    the non-emptiness test of ``*``; agreement on singleton inputs plus
    one non-trivial set therefore implies agreement everywhere — tests
    construct their input collections accordingly.
    """
    return all(apply_word(word_a, x) == apply_word(word_b, x) for x in inputs)
