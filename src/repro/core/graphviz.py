"""Graphviz (DOT) exports for analysis results and PAGs.

Small, dependency-free renderers for the two graphs users most often
want to look at: the context-insensitive call graph of an analysis and
the pointer assignment graph of Section 2.1.  The output is plain DOT
text, consumable by ``dot -Tsvg`` (not invoked here — no subprocesses).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.results import AnalysisResult


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def call_graph_dot(result: AnalysisResult, title: str = "call graph") -> str:
    """The context-insensitive call graph as DOT.

    Nodes are methods; edges are labelled by invocation sites.  The
    entry point is drawn as a double circle.
    """
    lines = [f"digraph {_quote(title)} {{", "    rankdir=LR;"]
    methods: Set[str] = set(result.reachable_methods())
    parents = result._solver.invocation_parent
    main = result._solver.facts.main_method
    for method in sorted(methods):
        shape = "doublecircle" if method == main else "box"
        lines.append(f"    {_quote(method)} [shape={shape}];")
    for (inv, callee) in sorted(result.call_graph()):
        caller = parents.get(inv, "?")
        lines.append(
            f"    {_quote(caller)} -> {_quote(callee)}"
            f" [label={_quote(inv)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def points_to_dot(
    result: AnalysisResult,
    variables: Optional[Iterable[str]] = None,
    title: str = "points-to",
) -> str:
    """The context-insensitive points-to relation as a bipartite DOT
    graph (variables → allocation sites), optionally restricted."""
    wanted = set(variables) if variables is not None else None
    lines = [f"digraph {_quote(title)} {{", "    rankdir=LR;"]
    edges = [
        (var, heap)
        for (var, heap) in sorted(result.pts_ci())
        if wanted is None or var in wanted
    ]
    for heap in sorted({h for (_, h) in edges}):
        lines.append(f"    {_quote(heap)} [shape=ellipse, style=filled];")
    for var in sorted({v for (v, _) in edges}):
        lines.append(f"    {_quote(var)} [shape=box];")
    for (var, heap) in edges:
        lines.append(f"    {_quote(var)} -> {_quote(heap)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def pag_dot(pag, title: str = "PAG") -> str:
    """A pointer assignment graph as DOT (Figure 2's edge labels)."""
    lines = [f"digraph {_quote(title)} {{", "    rankdir=LR;"]
    for heap in sorted(pag.heap_nodes()):
        lines.append(f"    {_quote(heap)} [shape=ellipse, style=filled];")
    for edge in pag.edges:
        label = edge.label
        if edge.field is not None:
            label += f"[{edge.field}]"
        if edge.call_site is not None:
            marker = "(" if edge.entering else ")"
            label += f" {marker}{edge.call_site}"
        lines.append(
            f"    {_quote(edge.source)} -> {_quote(edge.target)}"
            f" [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
