"""Flavours of context sensitivity (paper Figure 4).

The parameterized deduction rules of Figure 3 are closed over five
non-logical symbols — ``record``, ``merge``, ``merge_s``, ``target`` and
``comp``/``inv`` — whose definitions select both the *abstraction*
(context strings vs transformer strings) and the *flavour* (call-site,
full-object, or type sensitivity).  This module provides the flavour
functions for both abstractions, exactly as listed in Figure 4:

========== ===================== =========================================
symbol      context strings        transformer strings
========== ===================== =========================================
record      ``(prefix_h(M), M)``   ``ε``
merge       per flavour            per flavour (built from ``inv``/``;``)
merge_s     per flavour            per flavour
========== ===================== =========================================

``merge`` receives the heap allocation site ``H`` of the receiver, the
invocation site ``I``, and the receiver's points-to context
transformation; it produces the call-edge transformation from caller
method context to callee method context.  ``merge_s`` does the same for
static invocations from a reachable method context.

For type sensitivity ``classOf(H)`` is the class type in which the
method containing allocation site ``H`` is implemented; it is supplied
by the caller as a function, since it is a property of the program under
analysis rather than of the abstraction.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.core import transformer_strings as ts
from repro.core.contexts import MethodContext, prefix
from repro.core.context_strings import ContextStringPair
from repro.core.transformer_strings import TransformerString

#: Maps a heap allocation site to the class type that contains it.
ClassOf = Callable[[str], str]


class Flavour(enum.Enum):
    """Flavours of context sensitivity.

    The paper evaluates call-site, (full) object, and type sensitivity.
    Two more are provided because the parameterized rules make them a
    Figure 4 entry each:

    * ``PLAIN_OBJECT`` — the object-sensitivity variant of Milanova et
      al. that the paper's Section 2.2 contrasts with full object
      sensitivity ("id is invoked with the method context
      [h4, h4, entry] under plain object sensitivity"): the receiver's
      allocation site is prefixed to the *invoking method's* context
      rather than to the receiver's heap context;
    * ``HYBRID`` — the uniform hybrid of Kastrinis & Smaragdakis
      (cited as [6]): object contexts at virtual invocations, call-site
      pushes at static invocations.
    """

    CALL_SITE = "call-site"
    OBJECT = "object"
    TYPE = "type"
    PLAIN_OBJECT = "plain-object"
    HYBRID = "hybrid"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def validate_levels(flavour: Flavour, m: int, h: int) -> None:
    """Enforce the level constraints of paper Figure 3's caption.

    ``0 ≤ h ≤ m`` is assumed for call-site sensitivity (and for plain
    object sensitivity, whose contexts likewise grow one element per
    invocation) and ``0 ≤ h = m − 1`` for full object, type, and hybrid
    sensitivity (whose method contexts are one element atop a heap
    context).
    """
    if m < 0 or h < 0:
        raise ValueError(f"context levels must be non-negative, got m={m}, h={h}")
    if flavour in (Flavour.CALL_SITE, Flavour.PLAIN_OBJECT):
        if h > m:
            raise ValueError(
                f"{flavour.value} sensitivity requires h <= m, got m={m}, h={h}"
            )
    else:
        if h != m - 1:
            raise ValueError(
                f"{flavour.value} sensitivity requires h = m - 1, got m={m}, h={h}"
            )


# ---------------------------------------------------------------------------
# Context-string flavour functions (left column of Figure 4).
# ---------------------------------------------------------------------------

def record_cs(m_ctx: MethodContext, h: int) -> ContextStringPair:
    """``record^c(M) = (prefix_h(M), M)`` for every flavour."""
    return (prefix(m_ctx, h), m_ctx)


def merge_cs(
    flavour: Flavour,
    heap: str,
    inv: str,
    receiver: ContextStringPair,
    m: int,
    class_of: Optional[ClassOf] = None,
) -> ContextStringPair:
    """``merge^c``: the call edge for a virtual invocation.

    * call-site:     ``(M, I·prefix_{m−1}(M))``
    * object/hybrid: ``(M, H·H′)`` where the receiver pair is ``(H′, M)``
    * type:          ``(M, classOf(H)·H′)``
    * plain object:  ``(M, H·prefix_{m−1}(M))`` — the allocation site is
      prefixed to the *invoking* context (paper Section 2.2's contrast)
    """
    heap_ctx, m_ctx = receiver
    if flavour is Flavour.CALL_SITE:
        callee = prefix((inv,) + prefix(m_ctx, m - 1), m)
    elif flavour in (Flavour.OBJECT, Flavour.HYBRID):
        callee = prefix((heap,) + heap_ctx, m)
    elif flavour is Flavour.PLAIN_OBJECT:
        callee = prefix((heap,) + prefix(m_ctx, m - 1), m)
    else:
        if class_of is None:
            raise ValueError("type sensitivity requires a class_of function")
        callee = prefix((class_of(heap),) + heap_ctx, m)
    return (m_ctx, callee)


def merge_s_cs(
    flavour: Flavour, inv: str, m_ctx: MethodContext, m: int
) -> ContextStringPair:
    """``merge_s^c``: the call edge for a static invocation.

    * call-site/hybrid: ``(M, I·prefix_{m−1}(M))``
    * object/plain-object/type: ``(M, M)`` — context inherited.
    """
    if flavour in (Flavour.CALL_SITE, Flavour.HYBRID):
        return (m_ctx, prefix((inv,) + prefix(m_ctx, m - 1), m))
    return (m_ctx, m_ctx)


# ---------------------------------------------------------------------------
# Transformer-string flavour functions (right column of Figure 4).
# ---------------------------------------------------------------------------

def record_ts(m_ctx: MethodContext, h: int) -> TransformerString:
    """``record^t(_) = ε``: a single identity fact replaces the enumeration."""
    return TransformerString.identity()


def merge_ts(
    flavour: Flavour,
    heap: str,
    inv: str,
    receiver: TransformerString,
    m: int,
    class_of: Optional[ClassOf] = None,
) -> Optional[TransformerString]:
    """``merge^t``: the call-edge transformer for a virtual invocation.

    * call-site: ``trunc_{m,m}(inv(B) ; B ; Î)`` — the idempotent
      ``inv(B); B`` restricts to the image of the receiver's points-to
      transformation, then the call site is prefixed;
    * object/hybrid: ``inv(B) ; Ĥ`` — written ``B̌·w·Â·Ĥ`` in Figure 4;
    * plain object: ``trunc_{m,m}(inv(B) ; B ; Ĥ)`` — like call-site,
      but prefixing the allocation site to the invoking context;
    * type:      ``inv(B) ; classOf(H)^``.

    The result is ``None`` (no call edge) only if composition bottoms
    out, which cannot happen for well-formed receiver transformations but
    is handled uniformly.
    """
    if flavour in (Flavour.CALL_SITE, Flavour.PLAIN_OBJECT):
        restricted = ts.compose(ts.inverse(receiver), receiver)
        if restricted is None:
            return None
        element = inv if flavour is Flavour.CALL_SITE else heap
        edge = ts.compose(restricted, TransformerString.entry((element,)))
    elif flavour in (Flavour.OBJECT, Flavour.HYBRID):
        edge = ts.compose(ts.inverse(receiver), TransformerString.entry((heap,)))
    else:
        if class_of is None:
            raise ValueError("type sensitivity requires a class_of function")
        edge = ts.compose(
            ts.inverse(receiver), TransformerString.entry((class_of(heap),))
        )
    if edge is None:
        return None
    return ts.trunc(edge, m, m)


def merge_s_ts(
    flavour: Flavour, inv: str, m_ctx: MethodContext, m: int
) -> TransformerString:
    """``merge_s^t``: the call-edge transformer for a static invocation.

    * call-site/hybrid: ``Î``;
    * object/plain-object/type: ``M̌·M̂`` — the guard that passes exactly
      the contexts with prefix ``M`` through unchanged (Section 3's
      ``Ň·N̂``).
    """
    if flavour in (Flavour.CALL_SITE, Flavour.HYBRID):
        return ts.trunc(TransformerString.entry((inv,)), m, m)
    return TransformerString.guard(m_ctx)
