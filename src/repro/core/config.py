"""Analysis configuration: one point in the paper's instantiation space.

An :class:`AnalysisConfig` names an abstraction (context strings or
transformer strings), a flavour of context sensitivity, and the levels
``m`` (method contexts) and ``h`` (heap contexts).  The five
configurations of the paper's evaluation (Section 8) are provided as
:data:`PAPER_CONFIGURATIONS`, in the paper's naming scheme:
``1-call``, ``1-call+H``, ``1-object``, ``2-object+H``, ``2-type+H``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.core.sensitivity import Flavour, validate_levels


@dataclass(frozen=True)
class AnalysisConfig:
    """Selects an instantiation of the parameterized deduction rules."""

    abstraction: str = "transformer-string"
    flavour: Flavour = Flavour.CALL_SITE
    m: int = 1
    h: int = 0
    eliminate_subsumed: bool = False
    #: Ablation switch (Section 7): bucket transformer-string facts by
    #: entity attributes only, losing the context-join index.
    naive_transformer_index: bool = False
    #: Record one derivation per fact for ``AnalysisResult.explain``.
    track_provenance: bool = False

    def __post_init__(self) -> None:
        validate_levels(self.flavour, self.m, self.h)
        if self.abstraction not in ("context-string", "transformer-string"):
            raise ValueError(
                f"unknown abstraction {self.abstraction!r}; expected"
                " 'context-string' or 'transformer-string'"
            )

    def with_abstraction(self, abstraction: str) -> "AnalysisConfig":
        """The same sensitivity under the other abstraction."""
        return replace(self, abstraction=abstraction)

    @property
    def sensitivity_name(self) -> str:
        """The paper's name for the sensitivity, e.g. ``2-object+H``
        (deeper heap levels are spelled ``+2H`` etc.)."""
        heap = f"+{self.h}H" if self.h > 1 else ("+H" if self.h else "")
        flavour = {
            "call-site": "call", "object": "object", "type": "type",
            "plain-object": "plain-object", "hybrid": "hybrid",
        }[self.flavour.value]
        return f"{self.m}-{flavour}{heap}"

    def describe(self) -> str:
        return f"{self.sensitivity_name}/{self.abstraction}"


def _paper_config(name: str) -> Tuple[Flavour, int, int]:
    return {
        "1-call": (Flavour.CALL_SITE, 1, 0),
        "1-call+H": (Flavour.CALL_SITE, 1, 1),
        "2-call": (Flavour.CALL_SITE, 2, 0),
        "2-call+H": (Flavour.CALL_SITE, 2, 1),
        "1-object": (Flavour.OBJECT, 1, 0),
        "2-object+H": (Flavour.OBJECT, 2, 1),
        "1-type": (Flavour.TYPE, 1, 0),
        "2-type+H": (Flavour.TYPE, 2, 1),
        "insensitive": (Flavour.CALL_SITE, 0, 0),
        # Beyond-paper flavours (see Flavour's docstring):
        "1-plain-object": (Flavour.PLAIN_OBJECT, 1, 0),
        "2-plain-object+H": (Flavour.PLAIN_OBJECT, 2, 1),
        "1-hybrid": (Flavour.HYBRID, 1, 0),
        "2-hybrid+H": (Flavour.HYBRID, 2, 1),
        # Deeper-than-paper levels (the parameterization is uniform in
        # m and h; these exist to exercise it):
        "3-call": (Flavour.CALL_SITE, 3, 0),
        "3-call+2H": (Flavour.CALL_SITE, 3, 2),
        "3-object+2H": (Flavour.OBJECT, 3, 2),
    }[name]


def config_by_name(name: str, abstraction: str = "transformer-string",
                   **kwargs) -> AnalysisConfig:
    """Build a configuration from a paper-style sensitivity name."""
    flavour, m, h = _paper_config(name)
    return AnalysisConfig(
        abstraction=abstraction, flavour=flavour, m=m, h=h, **kwargs
    )


#: The five context-sensitivity configurations evaluated in the paper,
#: in Figure 6's column order.
PAPER_CONFIGURATIONS: Tuple[str, ...] = (
    "1-call", "1-call+H", "1-object", "2-object+H", "2-type+H",
)
