"""Typed edit sets over the frontend's input relations.

A :class:`FactDelta` is the unit of incremental work: per-relation
added/removed row sets over the seventeen input relations of
:class:`~repro.frontend.factgen.FactSet`, plus the three auxiliary maps
(``class_of``, ``invocation_parent``, ``main_method``) whose changes
ride along with statement edits.

Deltas are built three ways:

* programmatically, via :meth:`FactDelta.add` / :meth:`FactDelta.remove`
  (the edit generator in :mod:`repro.incremental.edits` does this);
* by diffing two fact sets (:func:`diff_facts`) or two programs /
  source texts (:func:`diff_programs`) — the ``analyze --diff`` CLI
  path;
* from the JSON wire form (:meth:`FactDelta.from_json`) — the serve
  protocol's ``update`` op.

The JSON form round-trips exactly (rows are lists; the integer
positions of ``actual``/``formal`` stay integers)::

    {"added": {"assign": [["T.main/x1", "T.main/x2"]]},
     "removed": {},
     "class_of": {"added": {}, "removed": {}},
     "invocation_parent": {"added": {}, "removed": {}},
     "main_method": null}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple, Union

from repro.frontend.factgen import FactSet

#: The input relations a delta may edit, in schema order.
INPUT_RELATIONS: Tuple[str, ...] = FactSet().relation_names()

#: Variable attribute positions per input relation (mirrors the
#: service's coverage universe — kept local so the delta layer does not
#: depend on the service layer).
_VAR_POSITIONS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("actual", (0,)), ("assign", (0, 1)), ("assign_new", (1,)),
    ("assign_return", (1,)), ("formal", (0,)), ("load", (0, 2)),
    ("return_var", (0,)), ("store", (0, 2)), ("this_var", (0,)),
    ("static_load", (1,)), ("static_store", (0,)), ("throw_var", (0,)),
    ("catch_var", (0,)), ("virtual_invoke", (1,)),
)

#: Invocation-site attribute positions per input relation.
_SITE_POSITIONS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("actual", (1,)), ("assign_return", (0,)), ("static_invoke", (0,)),
    ("virtual_invoke", (0,)),
)

#: Heap-site attribute positions per input relation.
_HEAP_POSITIONS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("assign_new", (0,)), ("heap_type", (0,)),
)


def copy_facts(facts: FactSet) -> FactSet:
    """An independent deep-enough copy of a fact set.

    Rows are immutable tuples, so copying the containers suffices.
    Used wherever a delta must be applied without mutating the
    original (equivalence sweeps, ``analyze --diff``).
    """
    out = FactSet()
    for name in INPUT_RELATIONS:
        setattr(out, name, set(getattr(facts, name)))
    out.class_of = dict(facts.class_of)
    out.invocation_parent = dict(facts.invocation_parent)
    out.main_method = facts.main_method
    return out


@dataclass
class FactDelta:
    """An add/remove edit set over the input relations.

    ``added``/``removed`` map relation names to row sets; only edited
    relations appear.  ``class_of_*`` / ``parent_*`` carry auxiliary
    map entries keyed by heap site / invocation site.
    ``main_method_change`` is ``(old, new)`` when the entry point
    itself changed — the one edit the incremental engine always
    re-solves for.
    """

    added: Dict[str, Set[Tuple]] = field(default_factory=dict)
    removed: Dict[str, Set[Tuple]] = field(default_factory=dict)
    class_of_added: Dict[str, str] = field(default_factory=dict)
    class_of_removed: Dict[str, str] = field(default_factory=dict)
    parent_added: Dict[str, str] = field(default_factory=dict)
    parent_removed: Dict[str, str] = field(default_factory=dict)
    main_method_change: Optional[Tuple[Optional[str], Optional[str]]] = None

    # -- builders -------------------------------------------------------

    def add(self, relation: str, row: Iterable) -> "FactDelta":
        """Record an added input row; returns ``self`` for chaining."""
        self._check(relation)
        self.added.setdefault(relation, set()).add(tuple(row))
        return self

    def remove(self, relation: str, row: Iterable) -> "FactDelta":
        """Record a removed input row; returns ``self`` for chaining."""
        self._check(relation)
        self.removed.setdefault(relation, set()).add(tuple(row))
        return self

    @staticmethod
    def _check(relation: str) -> None:
        if relation not in INPUT_RELATIONS:
            raise ValueError(
                f"unknown input relation {relation!r}; expected one of"
                f" {sorted(INPUT_RELATIONS)}"
            )

    # -- inspection -----------------------------------------------------

    def is_empty(self) -> bool:
        return not (
            any(self.added.values()) or any(self.removed.values())
            or self.class_of_added or self.class_of_removed
            or self.parent_added or self.parent_removed
            or self.main_method_change
        )

    @property
    def total_added(self) -> int:
        return sum(len(rows) for rows in self.added.values())

    @property
    def total_removed(self) -> int:
        return sum(len(rows) for rows in self.removed.values())

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """``{relation: (added, removed)}`` over edited relations."""
        out: Dict[str, Tuple[int, int]] = {}
        for name in INPUT_RELATIONS:
            plus = len(self.added.get(name, ()))
            minus = len(self.removed.get(name, ()))
            if plus or minus:
                out[name] = (plus, minus)
        return out

    def _touched(self, positions) -> Set[str]:
        out: Set[str] = set()
        for name, cols in positions:
            for rows in (self.added.get(name, ()), self.removed.get(name, ())):
                for row in rows:
                    for col in cols:
                        out.add(row[col])
        return out

    def changed_variables(self) -> Set[str]:
        """Variables mentioned by any edited row."""
        return self._touched(_VAR_POSITIONS)

    def changed_sites(self) -> Set[str]:
        """Invocation sites mentioned by any edited row."""
        return self._touched(_SITE_POSITIONS)

    def changed_heaps(self) -> Set[str]:
        """Heap sites mentioned by any edited row."""
        out = self._touched(_HEAP_POSITIONS)
        out.update(self.class_of_added)
        out.update(self.class_of_removed)
        return out

    def remaps_entity(self) -> bool:
        """True when a *surviving* auxiliary-map key changes value.

        ``class_of`` (allocation site → class) and
        ``invocation_parent`` (call site → containing method) are
        functional; a key that is both removed and re-added with a
        different value invalidates derivations the support graph
        cannot see, so the incremental engine re-solves.
        """
        for key, value in self.class_of_added.items():
            if key in self.class_of_removed \
                    and self.class_of_removed[key] != value:
                return True
        for key, value in self.parent_added.items():
            if key in self.parent_removed \
                    and self.parent_removed[key] != value:
                return True
        return False

    # -- application ----------------------------------------------------

    def apply_to(self, facts: FactSet) -> FactSet:
        """Apply the delta to ``facts`` *in place*; returns ``facts``.

        In-place mutation is deliberate: the solver's abstraction
        domain closes over its fact set's ``class_of`` map, so the
        incremental engine must patch the very object the domain reads.
        Removals of absent rows are ignored (a delta built against a
        stale base still applies cleanly).
        """
        for name, rows in self.removed.items():
            getattr(facts, name).difference_update(rows)
        for name, rows in self.added.items():
            getattr(facts, name).update(rows)
        for key in self.class_of_removed:
            if key not in self.class_of_added:
                facts.class_of.pop(key, None)
        facts.class_of.update(self.class_of_added)
        for key in self.parent_removed:
            if key not in self.parent_added:
                facts.invocation_parent.pop(key, None)
        facts.invocation_parent.update(self.parent_added)
        if self.main_method_change is not None:
            facts.main_method = self.main_method_change[1]
        return facts

    def applied_copy(self, facts: FactSet) -> FactSet:
        """A fresh fact set equal to ``facts`` with the delta applied."""
        return self.apply_to(copy_facts(facts))

    def inverted(self) -> "FactDelta":
        """The delta that undoes this one."""
        main = self.main_method_change
        return FactDelta(
            added={name: set(rows) for name, rows in self.removed.items()},
            removed={name: set(rows) for name, rows in self.added.items()},
            class_of_added=dict(self.class_of_removed),
            class_of_removed=dict(self.class_of_added),
            parent_added=dict(self.parent_removed),
            parent_removed=dict(self.parent_added),
            main_method_change=(
                None if main is None else (main[1], main[0])
            ),
        )

    # -- JSON codec -----------------------------------------------------

    def to_json(self) -> Dict:
        """The wire form (plain JSON types, deterministic ordering)."""
        return {
            "added": {
                name: sorted(list(row) for row in rows)
                for name, rows in sorted(self.added.items()) if rows
            },
            "removed": {
                name: sorted(list(row) for row in rows)
                for name, rows in sorted(self.removed.items()) if rows
            },
            "class_of": {
                "added": dict(sorted(self.class_of_added.items())),
                "removed": dict(sorted(self.class_of_removed.items())),
            },
            "invocation_parent": {
                "added": dict(sorted(self.parent_added.items())),
                "removed": dict(sorted(self.parent_removed.items())),
            },
            "main_method": (
                None if self.main_method_change is None
                else list(self.main_method_change)
            ),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "FactDelta":
        """Decode the wire form; raises ``ValueError`` on bad shapes."""
        if not isinstance(payload, dict):
            raise ValueError("delta must be a JSON object")
        delta = cls()
        for bucket, sink in (("added", delta.added),
                             ("removed", delta.removed)):
            entries = payload.get(bucket, {})
            if not isinstance(entries, dict):
                raise ValueError(f"delta {bucket!r} must be an object")
            for name, rows in entries.items():
                cls._check(name)
                sink[name] = {tuple(row) for row in rows}
        for section, added, removed in (
            ("class_of", delta.class_of_added, delta.class_of_removed),
            ("invocation_parent", delta.parent_added, delta.parent_removed),
        ):
            entries = payload.get(section, {})
            if not isinstance(entries, dict):
                raise ValueError(f"delta {section!r} must be an object")
            added.update(entries.get("added", {}))
            removed.update(entries.get("removed", {}))
        main = payload.get("main_method")
        if main is not None:
            if not isinstance(main, (list, tuple)) or len(main) != 2:
                raise ValueError(
                    "delta 'main_method' must be [old, new] or null"
                )
            delta.main_method_change = (main[0], main[1])
        return delta

    def describe(self) -> str:
        """One line per edited relation, for CLI display."""
        lines = []
        for name, (plus, minus) in self.counts().items():
            parts = []
            if plus:
                parts.append(f"+{plus}")
            if minus:
                parts.append(f"-{minus}")
            lines.append(f"{name}: {' '.join(parts)}")
        if self.class_of_added or self.class_of_removed:
            lines.append(
                f"class_of: +{len(self.class_of_added)}"
                f" -{len(self.class_of_removed)}"
            )
        if self.main_method_change is not None:
            lines.append(
                f"main_method: {self.main_method_change[0]}"
                f" -> {self.main_method_change[1]}"
            )
        return "\n".join(lines) if lines else "(empty delta)"


# -- diff builders -----------------------------------------------------------


def diff_facts(old: FactSet, new: FactSet) -> FactDelta:
    """The delta transforming ``old`` into ``new``."""
    delta = FactDelta()
    for name in INPUT_RELATIONS:
        old_rows: Set[Tuple] = getattr(old, name)
        new_rows: Set[Tuple] = getattr(new, name)
        plus = new_rows - old_rows
        minus = old_rows - new_rows
        if plus:
            delta.added[name] = plus
        if minus:
            delta.removed[name] = minus
    for key, value in new.class_of.items():
        if old.class_of.get(key) != value:
            delta.class_of_added[key] = value
    for key, value in old.class_of.items():
        if key not in new.class_of or new.class_of[key] != value:
            delta.class_of_removed[key] = value
    for key, value in new.invocation_parent.items():
        if old.invocation_parent.get(key) != value:
            delta.parent_added[key] = value
    for key, value in old.invocation_parent.items():
        if key not in new.invocation_parent \
                or new.invocation_parent[key] != value:
            delta.parent_removed[key] = value
    if old.main_method != new.main_method:
        delta.main_method_change = (old.main_method, new.main_method)
    return delta


def diff_programs(old: Union[str, FactSet], new: Union[str, FactSet]) -> FactDelta:
    """Diff two programs (source text, IR program or fact set)."""
    from repro.core.analysis import _to_facts

    return diff_facts(_to_facts(old), _to_facts(new))
