"""Coherent random edits for equivalence sweeps and churn benchmarks.

:func:`random_edits` produces a stream of ``(kind, FactDelta)`` pairs
that model realistic single-statement program edits — adding/removing
an assignment, a field load/store, or an allocation — each coherent
against the *rolling* fact set (removals pick rows that exist,
additions reuse in-scope variables, new allocations clone the type and
class of an existing site so the auxiliary maps stay consistent).

The generator applies each delta to its private rolling copy, so a
consumer replaying the stream edit-by-edit sees exactly the same
sequence of fact sets; a consumer that also solves from scratch after
each edit gets the bit-identical oracle the sweep tests compare
against.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.frontend.factgen import FactSet
from repro.incremental.delta import FactDelta, copy_facts

#: The edit kinds the generator draws from.
EDIT_KINDS: Tuple[str, ...] = (
    "add_assign", "remove_assign",
    "add_load", "remove_load",
    "add_store", "remove_store",
    "add_new", "remove_new",
)


def _variables(facts: FactSet) -> List[str]:
    out = set()
    for row in facts.assign:
        out.update(row)
    for (var, _inv, _pos) in facts.actual:
        out.add(var)
    for (var, _m, _pos) in facts.formal:
        out.add(var)
    for (_h, var, _m) in facts.assign_new:
        out.add(var)
    for (_i, var) in facts.assign_return:
        out.add(var)
    for (base, _f, dst) in facts.load:
        out.add(base)
        out.add(dst)
    for (value, _f, base) in facts.store:
        out.add(value)
        out.add(base)
    for (var, _m) in facts.this_var:
        out.add(var)
    return sorted(out)


def _fields(facts: FactSet) -> List[str]:
    out = {row[1] for row in facts.load} | {row[1] for row in facts.store}
    return sorted(out) if out else ["f"]


class _EditSpace:
    """Candidate enumeration over one rolling fact set."""

    def __init__(self, facts: FactSet, rng: random.Random):
        self.facts = facts
        self.rng = rng
        self._fresh = 0

    def propose(self, kind: str):
        """A delta for ``kind``, or ``None`` when no candidate exists."""
        return getattr(self, f"_{kind}")()

    def _pick(self, candidates):
        candidates = sorted(candidates)
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]

    def _add_assign(self):
        variables = _variables(self.facts)
        if len(variables) < 2:
            return None
        for _ in range(8):
            src = variables[self.rng.randrange(len(variables))]
            dst = variables[self.rng.randrange(len(variables))]
            if src != dst and (src, dst) not in self.facts.assign:
                return FactDelta().add("assign", (src, dst))
        return None

    def _remove_assign(self):
        row = self._pick(self.facts.assign)
        return None if row is None else FactDelta().remove("assign", row)

    def _add_load(self):
        variables = _variables(self.facts)
        fields = _fields(self.facts)
        if len(variables) < 2:
            return None
        for _ in range(8):
            base = variables[self.rng.randrange(len(variables))]
            dst = variables[self.rng.randrange(len(variables))]
            fld = fields[self.rng.randrange(len(fields))]
            row = (base, fld, dst)
            if base != dst and row not in self.facts.load:
                return FactDelta().add("load", row)
        return None

    def _remove_load(self):
        row = self._pick(self.facts.load)
        return None if row is None else FactDelta().remove("load", row)

    def _add_store(self):
        variables = _variables(self.facts)
        fields = _fields(self.facts)
        if len(variables) < 2:
            return None
        for _ in range(8):
            value = variables[self.rng.randrange(len(variables))]
            base = variables[self.rng.randrange(len(variables))]
            fld = fields[self.rng.randrange(len(fields))]
            row = (value, fld, base)
            if value != base and row not in self.facts.store:
                return FactDelta().add("store", row)
        return None

    def _remove_store(self):
        row = self._pick(self.facts.store)
        return None if row is None else FactDelta().remove("store", row)

    def _add_new(self):
        # Clone an existing allocation: same variable, method, type and
        # class, fresh site label — keeps class_of/heap_type coherent.
        template = self._pick(self.facts.assign_new)
        if template is None:
            return None
        heap, var, method = template
        self._fresh += 1
        fresh = f"{heap}~e{self._fresh}"
        while any(row[0] == fresh for row in self.facts.heap_type):
            self._fresh += 1
            fresh = f"{heap}~e{self._fresh}"
        heap_class = next(
            row[1] for row in self.facts.heap_type if row[0] == heap
        )
        delta = FactDelta()
        delta.add("assign_new", (fresh, var, method))
        delta.add("heap_type", (fresh, heap_class))
        delta.class_of_added[fresh] = self.facts.class_of[heap]
        return delta

    def _remove_new(self):
        # Keep at least one allocation alive so the program stays
        # interesting (and `main` keeps deriving something).
        if len(self.facts.assign_new) <= 1:
            return None
        row = self._pick(self.facts.assign_new)
        heap = row[0]
        delta = FactDelta().remove("assign_new", row)
        for type_row in [r for r in self.facts.heap_type if r[0] == heap]:
            delta.remove("heap_type", type_row)
        if heap in self.facts.class_of:
            delta.class_of_removed[heap] = self.facts.class_of[heap]
        return delta


def random_edits(
    facts: FactSet, count: int, seed: int = 0
) -> Iterator[Tuple[str, FactDelta]]:
    """Yield ``count`` coherent ``(kind, delta)`` edits from ``seed``.

    Each delta is valid against the fact set produced by applying all
    previous deltas to ``facts`` (the input object is not mutated).
    """
    rng = random.Random(seed)
    rolling = copy_facts(facts)
    space = _EditSpace(rolling, rng)
    produced = 0
    attempts = 0
    while produced < count:
        attempts += 1
        if attempts > count * 50:
            raise RuntimeError(
                f"edit generation stalled after {produced}/{count} edits"
            )
        kind = EDIT_KINDS[rng.randrange(len(EDIT_KINDS))]
        delta = space.propose(kind)
        if delta is None:
            continue
        delta.apply_to(rolling)
        produced += 1
        yield kind, delta
