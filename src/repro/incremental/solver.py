"""Support-counted semi-naive maintenance with DRed retraction.

:class:`IncrementalSolver` owns one batch
:class:`~repro.core.solver.Solver` with support tracking enabled and
keeps its fixpoint consistent under :class:`FactDelta` edits:

**Additions** are the easy half: each added input row is joined against
the current derived relations (:func:`~repro.incremental.firing.
input_firings`), the resulting instances are replayed through the
solver's ``add_*`` methods, and one worklist drain completes the
cascade — plain semi-naive evaluation seeded from the delta.

**Removals** use DRed (delete-and-rederive) over the solver's
support-instance graph (``support``: conclusion → derivation instances;
``uses``: premise → instances it feeds):

1. *kill enumeration* — before any mutation, enumerate every recorded
   instance whose input atoms include a removed row and discard it from
   the support graph;
2. *overdelete* — transitively retract every fact with **any**
   derivation through a killed instance (cascading along ``uses``);
   over-approximation is what makes cyclic support sound — counting
   alone would keep mutually-supporting facts alive forever;
3. *rederive* — re-add every overdeleted fact that retains a support
   instance whose premises all survived, then drain: the rule engine
   itself rebuilds the surviving portion of the cascade, re-recording
   support as it goes;
4. *purge* — facts that stayed deleted leave the support graph
   entirely, preserving the invariant that every stored instance has
   live premises and live input atoms (which is what makes step 1's
   enumeration complete on the *next* delta).

Edits the support graph cannot see force a recorded fallback to a
from-scratch solve: an entry-point change, a surviving allocation site
re-mapped to a different class (the abstraction domain closes over
``class_of``), a call site re-parented, and the ``eliminate_subsumed``
ablation (which drops facts without recording why).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import AnalysisConfig
from repro.core.domains import make_domain
from repro.core.solver import Solver
from repro.frontend.factgen import FactSet
from repro.incremental.delta import FactDelta
from repro.incremental.firing import input_firings

#: The derived relations, in the solver's dispatch order.
DERIVED_KINDS: Tuple[str, ...] = (
    "pts", "hpts", "hload", "call", "reach", "spts", "texc",
)


class _LoggingDeque(deque):
    """A worklist that records every fact pushed through it.

    Swapped in for the solver's worklist during ``apply_delta`` so the
    set of newly-derived facts falls out of the drain at zero cost to
    batch solves (which keep the plain deque).
    """

    def __init__(self):
        super().__init__()
        self.log: List[Tuple[str, Tuple]] = []

    def append(self, item) -> None:
        self.log.append(item)
        super().append(item)


class DeltaStats:
    """Cumulative counters across all ``apply_delta`` calls."""

    def __init__(self) -> None:
        self.deltas_applied = 0
        self.fallback_solves = 0
        self.input_rows_added = 0
        self.input_rows_removed = 0
        self.tuples_added = 0
        self.tuples_deleted = 0
        self.tuples_rederived = 0
        self.tuples_reused = 0
        self.delta_seconds = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "deltas_applied": self.deltas_applied,
            "fallback_solves": self.fallback_solves,
            "input_rows_added": self.input_rows_added,
            "input_rows_removed": self.input_rows_removed,
            "tuples_added": self.tuples_added,
            "tuples_deleted": self.tuples_deleted,
            "tuples_rederived": self.tuples_rederived,
            "tuples_reused": self.tuples_reused,
            "delta_seconds": self.delta_seconds,
        }


class DeltaResult:
    """The outcome of one ``apply_delta``: net derived-tuple changes.

    ``added``/``removed`` map derived relation names to the rows that
    net-appeared/net-vanished (a fact deleted and rederived in the same
    delta appears in neither).  ``fallback`` marks deltas answered by a
    from-scratch solve, with ``reason`` naming why.
    """

    def __init__(
        self,
        added: Dict[str, Set[Tuple]],
        removed: Dict[str, Set[Tuple]],
        rederived: int,
        deleted: int,
        reused: int,
        seconds: float,
        fallback: bool = False,
        reason: Optional[str] = None,
    ):
        self.added = added
        self.removed = removed
        self.rederived = rederived
        self.deleted = deleted
        self.reused = reused
        self.seconds = seconds
        self.fallback = fallback
        self.reason = reason

    def changed_relations(self) -> Tuple[str, ...]:
        """Derived relations whose row sets changed, in schema order."""
        return tuple(
            kind for kind in DERIVED_KINDS
            if self.added.get(kind) or self.removed.get(kind)
        )

    @property
    def total_added(self) -> int:
        return sum(len(rows) for rows in self.added.values())

    @property
    def total_removed(self) -> int:
        return sum(len(rows) for rows in self.removed.values())

    def changed_variables(self) -> Set[str]:
        """Variables whose ``pts`` rows changed (cache invalidation)."""
        return {
            row[0]
            for rows in (self.added.get("pts", ()),
                         self.removed.get("pts", ()))
            for row in rows
        }

    def changed_sites(self) -> Set[str]:
        """Invocation sites whose ``call`` rows changed."""
        return {
            row[0]
            for rows in (self.added.get("call", ()),
                         self.removed.get("call", ()))
            for row in rows
        }

    def changed_heaps(self) -> Set[str]:
        """Base heaps whose ``hpts`` rows changed."""
        return {
            row[0]
            for rows in (self.added.get("hpts", ()),
                         self.removed.get("hpts", ()))
            for row in rows
        }

    def as_dict(self) -> Dict:
        return {
            "changed": {
                kind: {
                    "added": len(self.added.get(kind, ())),
                    "removed": len(self.removed.get(kind, ())),
                }
                for kind in self.changed_relations()
            },
            "rederived": self.rederived,
            "deleted": self.deleted,
            "reused": self.reused,
            "seconds": self.seconds,
            "fallback": self.fallback,
            "reason": self.reason,
        }


class IncrementalSolver:
    """Maintains one solved fixpoint under :class:`FactDelta` edits."""

    def __init__(
        self,
        facts: FactSet,
        config: AnalysisConfig = AnalysisConfig(),
    ):
        self.facts = facts
        self.config = config
        self.stats = DeltaStats()
        # Subsumption elimination drops facts without recording why;
        # its fixpoints cannot be patched, only re-solved.
        self.always_fallback = bool(config.eliminate_subsumed)
        self.solver = self._fresh_solve()

    def _fresh_solve(self) -> Solver:
        domain = make_domain(
            self.config.abstraction,
            self.config.flavour,
            self.config.m,
            self.config.h,
            class_of=self.facts.class_of_heap,
        )
        solver = Solver(
            self.facts,
            domain,
            eliminate_subsumed=self.config.eliminate_subsumed,
            naive_transformer_index=self.config.naive_transformer_index,
            track_provenance=self.config.track_provenance,
        )
        if not self.always_fallback:
            solver.enable_support_tracking()
        solver.solve()
        if not self.always_fallback:
            self._warm_probe_indices(solver)
        return solver

    @staticmethod
    def _warm_probe_indices(solver: Solver) -> None:
        """Materialize the column indices :mod:`~repro.incremental.
        firing` probes, so the first delta doesn't pay their builds —
        ``Relation.add``/``retract`` keep them current afterwards."""
        for relation, position_sets in (
            (solver.pts_rel, ((0,), (1,))),
            (solver.call_rel, ((0,), (1,))),
            (solver.reach_rel, ((0,),)),
            (solver.spts_rel, ((0,),)),
            (solver.texc_rel, ((0,),)),
        ):
            for positions in position_sets:
                relation.ensure_index(positions)

    def result(self):
        """An :class:`~repro.core.results.AnalysisResult` view of the
        current fixpoint (rebuilt per call; the solver may have been
        replaced by a fallback solve)."""
        from repro.core.results import AnalysisResult

        return AnalysisResult(self.config, self.solver)

    def relation_rows(self) -> Dict[str, Set[Tuple]]:
        """Copies of the current derived row sets (for parity checks)."""
        return {
            kind: set(getattr(self.solver, kind)) for kind in DERIVED_KINDS
        }

    # -- the one entry point -------------------------------------------

    def apply_delta(self, delta: FactDelta) -> DeltaResult:
        """Patch the fixpoint for ``delta``; returns the net changes.

        The delta is applied to ``self.facts`` *in place* (the domain
        closes over it).  Falls back to a from-scratch solve for edits
        outside the maintainable fragment — the result is identical
        either way, only the cost differs.
        """
        start = time.perf_counter()
        reason = self._fallback_reason(delta)
        if reason is not None:
            return self._fallback(delta, reason, start)
        solver = self.solver

        # 1. Kill enumeration — against pre-edit inputs and the current
        #    derived relations, so every recorded instance involving a
        #    removed input atom is found.
        kills: Set[Tuple[Tuple, Tuple]] = set()
        for relation, rows in delta.removed.items():
            for row in rows:
                for kind, fact, why in input_firings(solver, relation, row):
                    kills.add(((kind,) + tuple(fact), (why[0], why[1])))

        # 2. Install the edited inputs, rebuilding only the join
        #    multimaps derived from the touched relations.
        touched = set(delta.added) | set(delta.removed)
        if delta.parent_added or delta.parent_removed:
            touched.add("invocation_parent")
        delta.apply_to(self.facts)
        solver._build_input_indices(only=touched)

        # 3. Overdelete: drop the killed instances from the support
        #    graph, then retract every fact with any derivation through
        #    one, cascading along ``uses``.
        queue: deque = deque()
        for conclusion, instance in kills:
            self._discard_instance(conclusion, instance)
            queue.append(conclusion)
        retracted: List[Tuple] = []
        overdeleted: Set[Tuple] = set()
        while queue:
            conclusion = queue.popleft()
            if conclusion in overdeleted:
                continue
            overdeleted.add(conclusion)
            if not solver.retract_derived(conclusion[0], conclusion[1:]):
                continue
            retracted.append(conclusion)
            for (_rule, _premises, dependent) in solver.uses.get(
                conclusion, ()
            ):
                queue.append(dependent)

        # 4. Rederive + additions, one drain.  Swapping in a logging
        #    worklist harvests everything the drain derives.
        logger = _LoggingDeque()
        plain_worklist = solver._worklist
        solver._worklist = logger
        try:
            for relation, rows in delta.added.items():
                for row in rows:
                    for kind, fact, why in input_firings(
                        solver, relation, row
                    ):
                        self._replay(kind, fact, why)
            # Seed-and-drain to fixpoint: a retracted fact is rederived
            # as soon as some surviving instance has all its premises
            # back.  One pass is not enough — a premise may itself be
            # rederived mid-drain by a rule that does not re-fire the
            # dependent instance (the worklist rules are seeded from
            # one designated premise side), so re-scan until a full
            # pass seeds nothing.
            while True:
                solver._drain()
                seeded = False
                for conclusion in retracted:
                    if self._present(conclusion):
                        continue
                    for (rule, premises) in solver.support.get(
                        conclusion, ()
                    ):
                        if all(self._present(p) for p in premises):
                            self._replay(
                                conclusion[0], conclusion[1:],
                                (rule, premises, "rederived"),
                            )
                            seeded = True
                            break
                if not seeded:
                    break
        finally:
            solver._worklist = plain_worklist

        # 5. Purge: facts that stayed deleted leave the support graph,
        #    keeping every stored instance backed by live facts.
        readded = {(kind,) + tuple(fact) for kind, fact in logger.log}
        retracted_set = set(retracted)
        dead = retracted_set - readded
        for conclusion in dead:
            self._purge(conclusion)

        net_added = readded - retracted_set
        net_removed = retracted_set - readded
        rederived = len(readded & retracted_set)
        added = self._group(net_added)
        removed = self._group(net_removed)
        total_rows = sum(
            len(getattr(solver, kind)) for kind in DERIVED_KINDS
        )
        seconds = time.perf_counter() - start
        self._account(delta, len(net_added), len(net_removed), rederived,
                      total_rows - len(net_added) - rederived, seconds)
        return DeltaResult(
            added=added, removed=removed, rederived=rederived,
            deleted=len(net_removed),
            reused=total_rows - len(net_added) - rederived,
            seconds=seconds,
        )

    # -- DRed plumbing --------------------------------------------------

    def _present(self, fact_key: Tuple) -> bool:
        relation = getattr(self.solver, f"{fact_key[0]}_rel")
        return fact_key[1:] in relation

    def _replay(self, kind: str, fact: Tuple, why: Tuple) -> None:
        getattr(self.solver, f"add_{kind}")(*fact, why=why)

    def _discard_instance(self, conclusion: Tuple, instance: Tuple) -> None:
        solver = self.solver
        bucket = solver.support.get(conclusion)
        if bucket is not None:
            bucket.discard(instance)
            if not bucket:
                del solver.support[conclusion]
        entry = (instance[0], instance[1], conclusion)
        for premise in instance[1]:
            uses_bucket = solver.uses.get(premise)
            if uses_bucket is not None:
                uses_bucket.discard(entry)
                if not uses_bucket:
                    del solver.uses[premise]

    def _purge(self, fact_key: Tuple) -> None:
        """Remove a permanently-deleted fact from the support graph."""
        solver = self.solver
        for (rule, premises) in solver.support.pop(fact_key, ()):
            entry = (rule, premises, fact_key)
            for premise in premises:
                bucket = solver.uses.get(premise)
                if bucket is not None:
                    bucket.discard(entry)
                    if not bucket:
                        del solver.uses[premise]
        for (rule, premises, conclusion) in list(
            solver.uses.pop(fact_key, ())
        ):
            bucket = solver.support.get(conclusion)
            if bucket is not None:
                bucket.discard((rule, premises))
                if not bucket:
                    del solver.support[conclusion]
            for premise in premises:
                if premise != fact_key:
                    other = solver.uses.get(premise)
                    if other is not None:
                        other.discard((rule, premises, conclusion))
                        if not other:
                            del solver.uses[premise]

    @staticmethod
    def _group(fact_keys: Set[Tuple]) -> Dict[str, Set[Tuple]]:
        out: Dict[str, Set[Tuple]] = {}
        for fact_key in fact_keys:
            out.setdefault(fact_key[0], set()).add(fact_key[1:])
        return out

    # -- fallback -------------------------------------------------------

    def _fallback_reason(self, delta: FactDelta) -> Optional[str]:
        if self.always_fallback:
            return "eliminate_subsumed drops facts without support"
        if self.solver.support is None:
            return "solver has no support graph"
        if delta.main_method_change is not None:
            return "entry point changed"
        if delta.remaps_entity():
            return "allocation site or call site re-mapped"
        return None

    def _fallback(
        self, delta: FactDelta, reason: str, start: float
    ) -> DeltaResult:
        before = self.relation_rows()
        delta.apply_to(self.facts)
        self.solver = self._fresh_solve()
        after = self.relation_rows()
        added = {
            kind: after[kind] - before[kind]
            for kind in DERIVED_KINDS
            if after[kind] - before[kind]
        }
        removed = {
            kind: before[kind] - after[kind]
            for kind in DERIVED_KINDS
            if before[kind] - after[kind]
        }
        total_rows = sum(len(rows) for rows in after.values())
        net_added = sum(len(rows) for rows in added.values())
        seconds = time.perf_counter() - start
        self.stats.fallback_solves += 1
        self._account(
            delta, net_added,
            sum(len(rows) for rows in removed.values()),
            0, total_rows - net_added, seconds,
        )
        return DeltaResult(
            added=added, removed=removed, rederived=0,
            deleted=sum(len(rows) for rows in removed.values()),
            reused=total_rows - net_added, seconds=seconds,
            fallback=True, reason=reason,
        )

    def _account(self, delta: FactDelta, added: int, deleted: int,
                 rederived: int, reused: int, seconds: float) -> None:
        self.stats.deltas_applied += 1
        self.stats.input_rows_added += delta.total_added
        self.stats.input_rows_removed += delta.total_removed
        self.stats.tuples_added += added
        self.stats.tuples_deleted += deleted
        self.stats.tuples_rederived += rederived
        self.stats.tuples_reused += reused
        self.stats.delta_seconds += seconds
