"""Incremental evaluation: fact deltas and DRed maintenance.

The batch pipeline (``frontend`` facts → ``core`` solver → ``service``)
re-solves from scratch on every program change.  This package maintains
a solved fixpoint under *edits* instead:

* :mod:`repro.incremental.delta` — :class:`FactDelta`, a typed
  add/remove edit set over the frontend's input relations, with
  builders that diff two fact sets or two programs and a JSON codec
  for the wire protocol;
* :mod:`repro.incremental.firing` — enumeration of the rule instances
  a single input row participates in, used symmetrically to seed
  additions and to kill support on removals;
* :mod:`repro.incremental.solver` — :class:`IncrementalSolver`,
  support-counted semi-naive maintenance for additions plus DRed
  (delete-and-rederive) for retractions over the batch
  :class:`~repro.core.solver.Solver`;
* :mod:`repro.incremental.edits` — coherent random edit generation for
  the equivalence sweeps and the edit-churn benchmark.

The live-update surface (``AnalysisService.apply_delta`` and the
``update`` op of the JSON-lines protocol) lives in
:mod:`repro.service` and builds on this package.
"""

from repro.incremental.delta import (
    FactDelta,
    copy_facts,
    diff_facts,
    diff_programs,
)
from repro.incremental.solver import DeltaResult, DeltaStats, IncrementalSolver

__all__ = [
    "FactDelta",
    "copy_facts",
    "diff_facts",
    "diff_programs",
    "DeltaResult",
    "DeltaStats",
    "IncrementalSolver",
]
