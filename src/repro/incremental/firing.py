"""Rule-instance enumeration for single input rows.

Given a solved :class:`~repro.core.solver.Solver` and one input-relation
row, :func:`input_firings` yields every rule instance the row
participates in, joining the row against the *current* derived
relations.  Each yield is ``(kind, fact, why)`` where ``kind`` names the
derived relation, ``fact`` is the full conclusion tuple (the positional
arguments of the matching ``add_*``), and ``why`` is byte-identical to
the triple the batch rules would record.

That identity is the load-bearing property: the incremental engine uses
the same enumeration for both directions of an edit —

* **additions** replay each instance through ``add_*`` (recording fresh
  support) and let the worklist drain the cascade;
* **removals** turn each instance into a support-graph kill,
  ``(conclusion, (why[0], why[1]))``, matching exactly what
  :meth:`Solver._note_support` recorded when the instance first fired.

Every enumerator mirrors one rule block of the solver (same premise
order, same note string, same ``None`` guards on domain operations);
the equivalence sweeps in ``tests/incremental/`` pin the mirror.
Removal enumeration must run *before* the fact set is mutated (it reads
the solver's input indices); addition enumeration must run *after*
(so paired additions — e.g. an ``actual`` row and its ``formal`` — see
each other).
"""

from __future__ import annotations

from typing import Iterator, Tuple

Firing = Tuple[str, Tuple, Tuple]


def _pts_of(solver, var: str):
    return solver.pts_rel.lookup((0,), (var,))


def _pts_by_heap(solver, heap: str):
    return solver.pts_rel.lookup((1,), (heap,))


def _calls_at(solver, inv: str):
    return solver.call_rel.lookup((0,), (inv,))


def _calls_of(solver, method: str):
    return solver.call_rel.lookup((1,), (method,))


def _reach_of(solver, method: str):
    return solver.reach_rel.lookup((0,), (method,))


def _spts_of(solver, fld: str):
    return solver.spts_rel.lookup((0,), (fld,))


def _texc_of(solver, method: str):
    return solver.texc_rel.lookup((0,), (method,))


def _fire_assign(solver, row) -> Iterator[Firing]:
    src, dst = row
    for (_, heap, trans) in _pts_of(solver, src):
        yield ("pts", (dst, heap, trans),
               ("ASSIGN", (("pts", src, heap, trans),), f"{dst} = {src}"))


def _fire_load(solver, row) -> Iterator[Firing]:
    base, fld, dst = row
    for (_, heap, trans) in _pts_of(solver, base):
        yield ("hload", (heap, fld, dst, trans),
               ("LOAD", (("pts", base, heap, trans),),
                f"{dst} = {base}.{fld}"))


def _fire_store(solver, row) -> Iterator[Firing]:
    value, fld, base = row
    domain = solver.domain
    for (_, heap, trans) in _pts_of(solver, value):
        for (_, base_heap, base_trans) in _pts_of(solver, base):
            composed = domain.comp(
                trans, domain.inv(base_trans), domain.h, domain.h
            )
            if composed is not None:
                yield ("hpts", (base_heap, fld, heap, composed),
                       ("STORE", (("pts", value, heap, trans),
                                  ("pts", base, base_heap, base_trans)),
                        f"{base}.{fld} = {value}"))


def _fire_actual(solver, row) -> Iterator[Firing]:
    arg, inv, position = row
    domain = solver.domain
    for (_, heap, trans) in _pts_of(solver, arg):
        for (_, callee, call_trans) in _calls_at(solver, inv):
            for formal in solver.formal_at.get((callee, position), ()):
                composed = domain.comp(trans, call_trans, domain.h, domain.m)
                if composed is not None:
                    yield ("pts", (formal, heap, composed),
                           ("PARAM", (("pts", arg, heap, trans),
                                      ("call", inv, callee, call_trans)),
                            f"argument {arg} passed at {inv}"))


def _fire_formal(solver, row) -> Iterator[Firing]:
    formal, method, position = row
    domain = solver.domain
    for (inv, _, call_trans) in _calls_of(solver, method):
        for (arg, arg_position) in solver.actual_by_inv.get(inv, ()):
            if arg_position != position:
                continue
            for (_, heap, trans) in _pts_of(solver, arg):
                composed = domain.comp(trans, call_trans, domain.h, domain.m)
                if composed is not None:
                    yield ("pts", (formal, heap, composed),
                           ("PARAM", (("pts", arg, heap, trans),
                                      ("call", inv, method, call_trans)),
                            f"argument {arg} passed at {inv}"))


def _fire_return_var(solver, row) -> Iterator[Firing]:
    ret_var, method = row
    domain = solver.domain
    for (inv, _, call_trans) in _calls_of(solver, method):
        for dst in solver.assign_return_by_inv.get(inv, ()):
            for (_, heap, trans) in _pts_of(solver, ret_var):
                composed = domain.comp(
                    trans, domain.inv(call_trans), domain.h, domain.m
                )
                if composed is not None:
                    yield ("pts", (dst, heap, composed),
                           ("RET", (("pts", ret_var, heap, trans),
                                    ("call", inv, method, call_trans)),
                            f"{ret_var} returned to {dst} at {inv}"))


def _fire_assign_return(solver, row) -> Iterator[Firing]:
    inv, dst = row
    domain = solver.domain
    for (_, callee, call_trans) in _calls_at(solver, inv):
        for ret_var in solver.returns_of_method.get(callee, ()):
            for (_, heap, trans) in _pts_of(solver, ret_var):
                composed = domain.comp(
                    trans, domain.inv(call_trans), domain.h, domain.m
                )
                if composed is not None:
                    yield ("pts", (dst, heap, composed),
                           ("RET", (("pts", ret_var, heap, trans),
                                    ("call", inv, callee, call_trans)),
                            f"{ret_var} returned to {dst} at {inv}"))


def _fire_assign_new(solver, row) -> Iterator[Firing]:
    heap, var, method = row
    domain = solver.domain
    for (_, context) in _reach_of(solver, method):
        yield ("pts", (var, heap, domain.record(context)),
               ("NEW", (("reach", method, context),),
                f"{var} = new … at {heap}"))


def _fire_static_invoke(solver, row) -> Iterator[Firing]:
    inv, callee, method = row
    domain = solver.domain
    for (_, context) in _reach_of(solver, method):
        yield ("call", (inv, callee, domain.merge_s(inv, context)),
               ("STATIC", (("reach", method, context),),
                f"static call {inv} in {method}"))


def _fire_static_store(solver, row) -> Iterator[Firing]:
    var, fld = row
    domain = solver.domain
    for (_, heap, trans) in _pts_of(solver, var):
        yield ("spts", (fld, heap, domain.to_global(trans)),
               ("SSTORE", (("pts", var, heap, trans),), f"{fld} = {var}"))


def _fire_static_load(solver, row) -> Iterator[Firing]:
    fld, var, method = row
    domain = solver.domain
    for (_, context) in _reach_of(solver, method):
        for (_, heap, trans) in _spts_of(solver, fld):
            yield ("pts", (var, heap, domain.from_global(trans, context)),
                   ("SLOAD", (("spts", fld, heap, trans),
                              ("reach", method, context)),
                    f"{var} = {fld}"))


def _fire_throw_var(solver, row) -> Iterator[Firing]:
    var, method = row
    for (_, heap, trans) in _pts_of(solver, var):
        yield ("texc", (method, heap, trans),
               ("THROW", (("pts", var, heap, trans),),
                f"throw {var} in {method}"))


def _fire_catch_var(solver, row) -> Iterator[Firing]:
    var, method = row
    for (_, heap, trans) in _texc_of(solver, method):
        yield ("pts", (var, heap, trans),
               ("ECATCH", (("texc", method, heap, trans),),
                f"caught by {var} in {method}"))


def _virt_instances(solver, inv, recv, signature, heap, trans,
                    only_callee=None) -> Iterator[Firing]:
    """The VIRT conclusions for one dispatch × one receiver pts fact."""
    domain = solver.domain
    heap_class = solver.heap_type_of.get(heap)
    if heap_class is None:
        return
    for callee in solver.implements_at.get((heap_class, signature), ()):
        if only_callee is not None and callee != only_callee:
            continue
        edge = domain.merge(heap, inv, trans)
        if edge is None:
            continue
        yield ("call", (inv, callee, edge),
               ("VIRT", (("pts", recv, heap, trans),),
                f"{inv} dispatches to {callee} via {heap}"))
        this_var = solver.this_var_of.get(callee)
        if this_var is not None:
            composed = domain.comp(trans, edge, domain.h, domain.m)
            if composed is not None:
                yield ("pts", (this_var, heap, composed),
                       ("VIRT", (("pts", recv, heap, trans),
                                 ("call", inv, callee, edge)),
                        f"receiver {recv} bound to this of {callee}"))


def _fire_virtual_invoke(solver, row) -> Iterator[Firing]:
    inv, recv, signature = row
    for (_, heap, trans) in _pts_of(solver, recv):
        yield from _virt_instances(solver, inv, recv, signature, heap, trans)


def _fire_heap_type(solver, row) -> Iterator[Firing]:
    heap, _heap_class = row
    for (recv, _, trans) in _pts_by_heap(solver, heap):
        for (inv, signature) in solver.virtual_by_recv.get(recv, ()):
            yield from _virt_instances(
                solver, inv, recv, signature, heap, trans
            )


def _fire_implements(solver, row) -> Iterator[Firing]:
    callee, heap_class, signature = row
    for (inv, recv, site_signature) in solver.facts.virtual_invoke:
        if site_signature != signature:
            continue
        for (_, heap, trans) in _pts_of(solver, recv):
            if solver.heap_type_of.get(heap) != heap_class:
                continue
            yield from _virt_instances(
                solver, inv, recv, signature, heap, trans,
                only_callee=callee,
            )


def _fire_this_var(solver, row) -> Iterator[Firing]:
    _this, method = row
    for (inv, recv, signature) in solver.facts.virtual_invoke:
        for (_, heap, trans) in _pts_of(solver, recv):
            for firing in _virt_instances(
                solver, inv, recv, signature, heap, trans,
                only_callee=method,
            ):
                if firing[0] == "pts":
                    yield firing


_FIRINGS = {
    "assign": _fire_assign,
    "load": _fire_load,
    "store": _fire_store,
    "actual": _fire_actual,
    "formal": _fire_formal,
    "return_var": _fire_return_var,
    "assign_return": _fire_assign_return,
    "assign_new": _fire_assign_new,
    "static_invoke": _fire_static_invoke,
    "static_store": _fire_static_store,
    "static_load": _fire_static_load,
    "throw_var": _fire_throw_var,
    "catch_var": _fire_catch_var,
    "virtual_invoke": _fire_virtual_invoke,
    "heap_type": _fire_heap_type,
    "implements": _fire_implements,
    "this_var": _fire_this_var,
}


def input_firings(solver, relation: str, row: Tuple) -> Iterator[Firing]:
    """All rule instances ``row`` participates in, against the current
    derived relations.  Unknown relations raise ``ValueError``."""
    enumerate_firings = _FIRINGS.get(relation)
    if enumerate_firings is None:
        raise ValueError(f"no rule consumes input relation {relation!r}")
    return enumerate_firings(solver, row)
