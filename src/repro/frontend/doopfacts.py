"""Doop-style tab-separated ``.facts`` directory reader/writer.

The paper's evaluation consumes relations produced by Doop's Soot-based
fact generator.  This module serializes a :class:`FactSet` to — and
reconstructs one from — a directory of TSV files in Doop's on-disk
convention (one relation per file, one tuple per line, tab-separated,
UTF-8).  The file names follow Doop's vocabulary where a direct
counterpart exists:

======================================  ==========================
file                                     FactSet relation
======================================  ==========================
``ActualParam.facts``                    ``actual``        (O, I, Z)
``AssignLocal.facts``                    ``assign``        (Z, Y)
``AssignHeapAllocation.facts``           ``assign_new``    (H, Y, P)
``AssignReturnValue.facts``              ``assign_return`` (I, Y)
``FormalParam.facts``                    ``formal``        (O, P, Y)
``HeapAllocation-Type.facts``            ``heap_type``     (H, T)
``MethodImplements.facts``               ``implements``    (Q, T, S)
``LoadInstanceField.facts``              ``load``          (Y, F, Z)
``ReturnVar.facts``                      ``return_var``    (Z, P)
``StaticMethodInvocation.facts``         ``static_invoke`` (I, Q, P)
``StoreInstanceField.facts``             ``store``         (X, F, Z)
``ThisVar.facts``                        ``this_var``      (Y, Q)
``VirtualMethodInvocation.facts``        ``virtual_invoke``(I, Z, S)
``HeapAllocation-Class.facts``           ``class_of``      (H, C)
``InvocationParent.facts``               ``invocation_parent`` (I, P)
``MainMethod.facts``                     ``main_method``   (P)
======================================  ==========================

Note the Doop argument orders for ``ActualParam`` and ``FormalParam``
(index first), which this module follows on disk while the in-memory
:class:`FactSet` keeps the paper's literal order.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence, Tuple

from repro.frontend.factgen import FactSet

_SIMPLE_FILES = (
    ("AssignLocal.facts", "assign"),
    ("AssignHeapAllocation.facts", "assign_new"),
    ("AssignReturnValue.facts", "assign_return"),
    ("HeapAllocation-Type.facts", "heap_type"),
    ("MethodImplements.facts", "implements"),
    ("LoadInstanceField.facts", "load"),
    ("ReturnVar.facts", "return_var"),
    ("StaticMethodInvocation.facts", "static_invoke"),
    ("StoreInstanceField.facts", "store"),
    ("ThisVar.facts", "this_var"),
    ("VirtualMethodInvocation.facts", "virtual_invoke"),
    ("StoreStaticField.facts", "static_store"),
    ("LoadStaticField.facts", "static_load"),
    ("ThrowVar.facts", "throw_var"),
    ("CatchVar.facts", "catch_var"),
)


class DoopFactsError(ValueError):
    """Raised on malformed facts directories."""


def _write_rows(path: str, rows: Iterable[Sequence[str]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for row in sorted(tuple(map(str, r)) for r in rows):
            for item in row:
                if "\t" in item or "\n" in item:
                    raise DoopFactsError(
                        f"value {item!r} contains a tab/newline and cannot be"
                        f" serialized to {os.path.basename(path)}"
                    )
            handle.write("\t".join(row) + "\n")


def _read_rows(path: str, arity: int) -> List[Tuple[str, ...]]:
    if not os.path.exists(path):
        return []
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            row = tuple(line.split("\t"))
            if len(row) != arity:
                raise DoopFactsError(
                    f"{os.path.basename(path)}:{lineno}: expected {arity}"
                    f" columns, got {len(row)}"
                )
            rows.append(row)
    return rows


def write_facts(facts: FactSet, directory: str) -> None:
    """Serialize ``facts`` into ``directory`` (created if necessary)."""
    os.makedirs(directory, exist_ok=True)
    for filename, attr in _SIMPLE_FILES:
        _write_rows(os.path.join(directory, filename), getattr(facts, attr))
    _write_rows(
        os.path.join(directory, "ActualParam.facts"),
        [(str(o), i, z) for (z, i, o) in facts.actual],
    )
    _write_rows(
        os.path.join(directory, "FormalParam.facts"),
        [(str(o), p, y) for (y, p, o) in facts.formal],
    )
    _write_rows(
        os.path.join(directory, "HeapAllocation-Class.facts"),
        facts.class_of.items(),
    )
    _write_rows(
        os.path.join(directory, "InvocationParent.facts"),
        facts.invocation_parent.items(),
    )
    _write_rows(
        os.path.join(directory, "MainMethod.facts"),
        [(facts.main_method,)] if facts.main_method else [],
    )


def read_facts(directory: str) -> FactSet:
    """Reconstruct a :class:`FactSet` from a facts directory."""
    if not os.path.isdir(directory):
        raise DoopFactsError(f"{directory!r} is not a directory")
    facts = FactSet()
    arities = {
        "assign": 2, "assign_new": 3, "assign_return": 2, "heap_type": 2,
        "implements": 3, "load": 3, "return_var": 2, "static_invoke": 3,
        "store": 3, "this_var": 2, "virtual_invoke": 3,
        "static_store": 2, "static_load": 3, "throw_var": 2, "catch_var": 2,
    }
    for filename, attr in _SIMPLE_FILES:
        rows = _read_rows(os.path.join(directory, filename), arities[attr])
        getattr(facts, attr).update(rows)
    for (o, i, z) in _read_rows(os.path.join(directory, "ActualParam.facts"), 3):
        facts.actual.add((z, i, _int(o, "ActualParam")))
    for (o, p, y) in _read_rows(os.path.join(directory, "FormalParam.facts"), 3):
        facts.formal.add((y, p, _int(o, "FormalParam")))
    for (h, c) in _read_rows(
        os.path.join(directory, "HeapAllocation-Class.facts"), 2
    ):
        facts.class_of[h] = c
    for (i, p) in _read_rows(os.path.join(directory, "InvocationParent.facts"), 2):
        facts.invocation_parent[i] = p
    mains = _read_rows(os.path.join(directory, "MainMethod.facts"), 1)
    if len(mains) > 1:
        raise DoopFactsError("MainMethod.facts lists more than one entry point")
    facts.main_method = mains[0][0] if mains else None
    return facts


def _int(text: str, where: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise DoopFactsError(f"{where}: parameter index {text!r} is not an integer")


def facts_equal(a: FactSet, b: FactSet) -> bool:
    """Structural equality over every relation and auxiliary map."""
    return (
        all(
            getattr(a, name) == getattr(b, name)
            for name in a.relation_names()
        )
        and a.class_of == b.class_of
        and a.invocation_parent == b.invocation_parent
        and a.main_method == b.main_method
    )
