"""Fact generation: IR programs → the input relations of paper Figure 3.

This plays the role of Doop's Soot-based fact generator.  The produced
:class:`FactSet` carries exactly the input predicates the deduction
rules consume:

=====================  =======================================================
relation                meaning (paper Figure 3)
=====================  =======================================================
``actual(Z, I, O)``     ``Z`` is the ``O``-th actual of invocation ``I``
``assign(Z, Y)``        statement ``Y = Z`` (value flows ``Z → Y``)
``assign_new(H, Y, P)`` ``Y = new …`` at site ``H`` inside method ``P``
``assign_return(I, Y)`` the return value of invocation ``I`` is stored in ``Y``
``formal(Y, P, O)``     ``Y`` is the ``O``-th formal of method ``P``
``heap_type(H, T)``     objects allocated at ``H`` have type ``T``
``implements(Q, T, S)`` invoking signature ``S`` on a ``T`` dispatches to ``Q``
``load(Y, F, Z)``       statement ``Z = Y.F``
``return_var(Z, P)``    ``Z`` is a return value of method ``P``
``static_invoke(I,Q,P)`` invocation ``I`` in method ``P`` calls static ``Q``
``store(X, F, Z)``      statement ``Z.F = X``
``this_var(Y, Q)``      ``Y`` is the receiver variable of method ``Q``
``virtual_invoke(I,Z,S)`` invocation ``I`` with receiver ``Z`` and signature ``S``
``static_store(X, F)``  statement ``Cls.F = X`` (static field)
``static_load(F, Y, P)`` statement ``Y = Cls.F`` inside method ``P``
``throw_var(X, P)``     statement ``throw X`` inside method ``P``
``catch_var(Y, P)``     ``Y`` is bound by a ``catch`` clause of method ``P``
=====================  =======================================================

Static fields and exceptions are the extensions the paper notes are
"present in the evaluated implementation" though elided from its
presentation; the matching deduction rules live in
:mod:`repro.core.solver` (SSTORE/SLOAD and THROW/EPROP/ECATCH).  Static
field signatures are qualified by the *declaring* class (``Base.f``
even when accessed as ``Sub.f``), resolved through the hierarchy here.

plus three auxiliary maps that are properties of the program rather than
relations joined by the rules: ``class_of`` (allocation site → the class
implementing the containing method; used by type sensitivity),
``invocation_parent`` (call site → containing method; used by the CFL
module) and ``main_method``.

Field signatures are the bare field names: the analysis is field-
sensitive but untyped, so two unrelated classes sharing a field name are
conservatively merged — the same choice a signature-keyed analysis makes
when the frontend cannot resolve static types.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.frontend import ir


@dataclass
class FactSet:
    """The input relations of the parameterized deduction rules."""

    actual: Set[Tuple[str, str, int]] = field(default_factory=set)
    assign: Set[Tuple[str, str]] = field(default_factory=set)
    assign_new: Set[Tuple[str, str, str]] = field(default_factory=set)
    assign_return: Set[Tuple[str, str]] = field(default_factory=set)
    formal: Set[Tuple[str, str, int]] = field(default_factory=set)
    heap_type: Set[Tuple[str, str]] = field(default_factory=set)
    implements: Set[Tuple[str, str, str]] = field(default_factory=set)
    load: Set[Tuple[str, str, str]] = field(default_factory=set)
    return_var: Set[Tuple[str, str]] = field(default_factory=set)
    static_invoke: Set[Tuple[str, str, str]] = field(default_factory=set)
    store: Set[Tuple[str, str, str]] = field(default_factory=set)
    this_var: Set[Tuple[str, str]] = field(default_factory=set)
    virtual_invoke: Set[Tuple[str, str, str]] = field(default_factory=set)
    static_store: Set[Tuple[str, str]] = field(default_factory=set)
    static_load: Set[Tuple[str, str, str]] = field(default_factory=set)
    throw_var: Set[Tuple[str, str]] = field(default_factory=set)
    catch_var: Set[Tuple[str, str]] = field(default_factory=set)

    class_of: Dict[str, str] = field(default_factory=dict)
    invocation_parent: Dict[str, str] = field(default_factory=dict)
    main_method: Optional[str] = None

    def class_of_heap(self, heap: str) -> str:
        """``classOf(H)`` for type sensitivity (paper Section 5)."""
        return self.class_of[heap]

    def relation_names(self) -> Tuple[str, ...]:
        """The names of the thirteen input relations, in schema order."""
        return (
            "actual", "assign", "assign_new", "assign_return", "formal",
            "heap_type", "implements", "load", "return_var",
            "static_invoke", "store", "this_var", "virtual_invoke",
            "static_store", "static_load", "throw_var", "catch_var",
        )

    def counts(self) -> Dict[str, int]:
        """Sizes of all input relations (for reports and tests)."""
        return {name: len(getattr(self, name)) for name in self.relation_names()}

    def digest(self) -> str:
        """sha256 over the canonical serialisation of every relation.

        Rows are sorted per relation and the auxiliary maps are sorted
        by key, so the digest depends only on fact *content* — the
        determinism anchor for benchmark inputs: same workload spec ⇒
        same digest, across invocations and interpreters.
        """
        hasher = hashlib.sha256()
        for name in self.relation_names():
            hasher.update(name.encode("utf-8"))
            hasher.update(b"\x00")
            for row in sorted(getattr(self, name)):
                hasher.update(repr(row).encode("utf-8"))
                hasher.update(b"\x01")
        for label, mapping in (
            ("class_of", self.class_of),
            ("invocation_parent", self.invocation_parent),
        ):
            hasher.update(label.encode("utf-8"))
            hasher.update(b"\x00")
            for key in sorted(mapping):
                hasher.update(("%s=%s" % (key, mapping[key])).encode("utf-8"))
                hasher.update(b"\x01")
        hasher.update(("main=%s" % self.main_method).encode("utf-8"))
        return hasher.hexdigest()


class FactGenError(ValueError):
    """Raised on programs the rules cannot model (e.g. duplicate labels)."""


def generate_facts(program: ir.Program) -> FactSet:
    """Produce the input relations for ``program``.

    Raises :class:`FactGenError` on duplicate site labels, calls to
    unresolvable static methods, or a missing entry point.
    """
    program.validate()
    facts = FactSet()
    seen_sites: Dict[str, str] = {}

    def claim_site(label: str, where: str) -> None:
        if label in seen_sites:
            raise FactGenError(
                f"site label {label!r} used in both {seen_sites[label]} and {where}"
            )
        seen_sites[label] = where

    for cls in program.classes.values():
        for method in cls.methods.values():
            _method_facts(program, facts, cls, method, claim_site)

    _hierarchy_facts(program, facts)

    if program.main_class is not None:
        facts.main_method = program.main_method.qualified_name
    else:
        raise FactGenError("program has no static main(String[]) entry point")
    return facts


def _method_facts(program, facts, cls, method, claim_site) -> None:
    name = method.qualified_name
    for index, param in enumerate(method.params):
        facts.formal.add((param, name, index))
    if not method.is_static:
        facts.this_var.add((method.this_var, name))
    for catch in method.catch_vars():
        facts.catch_var.add((catch, name))

    def static_field_signature(cls_name: str, field_name: str) -> str:
        declaring = program.resolve_static_field(cls_name, field_name)
        if declaring is None:
            raise FactGenError(
                f"no static field {field_name!r} in class {cls_name!r}"
                f" (used in {name})"
            )
        return f"{declaring}.{field_name}"

    for stmt in method.body:
        if isinstance(stmt, ir.Assign):
            facts.assign.add((stmt.src, stmt.dst))
        elif isinstance(stmt, ir.New):
            claim_site(stmt.label, name)
            facts.assign_new.add((stmt.label, stmt.dst, name))
            facts.heap_type.add((stmt.label, stmt.type))
            facts.class_of[stmt.label] = cls.name
        elif isinstance(stmt, ir.Load):
            facts.load.add((stmt.base, stmt.field, stmt.dst))
        elif isinstance(stmt, ir.Store):
            facts.store.add((stmt.src, stmt.field, stmt.base))
        elif isinstance(stmt, ir.Return):
            facts.return_var.add((stmt.src, name))
        elif isinstance(stmt, ir.StaticStore):
            facts.static_store.add(
                (stmt.src, static_field_signature(stmt.cls, stmt.field))
            )
        elif isinstance(stmt, ir.StaticLoad):
            facts.static_load.add(
                (static_field_signature(stmt.cls, stmt.field), stmt.dst, name)
            )
        elif isinstance(stmt, ir.Throw):
            facts.throw_var.add((stmt.src, name))
        elif isinstance(stmt, ir.VirtualCall):
            claim_site(stmt.label, name)
            signature = f"{stmt.name}/{len(stmt.args)}"
            facts.virtual_invoke.add((stmt.label, stmt.base, signature))
            facts.invocation_parent[stmt.label] = name
            for index, arg in enumerate(stmt.args):
                facts.actual.add((arg, stmt.label, index))
            if stmt.dst is not None:
                facts.assign_return.add((stmt.label, stmt.dst))
        elif isinstance(stmt, ir.StaticCall):
            claim_site(stmt.label, name)
            signature = f"{stmt.name}/{len(stmt.args)}"
            callee = program.resolve_method(stmt.cls, signature)
            if callee is None or not callee.is_static:
                raise FactGenError(
                    f"cannot resolve static call {stmt.cls}.{stmt.name}"
                    f"/{len(stmt.args)} in {name}"
                )
            facts.static_invoke.add((stmt.label, callee.qualified_name, name))
            facts.invocation_parent[stmt.label] = name
            for index, arg in enumerate(stmt.args):
                facts.actual.add((arg, stmt.label, index))
            if stmt.dst is not None:
                facts.assign_return.add((stmt.label, stmt.dst))
        else:
            raise FactGenError(f"unknown statement {stmt!r} in {name}")


def _hierarchy_facts(program, facts) -> None:
    """``implements(Q, T, S)``: dynamic-dispatch resolution per type."""
    signatures = {
        m.signature
        for cls in program.classes.values()
        for m in cls.methods.values()
        if not m.is_static
    }
    for cls_name in program.classes:
        for signature in signatures:
            target = program.resolve_method(cls_name, signature)
            if target is not None and not target.is_static:
                facts.implements.add(
                    (target.qualified_name, cls_name, signature)
                )


def facts_from_source(source: str) -> FactSet:
    """Convenience: parse Java-subset source text and generate facts."""
    from repro.frontend.parser import parse_program

    return generate_facts(parse_program(source))
