"""Parser for the analyzed Java subset.

Builds :class:`repro.frontend.ir.Program` values from source text.  The
subset covers exactly the constructs the paper's deduction rules model
(Figure 2's statement table plus classes, inheritance and both flavours
of invocation), which suffices to transcribe every figure of the paper
verbatim and to express the synthetic DaCapo-analogue workloads.

Supported grammar (informally)::

    program   := class*
    class     := mods "class" ID ("extends" ID)? "{" member* "}"
    member    := mods type ID ";"                      field
               | mods type ID "(" params ")" block     method
    stmt      := type ID ("=" expr)? ";"               local declaration
               | lvalue "=" expr ";"
               | call-expr ";"
               | "return" expr? ";"
               | "if" "(" … ")" stmt ("else" stmt)?    condition ignored
               | "while" "(" … ")" stmt                condition ignored
               | block
    lvalue    := ID | ID "." ID | "this" "." ID
    expr      := "new" ID "(" ")"
               | atom ("." ID ("(" atoms ")")?)?       load or virtual call
               | ID "(" atoms ")"                      unqualified call
               | atom | "null" | literal
    atom      := ID | "this"

Two conventions from the paper's figures are honoured:

* a trailing ``// label`` comment names the allocation or call site
  introduced by the statement on that line (``x = new T(); // h1``);
* ``if (...)`` / ``while (...)`` conditions are skipped wholesale — the
  analysis is flow-insensitive, so both branches simply contribute their
  statements.

Name resolution: an unqualified identifier is a local/parameter if one
is in scope, otherwise a field of the enclosing class (an implicit
``this.f``, as used in the paper's Figure 7).  An unqualified call
``m(a)`` resolves to a static call if the enclosing class hierarchy
declares a static ``m`` of matching arity, and to a virtual call on
``this`` otherwise (both forms appear in the paper's figures).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend import ir
from repro.frontend.lexer import Token, tokenize


class ParseError(SyntaxError):
    """Raised on malformed input, with source position information."""


class _Parser:
    def __init__(self, tokens: List[Token]):
        # Comments are pulled out of the main stream but remembered by
        # line so statement labels can be recovered.
        self.comments_by_line = {
            t.line: t.text for t in tokens if t.kind == "COMMENT"
        }
        self.tokens = [t for t in tokens if t.kind != "COMMENT"]
        self.pos = 0
        # Pre-scan the class names so that `Cls.f` static-field accesses
        # resolve even when `Cls` is declared later in the file.
        self.class_names = {
            self.tokens[i + 1].text
            for i in range(len(self.tokens) - 1)
            if self.tokens[i].kind == "KEYWORD"
            and self.tokens[i].text == "class"
            and self.tokens[i + 1].kind == "ID"
        }

    # -- token utilities ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        t = self.peek()
        return ParseError(f"{message} (at line {t.line}:{t.column}, got {t!r})")

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            raise self.error(f"expected {text or kind}")
        return self.next()

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    # -- program structure ---------------------------------------------------

    def parse_program(self) -> ir.Program:
        program = ir.Program()
        while not self.at("EOF"):
            program.add_class(self.parse_class())
        for cls in program.classes.values():
            if "main/1" in cls.methods and cls.methods["main/1"].is_static:
                program.main_class = cls.name
                break
        program.validate()
        return program

    def _modifiers(self) -> Tuple[bool, ...]:
        is_static = False
        while self.peek().kind == "KEYWORD" and self.peek().text in (
            "public", "private", "protected", "static", "final", "abstract",
        ):
            if self.next().text == "static":
                is_static = True
        return (is_static,)

    def parse_class(self) -> ir.ClassDecl:
        self._modifiers()
        self.expect("KEYWORD", "class")
        name = self.expect("ID").text
        superclass = None
        if self.accept("KEYWORD", "extends"):
            superclass = self.expect("ID").text
        decl = ir.ClassDecl(name, superclass)
        self.expect("PUNCT", "{")
        while not self.accept("PUNCT", "}"):
            self.parse_member(decl)
        return decl

    def _type(self) -> str:
        token = self.peek()
        if token.kind == "KEYWORD" and token.text == "void":
            self.next()
            return "void"
        name = self.expect("ID").text
        while self.at("PUNCT", "["):
            self.next()
            self.expect("PUNCT", "]")
            name += "[]"
        return name

    def parse_member(self, decl: ir.ClassDecl) -> None:
        (is_static,) = self._modifiers()
        self._type()  # declared type; the analysis is type-agnostic
        name = self.expect("ID").text
        if self.accept("PUNCT", ";"):
            if is_static:
                decl.static_fields.append(name)
            else:
                decl.fields.append(name)
            return
        if self.at("PUNCT", "="):
            raise self.error("field initializers are not supported")
        self.expect("PUNCT", "(")
        method = ir.Method(name=name, cls=decl.name, is_static=is_static)
        params: List[str] = []
        param_names: List[str] = []
        if not self.at("PUNCT", ")"):
            while True:
                self._type()
                pname = self.expect("ID").text
                param_names.append(pname)
                params.append(method.local(pname))
                if not self.accept("PUNCT", ","):
                    break
        self.expect("PUNCT", ")")
        method.params = tuple(params)
        decl.add_method(method)
        body = _MethodBody(self, method, decl, param_names)
        body.parse_block()

    def parse_source_label(self, line: int) -> Optional[str]:
        """The ``// label`` comment attached to ``line``, if any."""
        text = self.comments_by_line.get(line)
        if text and text.split():
            return text.split()[0].rstrip(";,")
        return None


class _MethodBody:
    """Parses one method body, resolving names and desugaring expressions."""

    def __init__(
        self,
        parser: _Parser,
        method: ir.Method,
        decl: ir.ClassDecl,
        param_names: List[str],
    ):
        self.p = parser
        self.method = method
        self.decl = decl
        self.locals = set(param_names)
        self.temp_count = 0
        self.auto_site = 0

    # -- helpers --------------------------------------------------------------

    def fresh_temp(self) -> str:
        self.temp_count += 1
        name = f"$t{self.temp_count}"
        self.locals.add(name)
        return name

    def site_label(self, line: int, kind: str) -> str:
        label = self.p.parse_source_label(line)
        if label is not None:
            return label
        self.auto_site += 1
        return f"{self.method.qualified_name}/{kind}${self.auto_site}"

    def resolve_var(self, name: str) -> str:
        """A readable/writable variable: local or implicit this-field."""
        if name == "this":
            if self.method.is_static:
                raise self.p.error(f"'this' used in static {self.method.name}")
            return self.method.this_var
        if name in self.locals:
            return self.method.local(name)
        return name  # caller decides whether it is a field or a class name

    def is_local(self, name: str) -> bool:
        return name == "this" or name in self.locals

    def is_field_of_this(self, name: str) -> bool:
        # Only meaningful in instance methods.
        if self.method.is_static:
            return False
        # Field resolution walks the (possibly still partial) hierarchy:
        # within a single class declaration only local fields are known.
        return name in self.decl.fields

    def emit(self, stmt) -> None:
        self.method.body.append(stmt)

    # -- statements -------------------------------------------------------------

    def parse_block(self) -> None:
        self.p.expect("PUNCT", "{")
        while not self.p.accept("PUNCT", "}"):
            self.parse_statement()

    def parse_statement(self) -> None:
        if self.p.at("PUNCT", "{"):
            self.parse_block()
            return
        if self.p.at("KEYWORD", "if"):
            self.p.next()
            self._skip_parenthesized()
            self.parse_statement()
            if self.p.accept("KEYWORD", "else"):
                self.parse_statement()
            return
        if self.p.at("KEYWORD", "while"):
            self.p.next()
            self._skip_parenthesized()
            self.parse_statement()
            return
        if self.p.at("KEYWORD", "return"):
            self.p.next()
            if self.p.accept("PUNCT", ";"):
                return
            var = self.parse_expression_into_var(allow_temp=True)
            self.p.expect("PUNCT", ";")
            if var is not None:
                self.emit(ir.Return(var))
            return
        if self.p.at("KEYWORD", "throw"):
            self.p.next()
            var = self.parse_expression_into_var(allow_temp=True)
            self.p.expect("PUNCT", ";")
            if var is not None:
                self.emit(ir.Throw(var))
            return
        if self.p.at("KEYWORD", "try"):
            self.p.next()
            self.parse_block()
            saw_catch = False
            while self.p.at("KEYWORD", "catch"):
                saw_catch = True
                self.p.next()
                self.p.expect("PUNCT", "(")
                self.p._type()  # exception type: catch-all approximation
                name = self.p.expect("ID").text
                self.p.expect("PUNCT", ")")
                self.locals.add(name)
                self.method.add_catch_var(self.method.local(name))
                self.parse_block()
            if self.p.accept("KEYWORD", "finally"):
                self.parse_block()
            elif not saw_catch:
                raise self.p.error("try without catch or finally")
            return
        self.parse_simple_statement()

    def _is_class_name(self, name: str) -> bool:
        return not self.is_local(name) and name in self.p.class_names

    def _parse_store(self, base_name: str, field_name: str) -> None:
        if self._is_class_name(base_name):
            src = self.parse_expression_into_var(allow_temp=True)
            if src is not None:
                self.emit(ir.StaticStore(base_name, field_name, src))
            return
        base = self._require_var(base_name)
        src = self.parse_expression_into_var(allow_temp=True)
        if src is not None:
            self.emit(ir.Store(base, field_name, src))

    def _skip_parenthesized(self) -> None:
        self.p.expect("PUNCT", "(")
        depth = 1
        while depth:
            token = self.p.next()
            if token.kind == "EOF":
                raise self.p.error("unterminated condition")
            if token.kind == "PUNCT" and token.text == "(":
                depth += 1
            elif token.kind == "PUNCT" and token.text == ")":
                depth -= 1

    def parse_simple_statement(self) -> None:
        # Local declaration: `Type name ...` — two IDs in a row (allowing
        # array types), where the second is followed by `=` or `;`.
        if self._at_declaration():
            self.p.next()  # type name
            while self.p.at("PUNCT", "["):
                self.p.next()
                self.p.expect("PUNCT", "]")
            name = self.p.expect("ID").text
            self.locals.add(name)
            dst = self.method.local(name)
            if self.p.accept("PUNCT", ";"):
                return
            self.p.expect("PUNCT", "=")
            self.parse_rhs_into(dst)
            self.p.expect("PUNCT", ";")
            return

        # Otherwise: assignment or bare call.
        if self.p.at("KEYWORD", "this") or self.p.at("ID"):
            first = self.p.next()
            if self.p.at("PUNCT", "."):
                self.p.next()
                second = self.p.expect("ID").text
                if self.p.at("PUNCT", "("):
                    # base.m(args); or Class.m(args);
                    self._parse_call(first.text, second, dst=None, line=first.line)
                    self.p.expect("PUNCT", ";")
                    return
                self.p.expect("PUNCT", "=")
                self._parse_store(first.text, second)
                self.p.expect("PUNCT", ";")
                return
            if self.p.at("PUNCT", "("):
                # unqualified call m(args);
                self._parse_call(None, first.text, dst=None, line=first.line)
                self.p.expect("PUNCT", ";")
                return
            self.p.expect("PUNCT", "=")
            name = first.text
            if self.is_local(name):
                self.parse_rhs_into(self.resolve_var(name))
            elif self.is_field_of_this(name) or self._field_somewhere(name):
                # implicit this.f = …
                src = self.parse_expression_into_var(allow_temp=True)
                if src is not None:
                    self.emit(
                        ir.Store(self.method.this_var, name, src)
                    )
                self.p.expect("PUNCT", ";")
                return
            else:
                # Treat as a fresh local introduced by assignment.
                self.locals.add(name)
                self.parse_rhs_into(self.method.local(name))
            self.p.expect("PUNCT", ";")
            return
        raise self.p.error("expected a statement")

    def _field_somewhere(self, name: str) -> bool:
        # A field inherited from a superclass that is declared in the same
        # source file earlier; conservative textual check.
        return not self.method.is_static and name not in self.locals

    def _at_declaration(self) -> bool:
        if not self.p.at("ID"):
            return False
        offset = 1
        while (
            self.p.peek(offset).kind == "PUNCT"
            and self.p.peek(offset).text == "["
        ):
            if not (
                self.p.peek(offset + 1).kind == "PUNCT"
                and self.p.peek(offset + 1).text == "]"
            ):
                return False
            offset += 2
        return self.p.peek(offset).kind == "ID"

    # -- expressions --------------------------------------------------------------

    def parse_rhs_into(self, dst: str) -> None:
        """Parse an expression and bind its value to ``dst``."""
        token = self.p.peek()
        if token.kind == "KEYWORD" and token.text == "null":
            self.p.next()
            return
        if token.kind in ("NUMBER", "STRING") or (
            token.kind == "KEYWORD" and token.text in ("true", "false")
        ):
            self.p.next()
            return
        if token.kind == "KEYWORD" and token.text == "new":
            self._parse_new(dst)
            return
        # atom, atom.field, atom.m(args), or unqualified m(args)
        first = self.p.next()
        if first.kind == "KEYWORD" and first.text == "this":
            base_name = "this"
        elif first.kind == "ID":
            base_name = first.text
        else:
            raise self.p.error("expected an expression")

        if self.p.at("PUNCT", "("):
            self._parse_call(None, base_name, dst=dst, line=first.line)
            return
        if self.p.at("PUNCT", "."):
            self.p.next()
            member = self.p.expect("ID").text
            if self.p.at("PUNCT", "("):
                self._parse_call(base_name, member, dst=dst, line=first.line)
                return
            if self._is_class_name(base_name):
                self.emit(ir.StaticLoad(dst, base_name, member))
                return
            # Field load: base.f
            base = self._require_var(base_name)
            self.emit(ir.Load(dst, base, member))
            return
        # Plain variable (or implicit this-field) copy.
        if self.is_local(base_name):
            self.emit(ir.Assign(dst, self.resolve_var(base_name)))
        elif not self.method.is_static:
            self.emit(ir.Load(dst, self.method.this_var, base_name))
        else:
            raise self.p.error(f"unknown variable {base_name!r}")

    def parse_expression_into_var(self, allow_temp: bool) -> Optional[str]:
        """Parse an expression, returning a variable holding its value."""
        token = self.p.peek()
        if token.kind == "KEYWORD" and token.text == "null":
            self.p.next()
            return None
        if token.kind in ("NUMBER", "STRING"):
            self.p.next()
            return None
        # Simple variable fast-path (no desugaring temp needed).
        if (
            (token.kind == "ID" or (token.kind == "KEYWORD" and token.text == "this"))
            and self.p.peek(1).kind == "PUNCT"
            and self.p.peek(1).text in (";", ",", ")")
            and self.is_local(token.text)
        ):
            self.p.next()
            return self.resolve_var(token.text)
        if not allow_temp:
            raise self.p.error("expected a variable")
        temp = self.fresh_temp()
        self.parse_rhs_into(self.method.local(temp))
        return self.method.local(temp)

    def _require_var(self, name: str) -> str:
        if self.is_local(name):
            return self.resolve_var(name)
        if not self.method.is_static:
            # implicit this-field used as a base: load it into a temp.
            temp = self.method.local(self.fresh_temp())
            self.emit(ir.Load(temp, self.method.this_var, name))
            return temp
        raise self.p.error(f"unknown variable {name!r}")

    def _parse_new(self, dst: str) -> None:
        line = self.p.expect("KEYWORD", "new").line
        type_name = self.p.expect("ID").text
        self.p.expect("PUNCT", "(")
        if not self.p.at("PUNCT", ")"):
            raise self.p.error("constructor arguments are not supported")
        self.p.expect("PUNCT", ")")
        label = self.site_label(line, "new")
        self.emit(ir.New(dst, type_name, label))

    def _parse_args(self) -> Tuple[str, ...]:
        self.p.expect("PUNCT", "(")
        args: List[str] = []
        if not self.p.at("PUNCT", ")"):
            while True:
                var = self.parse_expression_into_var(allow_temp=True)
                if var is None:
                    raise self.p.error("null/literal arguments are not supported")
                args.append(var)
                if not self.p.accept("PUNCT", ","):
                    break
        self.p.expect("PUNCT", ")")
        return tuple(args)

    def _parse_call(
        self,
        base_name: Optional[str],
        method_name: str,
        dst: Optional[str],
        line: int,
    ) -> None:
        args = self._parse_args()
        label = self.site_label(line, "invk")
        if base_name is None:
            # Unqualified call: static if the enclosing class declares (or
            # will dispatch to) a static method of this name, else this.m().
            target = self._lookup_unqualified(method_name, len(args))
            if target is not None and target.is_static:
                self.emit(
                    ir.StaticCall(dst, target.cls, method_name, args, label)
                )
                return
            if self.method.is_static and target is None:
                raise self.p.error(
                    f"unqualified call to unknown method {method_name!r}"
                )
            if self.method.is_static:
                raise self.p.error(
                    f"instance method {method_name!r} called from static context"
                )
            self.emit(
                ir.VirtualCall(
                    dst, self.method.this_var,
                    method_name, args, label,
                )
            )
            return
        if self.is_local(base_name):
            self.emit(
                ir.VirtualCall(
                    dst, self.resolve_var(base_name), method_name, args, label
                )
            )
            return
        if not self.method.is_static and self.is_field_of_this(base_name):
            temp = self.method.local(self.fresh_temp())
            self.emit(ir.Load(temp, self.method.this_var, base_name))
            self.emit(ir.VirtualCall(dst, temp, method_name, args, label))
            return
        # Otherwise treat the base as a class name: a static call.
        self.emit(ir.StaticCall(dst, base_name, method_name, args, label))

    def _lookup_unqualified(self, name: str, arity: int) -> Optional[ir.Method]:
        signature = f"{name}/{arity}"
        if signature in self.decl.methods:
            return self.decl.methods[signature]
        return None


def parse_program(source: str) -> ir.Program:
    """Parse Java-subset source text into an IR :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()
