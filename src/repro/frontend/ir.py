"""Intermediate representation of the analyzed Java subset.

The analysis is flow-insensitive (paper Section 2.1: a Pointer
Assignment Graph abstracts away control flow), so a method body is just
a bag of pointer-relevant statements in three-address form:

* :class:`Assign`       — ``dst = src;``
* :class:`New`          — ``dst = new T();`` with an allocation-site label
* :class:`Load`         — ``dst = base.field;``
* :class:`Store`        — ``base.field = src;``
* :class:`VirtualCall`  — ``dst = base.m(a1, …);`` with a call-site label
* :class:`StaticCall`   — ``dst = T.m(a1, …);`` with a call-site label
* :class:`Return`       — ``return src;``

Variables are plain strings, already resolved by the parser
(:mod:`repro.frontend.parser`): locals are qualified ``Class.method/x``,
the receiver is ``Class.method/this``.  Labels for allocation and call
sites come from trailing ``// label`` comments when present (so the
paper's figures can be transcribed verbatim) and are auto-generated
otherwise.

The IR is deliberately independent of the parser: the synthetic workload
generators (:mod:`repro.bench.workloads`) build IR programs directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Assign:
    """``dst = src;``"""

    dst: str
    src: str


@dataclass(frozen=True)
class New:
    """``dst = new type();`` at allocation site ``label``."""

    dst: str
    type: str
    label: str


@dataclass(frozen=True)
class Load:
    """``dst = base.field;``"""

    dst: str
    base: str
    field: str


@dataclass(frozen=True)
class Store:
    """``base.field = src;``"""

    base: str
    field: str
    src: str


@dataclass(frozen=True)
class VirtualCall:
    """``dst = base.name(args);`` at call site ``label`` (dst optional)."""

    dst: Optional[str]
    base: str
    name: str
    args: Tuple[str, ...]
    label: str


@dataclass(frozen=True)
class StaticCall:
    """``dst = cls.name(args);`` at call site ``label`` (dst optional)."""

    dst: Optional[str]
    cls: str
    name: str
    args: Tuple[str, ...]
    label: str


@dataclass(frozen=True)
class Return:
    """``return src;``"""

    src: str


@dataclass(frozen=True)
class StaticLoad:
    """``dst = cls.field;`` where ``field`` is a static field."""

    dst: str
    cls: str
    field: str


@dataclass(frozen=True)
class StaticStore:
    """``cls.field = src;`` where ``field`` is a static field."""

    cls: str
    field: str
    src: str


@dataclass(frozen=True)
class Throw:
    """``throw src;``"""

    src: str


Statement = object  # union of the dataclasses above


@dataclass
class Method:
    """A method definition.

    ``params`` lists the formal parameter variable names (already
    qualified); ``signature`` is the dynamic-dispatch key ``name/arity``.
    """

    name: str
    cls: str
    params: Tuple[str, ...] = ()
    is_static: bool = False
    body: List[Statement] = field(default_factory=list)

    @property
    def qualified_name(self) -> str:
        """The method identifier used in facts, e.g. ``"T.id"``."""
        return f"{self.cls}.{self.name}"

    @property
    def signature(self) -> str:
        """The dispatch signature ``name/arity``."""
        return f"{self.name}/{len(self.params)}"

    @property
    def this_var(self) -> str:
        """The receiver variable of an instance method."""
        return f"{self.qualified_name}/this"

    def local(self, name: str) -> str:
        """Qualify a local variable name."""
        return f"{self.qualified_name}/{name}"

    def catch_vars(self) -> List[str]:
        """Variables bound by ``catch`` clauses (set by the parser)."""
        return list(getattr(self, "_catch_vars", ()))

    def add_catch_var(self, var: str) -> None:
        if not hasattr(self, "_catch_vars"):
            self._catch_vars = []
        self._catch_vars.append(var)


@dataclass
class ClassDecl:
    """A class with an optional superclass, fields, and methods.

    ``fields`` are instance fields; ``static_fields`` are class-level
    (accessed as ``Cls.f`` and shared program-wide).
    """

    name: str
    superclass: Optional[str] = None
    fields: List[str] = field(default_factory=list)
    static_fields: List[str] = field(default_factory=list)
    methods: Dict[str, Method] = field(default_factory=dict)

    def add_method(self, method: Method) -> Method:
        self.methods[method.signature] = method
        return method


@dataclass
class Program:
    """A whole program: classes plus the designated entry point."""

    classes: Dict[str, ClassDecl] = field(default_factory=dict)
    main_class: Optional[str] = None

    def add_class(self, cls: ClassDecl) -> ClassDecl:
        if cls.name in self.classes:
            raise ValueError(f"duplicate class {cls.name!r}")
        self.classes[cls.name] = cls
        return cls

    # -- hierarchy queries -------------------------------------------------

    def superclass_chain(self, name: str) -> List[str]:
        """``name`` and its ancestors, nearest first; cycles rejected."""
        chain: List[str] = []
        seen = set()
        current: Optional[str] = name
        while current is not None:
            if current in seen:
                raise ValueError(f"inheritance cycle through {current!r}")
            seen.add(current)
            chain.append(current)
            decl = self.classes.get(current)
            current = decl.superclass if decl else None
        return chain

    def resolve_method(self, cls_name: str, signature: str) -> Optional[Method]:
        """Dynamic dispatch: the nearest definition of ``signature``."""
        for ancestor in self.superclass_chain(cls_name):
            decl = self.classes.get(ancestor)
            if decl and signature in decl.methods:
                return decl.methods[signature]
        return None

    def resolve_field(self, cls_name: str, field_name: str) -> Optional[str]:
        """The nearest class declaring ``field_name``, or ``None``."""
        for ancestor in self.superclass_chain(cls_name):
            decl = self.classes.get(ancestor)
            if decl and field_name in decl.fields:
                return ancestor
        return None

    def resolve_static_field(self, cls_name: str, field_name: str) -> Optional[str]:
        """The nearest class declaring static ``field_name``, or ``None``."""
        for ancestor in self.superclass_chain(cls_name):
            decl = self.classes.get(ancestor)
            if decl and field_name in decl.static_fields:
                return ancestor
        return None

    def subclasses_of(self, name: str) -> List[str]:
        """All classes ``C`` with ``name`` in their superclass chain."""
        return [
            c for c in self.classes
            if name in self.superclass_chain(c)
        ]

    @property
    def main_method(self) -> Method:
        """The entry point ``main`` (signature ``main/1``)."""
        if self.main_class is None:
            raise ValueError("program has no main class")
        method = self.classes[self.main_class].methods.get("main/1")
        if method is None:
            raise ValueError(f"class {self.main_class!r} has no main(String[])")
        return method

    def all_methods(self) -> List[Method]:
        """Every method in the program, in declaration order."""
        return [m for cls in self.classes.values() for m in cls.methods.values()]

    def validate(self) -> None:
        """Sanity-check structural invariants (used by generators/tests)."""
        for cls in self.classes.values():
            if cls.superclass is not None and cls.superclass not in self.classes:
                raise ValueError(
                    f"class {cls.name!r} extends unknown {cls.superclass!r}"
                )
            self.superclass_chain(cls.name)  # raises on cycles
        if self.main_class is not None:
            _ = self.main_method

