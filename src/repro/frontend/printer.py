"""Pretty-printer: IR programs → Java-subset source.

The inverse of :mod:`repro.frontend.parser`, up to local-variable
qualification: printing an IR program and re-parsing it yields a
program with identical analysis facts (round-trip-tested, including on
the synthetic workloads and the fuzz corpus).  Useful for inspecting
generated workloads and for shipping them as plain source.

Printing strategy: every IR variable ``Cls.m/x`` is printed as its
unqualified tail; fresh temporaries keep their ``$``-free spelling
(``$t1`` becomes ``t_1``); allocation and call sites are annotated with
their ``// label`` comments so labels survive the round trip.
"""

from __future__ import annotations

from typing import List

from repro.frontend import ir


def _strip(var: str) -> str:
    name = var.rsplit("/", 1)[-1]
    return name.replace("$", "t_")


def _var(method: ir.Method, var: str) -> str:
    if var == method.this_var:
        return "this"
    return _strip(var)


class _MethodPrinter:
    def __init__(self, method: ir.Method):
        self.method = method
        self.declared = {_strip(p) for p in method.params}
        self.lines: List[str] = []

    def declare(self, var: str) -> str:
        name = _var(self.method, var)
        if name == "this" or name in self.declared:
            return name
        self.declared.add(name)
        return f"Object {name}"

    def line(self, text: str) -> None:
        self.lines.append(f"        {text}")

    def print_body(self) -> List[str]:
        method = self.method
        # Catch clauses first, so body statements may reference the
        # bound variable (the analysis is flow-insensitive, so position
        # does not change the facts).
        for catch in method.catch_vars():
            name = _var(method, catch)
            self.declared.add(name)
            self.lines.append(
                f"        try {{ }} catch (Exception {name}) {{ }}"
            )
        for statement in method.body:
            if isinstance(statement, ir.Assign):
                self.line(
                    f"{self.declare(statement.dst)} ="
                    f" {_var(method, statement.src)};"
                )
            elif isinstance(statement, ir.New):
                self.line(
                    f"{self.declare(statement.dst)} = new"
                    f" {statement.type}(); // {statement.label}"
                )
            elif isinstance(statement, ir.Load):
                self.line(
                    f"{self.declare(statement.dst)} ="
                    f" {_var(method, statement.base)}.{statement.field};"
                )
            elif isinstance(statement, ir.Store):
                self.line(
                    f"{_var(method, statement.base)}.{statement.field} ="
                    f" {_var(method, statement.src)};"
                )
            elif isinstance(statement, ir.StaticLoad):
                self.line(
                    f"{self.declare(statement.dst)} ="
                    f" {statement.cls}.{statement.field};"
                )
            elif isinstance(statement, ir.StaticStore):
                self.line(
                    f"{statement.cls}.{statement.field} ="
                    f" {_var(method, statement.src)};"
                )
            elif isinstance(statement, ir.Return):
                self.line(f"return {_var(method, statement.src)};")
            elif isinstance(statement, ir.Throw):
                self.line(f"throw {_var(method, statement.src)};")
            elif isinstance(statement, ir.VirtualCall):
                self._call(
                    statement, f"{_var(method, statement.base)}.{statement.name}"
                )
            elif isinstance(statement, ir.StaticCall):
                self._call(statement, f"{statement.cls}.{statement.name}")
            else:
                raise ValueError(f"unprintable statement {statement!r}")
        return self.lines

    def _call(self, statement, callee: str) -> None:
        method = self.method
        args = ", ".join(_var(method, a) for a in statement.args)
        call = f"{callee}({args}); // {statement.label}"
        if statement.dst is not None:
            call = f"{self.declare(statement.dst)} = {call}"
        self.line(call)


def format_method(method: ir.Method) -> str:
    modifier = "static " if method.is_static else ""
    if method.name == "main" and method.is_static:
        signature = "public static void main(String[] args)"
    else:
        params = ", ".join(f"Object {_strip(p)}" for p in method.params)
        signature = f"{modifier}Object {method.name}({params})"
    body = _MethodPrinter(method).print_body()
    if not body:
        return f"    {signature} {{ }}"
    joined = "\n".join(body)
    return f"    {signature} {{\n{joined}\n    }}"


def format_class(decl: ir.ClassDecl) -> str:
    extends = f" extends {decl.superclass}" if decl.superclass else ""
    members: List[str] = []
    members += [f"    Object {name};" for name in decl.fields]
    members += [f"    static Object {name};" for name in decl.static_fields]
    members += [format_method(m) for m in decl.methods.values()]
    body = "\n".join(members)
    if body:
        return f"class {decl.name}{extends} {{\n{body}\n}}"
    return f"class {decl.name}{extends} {{ }}"


def format_program(program: ir.Program) -> str:
    """Render a whole IR program as parsable Java-subset source."""
    return "\n\n".join(
        format_class(decl) for decl in program.classes.values()
    ) + "\n"
