"""The paper's example programs, transcribed verbatim.

These are the Java programs of Figures 1, 5 and 7 of the paper
(reformatted only so that the trailing ``// label`` comments do not
swallow closing braces).  They are shipped as part of the library
because the tests, examples and benchmarks all pin their expected
analysis results against them.
"""

#: Figure 1 — the context-sensitivity motivating example.  A 1-call-site
#: analysis is precise for ``x1``/``y1`` but not ``x2``/``y2``; a
#: 1-object analysis is precise for ``x2``/``y2`` but not ``x1``/``y1``;
#: one level of heap context separates the objects returned by ``m``.
FIGURE_1 = """
class T {
    Object f;
    Object id(Object p) { return p; }
    Object id2(Object q) {
        Object t = id(q); // c1
        return t;
    }
    Object m() {
        return new T(); // m1
    }
    public static void main(String[] args) {
        Object x = new Object(); // h1
        Object y = new Object(); // h2
        Object r = new T(); // h3
        Object x1 = r.id(x); // c2
        Object y1 = r.id(y); // c3
        Object s = new T(); // h4
        Object t = new T(); // h5
        Object x2 = s.id2(x); // c4
        Object y2 = t.id2(y); // c5
        T a = s.m(); // c6
        T b = t.m(); // c7
        a.f = x;
        Object z = b.f;
    }
}
"""

#: Figure 5 — the precision/compactness comparison at m = 1, h = 1 under
#: call-site sensitivity.  Context strings derive ten pts facts and
#: cannot distinguish the objects flowing out of call sites ``m1`` and
#: ``m2``; transformer strings derive five.
FIGURE_5 = """
class T {
    static T id(T p) { return p; }
    static T m() {
        T h = new T(); // h1
        T r = id(h); // id1
        return r;
    }
    public static void main(String[] args) {
        T x = m(); // m1
        T y = m(); // m2
    }
}
"""

#: Figure 7 — points-to relationships reaching a variable through
#: multiple data-flow paths, producing *subsuming facts* under a
#: 1-call+H transformer-string analysis (paper Section 8).
FIGURE_7 = """
class T {
    Object f;
    void m() {
        Object v = new Object(); // h1
        if (...) {
            f = v;
            v = f;
        }
    }
    public static void main(String[] args) {
        T t = new T(); // h2
        t.m(); // c1
    }
}
"""

#: A witness for the Section 6 discussion: the transformer-string
#: abstraction is *less precise* than context strings under type
#: sensitivity.  Class ``C`` is instantiated in two different classes
#: ``X`` and ``Y``, so its methods are reached under type contexts
#: ``(X, …)`` and ``(Y, …)``; the two ``T`` allocations inside ``C``
#: share ``classOf = C``, so both ``self()`` call edges become the same
#: transformer ``Ĉ`` and the return composition conflates them —
#: context strings keep the distinct heap-context tails ``(C, X)`` vs
#: ``(C, Y)``.  Under 2-type+H, ``u`` points to {s1} with context
#: strings but {s1, s2} with transformer strings; under call-site and
#: object sensitivity the abstractions agree (Theorem 6.2).
TYPE_PRECISION_LOSS = """
class T { T self() { return this; } }
class C {
    Object m1() {
        T r = new T(); // s1
        Object x = r.self(); // k1
        return x;
    }
    Object m2() {
        T r = new T(); // s2
        Object x = r.self(); // k2
        return x;
    }
}
class X {
    Object go() {
        C c = new C(); // cx
        Object r = c.m1(); // kx
        return r;
    }
}
class Y {
    Object go() {
        C c = new C(); // cy
        Object r = c.m2(); // ky
        return r;
    }
}
class M {
    public static void main(String[] args) {
        X x = new X(); // hx
        Y y = new Y(); // hy
        Object u = x.go(); // c1
        Object v = y.go(); // c2
    }
}
"""

#: A witness that Theorem 6.2's "strictly more precise" is strict:
#: Figure 5's program extended with one heap round trip.  At 1-call+H
#: the context-string analysis carries the spurious cross products
#: pts(x, h1, (m2, ·)) / pts(y, h1, (m1, ·)) (visible in Figure 5's
#: table for ``r``), so a store through ``x`` reaches a load through
#: ``y`` and ``w`` spuriously points to ``hv``; the transformer-string
#: analysis keeps ``x ↦ m̌1`` and ``y ↦ m̌2``, whose composition through
#: the heap is ``⊥`` — ``w`` points to nothing.  (On the paper's
#: benchmark suite the two abstractions happened to coincide; this is
#: the theoretical gap made concrete.)
STRICT_PRECISION_WITNESS = """
class T {
    Object g;
    static T id(T p) { return p; }
    static T m() {
        T h = new T(); // h1
        T r = T.id(h); // id1
        return r;
    }
    public static void main(String[] args) {
        T x = T.m(); // m1
        T y = T.m(); // m2
        Object v = new Object(); // hv
        x.g = v;
        Object w = y.g;
    }
}
"""

ALL_PROGRAMS = {
    "figure1": FIGURE_1,
    "figure5": FIGURE_5,
    "figure7": FIGURE_7,
}
