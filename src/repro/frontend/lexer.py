"""Lexer for the analyzed Java subset.

Produces a stream of :class:`Token` objects.  Two departures from a
conventional lexer serve the reproduction:

* trailing ``// label`` comments are *kept* (kind ``COMMENT``) because
  the paper's figures use them to name allocation and call sites
  (``x = new T(); // h1``), and the parser attaches them to the
  preceding statement as a site label;
* the ellipsis ``...`` is a token so that paper snippets like
  ``if(...)`` lex cleanly (conditions are ignored by the
  flow-insensitive analysis anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset(
    {
        "class", "extends", "static", "public", "private", "protected",
        "final", "abstract", "void", "new", "return", "if", "else",
        "while", "this", "null", "true", "false", "throw", "try",
        "catch", "finally",
    }
)

PUNCTUATION = (
    "...", "==", "!=", "&&", "||", "<=", ">=",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "!", "<", ">",
)


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is ``ID``, ``KEYWORD``, ``PUNCT``,
    ``COMMENT``, ``NUMBER``, ``STRING`` or ``EOF``."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class LexError(SyntaxError):
    """Raised on an unrecognized character."""


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, keeping line comments, dropping block comments."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(text: str) -> None:
        nonlocal i, line, col
        for ch in text:
            i += 1
            if ch == "\n":
                line += 1
                col = 1
            else:
                col += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(ch)
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            if end == -1:
                end = n
            text = source[i + 2 : end].strip()
            yield Token("COMMENT", text, line, col)
            advance(source[i:end])
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(f"unterminated block comment at line {line}")
            advance(source[i : end + 2])
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "KEYWORD" if text in KEYWORDS else "ID"
            yield Token(kind, text, line, col)
            advance(text)
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            text = source[i:j]
            yield Token("NUMBER", text, line, col)
            advance(text)
            continue
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                j += 2 if source[j] == "\\" else 1
            if j >= n:
                raise LexError(f"unterminated string literal at line {line}")
            text = source[i : j + 1]
            yield Token("STRING", text, line, col)
            advance(text)
            continue
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                yield Token("PUNCT", punct, line, col)
                advance(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at line {line}:{col}")
    yield Token("EOF", "", line, col)
