"""The field-flow language ``L_F`` and a generic CFL-reachability solver.

Section 2.1.1 of the paper defines ``L_F`` by the productions::

    flowsto → new flows*
    flowsto̅ → flows̅* new̅
    alias   → flowsto̅ flowsto
    flows   → assign | store[f] alias load[f]
    flows̅   → assign̅ | load̅[f] alias store̅[f]

over the alphabet Σ_F, where every edge has a backwards (barred)
counterpart.  ``x`` points to ``h`` iff there is an ``L_F``-path from
``h`` to ``x``.

This module provides:

* :func:`lf_grammar` — the ``L_F`` productions instantiated for a given
  field set, in normalized (≤2 symbols per right-hand side) form;
* :class:`CFLSolver` — a generic all-pairs CFL-reachability solver
  (Melski–Reps style worklist over derived edges), usable with any
  normalized grammar.  Cubic; intended for small graphs and as the
  executable specification against which the optimized
  :mod:`repro.cfl.solver` fixpoint is tested.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple


@dataclass(frozen=True)
class Production:
    """``lhs → rhs`` with ``len(rhs) ∈ {1, 2}`` (normalized)."""

    lhs: str
    rhs: Tuple[str, ...]

    def __post_init__(self):
        if not 1 <= len(self.rhs) <= 2:
            raise ValueError(f"production {self} is not normalized")


@dataclass(frozen=True)
class Grammar:
    """A normalized context-free grammar over edge-label symbols."""

    productions: Tuple[Production, ...]

    def symbols(self) -> FrozenSet[str]:
        out = set()
        for p in self.productions:
            out.add(p.lhs)
            out.update(p.rhs)
        return frozenset(out)


def bar(symbol: str) -> str:
    """The backwards counterpart of a symbol (involutive)."""
    return symbol[:-4] if symbol.endswith("_bar") else symbol + "_bar"


def lf_grammar(fields: Iterable[str]) -> Grammar:
    """``L_F`` for the given fields, normalized to binary productions.

    Non-terminals: ``flowsto``, ``flowsto_bar``, ``alias``, ``flows``,
    ``flows_bar`` plus the helper ``sa[f]`` (= ``store[f] alias``) and
    ``la[f]`` (= ``load_bar[f] alias``) introduced by normalization.
    """
    productions: List[Production] = [
        # flowsto → new | flowsto flows
        Production("flowsto", ("new",)),
        Production("flowsto", ("flowsto", "flows")),
        # flowsto̅ → new̅ | flows̅ flowsto̅
        Production("flowsto_bar", ("new_bar",)),
        Production("flowsto_bar", ("flows_bar", "flowsto_bar")),
        # alias → flowsto̅ flowsto
        Production("alias", ("flowsto_bar", "flowsto")),
        # flows → assign ;  flows̅ → assign̅
        Production("flows", ("assign",)),
        Production("flows_bar", ("assign_bar",)),
    ]
    for f in sorted(set(fields)):
        productions += [
            # flows → store[f] alias load[f]
            Production(f"sa[{f}]", (f"store[{f}]", "alias")),
            Production("flows", (f"sa[{f}]", f"load[{f}]")),
            # flows̅ → load̅[f] alias store̅[f]
            Production(f"la[{f}]", (f"load[{f}]_bar", "alias")),
            Production("flows_bar", (f"la[{f}]", f"store[{f}]_bar")),
        ]
    return Grammar(tuple(productions))


class CFLSolver:
    """All-pairs CFL-reachability over a labelled edge set.

    Edges are ``(source, label, target)`` triples; the solver derives
    every ``(source, nonterminal, target)`` edge licensed by the grammar
    using the classical worklist algorithm: when an edge ``(u, B, v)``
    is discovered, unary productions ``A → B`` yield ``(u, A, v)`` and
    binary productions ``A → B C`` / ``A → C B`` combine it with
    adjacent ``C`` edges.
    """

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.unary: Dict[str, List[str]] = defaultdict(list)
        self.binary_left: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
        self.binary_right: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
        for p in grammar.productions:
            if len(p.rhs) == 1:
                self.unary[p.rhs[0]].append(p.lhs)
            else:
                left, right = p.rhs
                self.binary_left[left].append((right, p.lhs))
                self.binary_right[right].append((left, p.lhs))

    def solve(
        self, edges: Iterable[Tuple[str, str, str]]
    ) -> Set[Tuple[str, str, str]]:
        """All derivable ``(source, symbol, target)`` edges (terminals
        included)."""
        derived: Set[Tuple[str, str, str]] = set()
        out_by: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        in_by: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        worklist: List[Tuple[str, str, str]] = []

        def add(source: str, symbol: str, target: str) -> None:
            edge = (source, symbol, target)
            if edge not in derived:
                derived.add(edge)
                out_by[(source, symbol)].add(target)
                in_by[(target, symbol)].add(source)
                worklist.append(edge)

        for (source, label, target) in edges:
            add(source, label, target)

        while worklist:
            source, symbol, target = worklist.pop()
            for lhs in self.unary[symbol]:
                add(source, lhs, target)
            # (source -symbol-> target)(target -right-> w)  =>  source -lhs-> w
            for (right, lhs) in self.binary_left[symbol]:
                for w in list(out_by[(target, right)]):
                    add(source, lhs, w)
            # (w -left-> source)(source -symbol-> target)  =>  w -lhs-> target
            for (left, lhs) in self.binary_right[symbol]:
                for w in list(in_by[(source, left)]):
                    add(w, lhs, target)
        return derived


def pag_terminal_edges(pag) -> Set[Tuple[str, str, str]]:
    """The terminal edge set of a PAG, with barred reverses, labelled in
    the grammar's vocabulary (field-indexed store/load)."""
    edges: Set[Tuple[str, str, str]] = set()
    for edge in pag.edges:
        if edge.label in ("store", "load"):
            label = f"{edge.label}[{edge.field}]"
        else:
            label = edge.label
        edges.add((edge.source, label, edge.target))
        edges.add((edge.target, bar(label), edge.source))
    return edges


def flows_to_pairs(pag) -> Set[Tuple[str, str]]:
    """All ``(heap, variable)`` pairs with an ``L_F``-path, via the
    generic solver (context-insensitive points-to, Section 2.1.1)."""
    solver = CFLSolver(lf_grammar(pag.fields()))
    derived = solver.solve(pag_terminal_edges(pag))
    heaps = pag.heap_nodes()
    return {
        (source, target)
        for (source, symbol, target) in derived
        if symbol == "flowsto" and source in heaps
    }
