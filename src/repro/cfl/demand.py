"""Demand-driven points-to queries over a PAG.

The CFL-reachability formulation's signature advantage (and the reason
the paper adapts its insight): a points-to query for one variable can be
answered by *local* reasoning — traversing backwards from the variable —
rather than computing the all-pairs relation (Sridharan et al.,
OOPSLA'05).  This module implements the demand-driven evaluation without
refinement: field accesses are matched precisely (no field-collapsing
approximation), the call graph is the one baked into the PAG, and only
the variables transitively *demanded* by the query are ever touched.

The answer set equals the exhaustive solver's for the demanded variable
(tested), while the fraction of the program explored — reported by
:meth:`DemandPointsTo.coverage` — is what a demand client saves; the
paper's future-work section anticipates pairing such workloads with
transformer strings.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Set, Tuple

from repro.cfl.pag import PAG


class DemandPointsTo:
    """Answers ``points_to(var)`` queries, exploring lazily.

    State is retained across queries, so repeated queries share work
    (the memoization a demand client relies on).
    """

    def __init__(self, pag: PAG):
        self.pag = pag
        self.demanded: Set[str] = set()
        # Queries answered (the analysis service and the query-latency
        # benchmark read this alongside the worklist demand engine's
        # matching counter).
        self.query_count = 0
        self._pts: Dict[str, Set[str]] = defaultdict(set)
        # store edges grouped by field: field -> [(value, base)]
        self._stores_by_field = defaultdict(list)
        for edge in pag.edges:
            if edge.label == "store":
                self._stores_by_field[edge.field].append(
                    (edge.source, edge.target)
                )

    def query(self, var: str) -> FrozenSet[str]:
        """The points-to set of ``var`` (exact w.r.t. the PAG)."""
        self.query_count += 1
        self._demand(var)
        self._solve()
        return frozenset(self._pts[var])

    def _demand(self, var: str) -> None:
        stack = [var]
        while stack:
            current = stack.pop()
            if current in self.demanded:
                continue
            self.demanded.add(current)
            # Everything the variable copies from is demanded
            # transitively; a load's base likewise.  Matching stores are
            # demanded during solving, once aliasing is discovered.
            for edge in self.pag.in_edges("assign", current):
                stack.append(edge.source)
            for edge in self.pag.in_edges("load", current):
                stack.append(edge.source)

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            demanded_before = len(self.demanded)
            for var in list(self.demanded):
                before = len(self._pts[var])
                self._expand(var)
                if len(self._pts[var]) != before:
                    changed = True
            # Expanding may demand new variables (store bases/values
            # discovered through aliasing); they need a round of their own.
            if len(self.demanded) != demanded_before:
                changed = True

    def _expand(self, var: str) -> None:
        pts = self._pts[var]
        for edge in self.pag.in_edges("new", var):
            pts.add(edge.source)
        for edge in self.pag.in_edges("assign", var):
            pts |= self._pts[edge.source]
        for edge in self.pag.in_edges("load", var):
            base = edge.source
            for heap in list(self._pts[base]):
                for (value, store_base) in self._stores_by_field[edge.field]:
                    # The store writes through an alias of our base?
                    self._demand_quiet(store_base)
                    if heap in self._pts[store_base]:
                        self._demand_quiet(value)
                        pts |= self._pts[value]

    def _demand_quiet(self, var: str) -> None:
        if var not in self.demanded:
            self._demand(var)

    def coverage(self) -> Tuple[int, int]:
        """``(demanded variables, total PAG variables)`` — the locality
        a demand-driven client enjoys."""
        variables = {
            n for n in self.pag.nodes() if n not in self.pag.heap_nodes()
        }
        return len(self.demanded & variables), len(variables)

    def stats(self) -> Dict[str, int]:
        """Uniform demand-engine counters, mirroring
        :meth:`repro.core.demand.DemandPointerAnalysis.stats`."""
        demanded, total = self.coverage()
        return {
            "queries": self.query_count,
            "demanded_vars": demanded,
            "total_vars": total,
        }
