"""Pointer Assignment Graphs (paper Section 2.1, Figure 2).

A PAG is the graph representation of a program over which the
CFL-reachability formulation runs: nodes are variables and heap
allocation sites, and edges carry the labels of the paper's Figure 2
(``new``, ``assign``, ``store[f]``, ``load[f]``), with interprocedural
``assign`` edges additionally tagged by the call site below the arrow.

Constructing the interprocedural edges requires a call graph; the paper
notes on-the-fly construction is essential for precision, so the default
builder takes the call graph produced by a (cheap, context-insensitive)
run of the rule-based analysis.  A class-hierarchy-analysis builder is
provided as the conservative alternative.

Reachability gating mirrors the deduction rules: ``new`` edges are only
added for allocations in reachable methods, so the exhaustive
CFL-reachability result coincides exactly with the context-insensitive
rule-based analysis (tested in ``tests/cfl/test_equivalence.py``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.frontend.factgen import FactSet


@dataclass(frozen=True)
class Edge:
    """A labelled PAG edge; ``call_site`` tags interprocedural assigns."""

    source: str
    target: str
    label: str            # "new" | "assign" | "store" | "load"
    field: Optional[str] = None
    call_site: Optional[str] = None
    entering: bool = True  # for call-tagged edges: entry (ĉ) vs exit (č)


@dataclass
class PAG:
    """A pointer assignment graph."""

    edges: List[Edge] = field(default_factory=list)
    #: Nodes standing for static fields (globals), not variables.
    static_field_nodes: Set[str] = field(default_factory=set)
    #: adjacency: label -> source -> [(target, field, call_site)]
    _out: Dict[str, Dict[str, List[Edge]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(list))
    )
    _in: Dict[str, Dict[str, List[Edge]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(list))
    )

    def add(self, edge: Edge) -> None:
        self.edges.append(edge)
        self._out[edge.label][edge.source].append(edge)
        self._in[edge.label][edge.target].append(edge)

    def out_edges(self, label: str, source: str) -> List[Edge]:
        """Edges with ``label`` leaving ``source``."""
        return self._out[label].get(source, [])

    def in_edges(self, label: str, target: str) -> List[Edge]:
        """Edges with ``label`` entering ``target``."""
        return self._in[label].get(target, [])

    def nodes(self) -> FrozenSet[str]:
        return frozenset(
            n for e in self.edges for n in (e.source, e.target)
        )

    def heap_nodes(self) -> FrozenSet[str]:
        """Sources of ``new`` edges."""
        return frozenset(e.source for e in self.edges if e.label == "new")

    def fields(self) -> FrozenSet[str]:
        return frozenset(
            e.field for e in self.edges if e.field is not None
        )

    def edge_count(self) -> int:
        return len(self.edges)


def cha_call_graph(facts: FactSet) -> Set[Tuple[str, str]]:
    """Class-hierarchy-analysis call graph: every virtual invocation may
    dispatch to any implementation of its signature, and every method is
    considered reachable.  Conservative but points-to-free."""
    graph: Set[Tuple[str, str]] = set()
    for (inv, callee, _caller) in facts.static_invoke:
        graph.add((inv, callee))
    implementations = defaultdict(set)
    for (method, _type, signature) in facts.implements:
        implementations[signature].add(method)
    for (inv, _recv, signature) in facts.virtual_invoke:
        for method in implementations[signature]:
            graph.add((inv, method))
    return graph


def analysis_call_graph(facts: FactSet) -> Tuple[Set[Tuple[str, str]], Set[str]]:
    """The on-the-fly call graph: run the context-insensitive rule-based
    analysis and return its call edges plus reachable-method set."""
    from repro.core.analysis import analyze
    from repro.core.config import config_by_name

    result = analyze(facts, config_by_name("insensitive"))
    return set(result.call_graph()), set(result.reachable_methods())


def build_pag(
    facts: FactSet,
    call_graph: Optional[Iterable[Tuple[str, str]]] = None,
    reachable: Optional[Set[str]] = None,
    receiver_points_to: Optional[dict] = None,
) -> PAG:
    """Build the PAG of Figure 2 for ``facts``.

    ``call_graph`` defaults to the on-the-fly (context-insensitive
    analysis) call graph, in which case ``reachable`` defaults to its
    reachable methods and ``receiver_points_to`` to its points-to sets
    (used to bind receiver *objects* to ``this`` per dispatch target —
    without it, a polymorphic receiver's whole points-to set reaches the
    ``this`` of every target, a strict over-approximation).  Pass
    :func:`cha_call_graph` output for the conservative variant (with
    ``reachable=None`` meaning "everything").
    """
    if call_graph is None:
        from repro.core.analysis import analyze
        from repro.core.config import config_by_name

        result = analyze(facts, config_by_name("insensitive"))
        call_graph = set(result.call_graph())
        if reachable is None:
            reachable = set(result.reachable_methods())
        if receiver_points_to is None:
            receiver_points_to = {}
            for (var, heap) in result.pts_ci():
                receiver_points_to.setdefault(var, set()).add(heap)
    else:
        call_graph = set(call_graph)

    pag = PAG()
    for (heap, var, method) in facts.assign_new:
        if reachable is None or method in reachable:
            pag.add(Edge(heap, var, "new"))
    for (src, dst) in facts.assign:
        pag.add(Edge(src, dst, "assign"))
    for (value, fld, base) in facts.store:
        pag.add(Edge(value, base, "store", field=fld))
    for (base, fld, dst) in facts.load:
        pag.add(Edge(base, dst, "load", field=fld))

    # Static fields: each is a global node flowed through plain assigns
    # (contexts cannot distinguish a global, so this is exact for the
    # context-insensitive analysis).  Loads are reachability-gated like
    # allocations.
    for (value, fld) in facts.static_store:
        pag.add(Edge(value, fld, "assign"))
        pag.static_field_nodes.add(fld)
    for (fld, dst, method) in facts.static_load:
        pag.static_field_nodes.add(fld)
        if reachable is None or method in reachable:
            pag.add(Edge(fld, dst, "assign"))

    # Exceptions: a thrown value flows to every catch variable of the
    # throwing method and of its transitive callers — the CI image of
    # the THROW/EPROP/ECATCH rules.
    _add_exception_edges(pag, facts, call_graph)

    # Interprocedural assignments (parameter passing / returns / this).
    _add_call_edges(pag, facts, call_graph, receiver_points_to)
    return pag


def _add_exception_edges(pag: PAG, facts: FactSet, call_graph) -> None:
    """``throw`` values flow to catch vars of the method and all its
    transitive callers (the context-insensitive THROW/EPROP/ECATCH)."""
    if not facts.throw_var:
        return
    callers_of = defaultdict(set)
    for (inv, callee) in call_graph:
        caller = facts.invocation_parent.get(inv)
        if caller is not None:
            callers_of[callee].add(caller)
    catch_vars = defaultdict(list)
    for (var, method) in facts.catch_var:
        catch_vars[method].append(var)

    for (thrown, method) in facts.throw_var:
        # Upward closure over the caller graph.
        seen = {method}
        frontier = [method]
        while frontier:
            current = frontier.pop()
            for catch in catch_vars.get(current, ()):
                pag.add(Edge(thrown, catch, "assign"))
            for caller in callers_of.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    frontier.append(caller)


def _add_call_edges(pag, facts, call_graph, receiver_points_to) -> None:
    formals = defaultdict(dict)
    for (var, method, index) in facts.formal:
        formals[method][index] = var
    this_vars = dict((m, v) for (v, m) in facts.this_var)
    returns = defaultdict(list)
    for (var, method) in facts.return_var:
        returns[method].append(var)
    actuals = defaultdict(list)
    for (var, inv, index) in facts.actual:
        actuals[inv].append((index, var))
    assign_returns = defaultdict(list)
    for (inv, var) in facts.assign_return:
        assign_returns[inv].append(var)
    receivers = {
        inv: (recv, sig) for (inv, recv, sig) in facts.virtual_invoke
    }
    heap_type = dict(facts.heap_type)
    implements_at = {}
    for (method, cls, sig) in facts.implements:
        implements_at[(cls, sig)] = method

    for (inv, callee) in call_graph:
        for (index, arg) in actuals[inv]:
            formal = formals[callee].get(index)
            if formal is not None:
                pag.add(
                    Edge(arg, formal, "assign", call_site=inv, entering=True)
                )
        for ret_var in returns[callee]:
            for dst in assign_returns[inv]:
                pag.add(
                    Edge(ret_var, dst, "assign", call_site=inv, entering=False)
                )
        this_var = this_vars.get(callee)
        recv_info = receivers.get(inv)
        if this_var is None or recv_info is None:
            continue
        recv, sig = recv_info
        if receiver_points_to is None:
            # Conservative (CHA-style): the whole receiver set reaches
            # `this` of every dispatch target.
            pag.add(
                Edge(recv, this_var, "assign", call_site=inv, entering=True)
            )
        else:
            # Dispatch-filtered: bind exactly the receiver objects whose
            # type resolves this signature to this callee — matching the
            # VIRT rule's per-(H, Q) derivation.
            for heap in receiver_points_to.get(recv, ()):
                cls = heap_type.get(heap)
                if cls is not None and implements_at.get((cls, sig)) == callee:
                    pag.add(Edge(heap, this_var, "new"))
