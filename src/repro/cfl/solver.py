"""Optimized exhaustive flows-to solver over a PAG.

The generic Melski–Reps solver in :mod:`repro.cfl.grammar` materializes
every nonterminal edge (including ``alias``, which is quadratic in the
points-to relation).  This module solves the same ``L_F``-reachability
problem with the specialized fixpoint the paper's Section 3 rules
suggest for the context-insensitive case:

* ``flowsto(H, X)`` seeded by ``new`` edges and closed under ``assign``;
* ``hpts(G, f, H)`` derived from stores through aliased bases;
* loads through aliased bases feed back into ``flowsto``.

``alias(x, y)`` is never materialized — the store/load rules join
through the common heap node ``G`` instead, which is exactly how the
Datalog IND rule avoids the quadratic blow-up.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, Set, Tuple

from repro.cfl.pag import PAG


class FlowsToSolver:
    """Worklist fixpoint of the context-insensitive flows-to relation."""

    def __init__(self, pag: PAG):
        self.pag = pag
        self.flowsto: Set[Tuple[str, str]] = set()
        self.hpts: Set[Tuple[str, str, str]] = set()
        self._pts_of: Dict[str, Set[str]] = defaultdict(set)
        self._vars_pointing: Dict[str, Set[str]] = defaultdict(set)
        self._hpts_at: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        self._worklist: deque = deque()

    def _add_flowsto(self, heap: str, var: str) -> None:
        if (heap, var) not in self.flowsto:
            self.flowsto.add((heap, var))
            self._pts_of[var].add(heap)
            self._vars_pointing[heap].add(var)
            self._worklist.append(("flowsto", heap, var))

    def _add_hpts(self, base: str, field: str, heap: str) -> None:
        if (base, field, heap) not in self.hpts:
            self.hpts.add((base, field, heap))
            self._hpts_at[(base, field)].add(heap)
            self._worklist.append(("hpts", base, field, heap))

    def solve(self) -> "FlowsToSolver":
        for edge in self.pag.edges:
            if edge.label == "new":
                self._add_flowsto(edge.source, edge.target)
        while self._worklist:
            item = self._worklist.popleft()
            if item[0] == "flowsto":
                self._on_flowsto(item[1], item[2])
            else:
                self._on_hpts(item[1], item[2], item[3])
        return self

    def _on_flowsto(self, heap: str, var: str) -> None:
        # Close under assign.
        for edge in self.pag.out_edges("assign", var):
            self._add_flowsto(heap, edge.target)
        # Var as the stored value: w --store[f]--> x with flowsto(G, x).
        for edge in self.pag.out_edges("store", var):
            for base_heap in self._pts_of[edge.target]:
                self._add_hpts(base_heap, edge.field, heap)
        # Var as a store base: values already known to be stored through
        # aliased stores.
        for edge in self.pag.in_edges("store", var):
            for value_heap in self._pts_of[edge.source]:
                self._add_hpts(heap, edge.field, value_heap)
        # Var as a load base: y --load[f]--> z.
        for edge in self.pag.out_edges("load", var):
            for pointee in self._hpts_at[(heap, edge.field)]:
                self._add_flowsto(pointee, edge.target)

    def _on_hpts(self, base: str, field: str, heap: str) -> None:
        # New heap content: propagate through loads whose base may be `base`.
        for var in list(self._vars_pointing[base]):
            for edge in self.pag.out_edges("load", var):
                if edge.field == field:
                    self._add_flowsto(heap, edge.target)

    # -- views ---------------------------------------------------------------

    def points_to(self, var: str) -> FrozenSet[str]:
        return frozenset(self._pts_of.get(var, ()))

    def flows_to_pairs(self) -> Set[Tuple[str, str]]:
        """All ``(heap, node)`` pairs, including static-field nodes —
        comparable to :func:`repro.cfl.grammar.flows_to_pairs`."""
        return set(self.flowsto)

    def variable_flows_to_pairs(self) -> Set[Tuple[str, str]]:
        """``(heap, variable)`` pairs only — comparable to the inverted
        ``pts_ci`` of the rule-based analysis."""
        globals_ = self.pag.static_field_nodes
        return {(h, n) for (h, n) in self.flowsto if n not in globals_}

    def static_field_pairs(self) -> Set[Tuple[str, str]]:
        """``(heap, static field)`` pairs — comparable to the rule-based
        analysis's ``spts`` projection."""
        globals_ = self.pag.static_field_nodes
        return {(h, n) for (h, n) in self.flowsto if n in globals_}
