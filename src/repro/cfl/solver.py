"""Optimized exhaustive flows-to solver over a PAG.

The generic Melski–Reps solver in :mod:`repro.cfl.grammar` materializes
every nonterminal edge (including ``alias``, which is quadratic in the
points-to relation).  This module solves the same ``L_F``-reachability
problem with the specialized fixpoint the paper's Section 3 rules
suggest for the context-insensitive case:

* ``flowsto(H, X)`` seeded by ``new`` edges and closed under ``assign``;
* ``hpts(G, f, H)`` derived from stores through aliased bases;
* loads through aliased bases feed back into ``flowsto``.

``alias(x, y)`` is never materialized — the store/load rules join
through the common heap node ``G`` instead, which is exactly how the
Datalog IND rule avoids the quadratic blow-up.

Storage is the shared substrate of :mod:`repro.store`: PAG nodes and
field names are interned to small ints on entry, the fixpoint runs
entirely over int tuples held in counter-instrumented relations, and
the string-level views (``flowsto``, ``hpts``, ``points_to``) decode at
the results boundary.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.cfl.pag import PAG
from repro.store import TupleStore, multimap


class FlowsToSolver:
    """Worklist fixpoint of the context-insensitive flows-to relation."""

    def __init__(self, pag: PAG):
        self.pag = pag
        self.store = TupleStore()
        self._interner = self.store.interner
        self.flowsto_rel = self.store.relation(
            "flowsto", 2, track_delta=False
        )
        self.hpts_rel = self.store.relation("hpts", 3, track_delta=False)
        self._pts_of = self.store.keyed_index("flowsto", "flowsto_by_var")
        self._vars_pointing = self.store.keyed_index(
            "flowsto", "flowsto_by_heap"
        )
        self._hpts_at = self.store.keyed_index("hpts", "hpts_by_base_field")
        self._build_adjacency()
        self._worklist: deque = deque()

    def _build_adjacency(self) -> None:
        """Intern the PAG's edge endpoints into int-keyed multimaps."""
        intern = self._interner.intern
        seeds: List[Tuple[int, int]] = []
        assign_out: List[Tuple[int, int]] = []
        store_by_value: List[Tuple[int, Tuple[int, int]]] = []
        store_by_base: List[Tuple[int, Tuple[int, int]]] = []
        load_by_base: List[Tuple[int, Tuple[int, int]]] = []
        for edge in self.pag.edges:
            if edge.label == "new":
                seeds.append((intern(edge.source), intern(edge.target)))
            elif edge.label == "assign":
                assign_out.append((intern(edge.source), intern(edge.target)))
            elif edge.label == "store":
                value, base = intern(edge.source), intern(edge.target)
                fld = intern(edge.field)
                store_by_value.append((value, (base, fld)))
                store_by_base.append((base, (value, fld)))
            elif edge.label == "load":
                base, dst = intern(edge.source), intern(edge.target)
                load_by_base.append((base, (intern(edge.field), dst)))
        self._seeds = seeds
        self._assign_out = multimap(assign_out)
        self._store_by_value = multimap(store_by_value)
        self._store_by_base = multimap(store_by_base)
        self._load_by_base = multimap(load_by_base)

    def _add_flowsto(self, heap: int, var: int) -> None:
        if self.flowsto_rel.add((heap, var)):
            self._pts_of.add(var, heap)
            self._vars_pointing.add(heap, var)
            self._worklist.append(("flowsto", heap, var))

    def _add_hpts(self, base: int, field: int, heap: int) -> None:
        if self.hpts_rel.add((base, field, heap)):
            self._hpts_at.add((base, field), heap)
            self._worklist.append(("hpts", base, field, heap))

    def solve(self) -> "FlowsToSolver":
        for (heap, var) in self._seeds:
            self._add_flowsto(heap, var)
        while self._worklist:
            item = self._worklist.popleft()
            if item[0] == "flowsto":
                self._on_flowsto(item[1], item[2])
            else:
                self._on_hpts(item[1], item[2], item[3])
        return self

    def _on_flowsto(self, heap: int, var: int) -> None:
        # Close under assign.
        for dst in self._assign_out.get(var, ()):
            self._add_flowsto(heap, dst)
        # Var as the stored value: w --store[f]--> x with flowsto(G, x).
        for (base, fld) in self._store_by_value.get(var, ()):
            for base_heap in self._pts_of.probe(base):
                self._add_hpts(base_heap, fld, heap)
        # Var as a store base: values already known to be stored through
        # aliased stores.
        for (value, fld) in self._store_by_base.get(var, ()):
            for value_heap in self._pts_of.probe(value):
                self._add_hpts(heap, fld, value_heap)
        # Var as a load base: y --load[f]--> z.
        for (fld, dst) in self._load_by_base.get(var, ()):
            for pointee in self._hpts_at.probe((heap, fld)):
                self._add_flowsto(pointee, dst)

    def _on_hpts(self, base: int, field: int, heap: int) -> None:
        # New heap content: propagate through loads whose base may be `base`.
        for var in tuple(self._vars_pointing.probe(base)):
            for (fld, dst) in self._load_by_base.get(var, ()):
                if fld == field:
                    self._add_flowsto(heap, dst)

    # -- views ---------------------------------------------------------------

    @property
    def flowsto(self) -> Set[Tuple[str, str]]:
        """All ``(heap, node)`` pairs, decoded to their original names."""
        decode = self._interner.value_of
        return {(decode(h), decode(v)) for (h, v) in self.flowsto_rel.rows}

    @property
    def hpts(self) -> Set[Tuple[str, str, str]]:
        """All ``(base heap, field, heap)`` triples, decoded."""
        decode = self._interner.value_of
        return {
            (decode(b), decode(f), decode(h))
            for (b, f, h) in self.hpts_rel.rows
        }

    def points_to(self, var: str) -> FrozenSet[str]:
        symbol = self._interner.id_of(var)
        if symbol is None:
            return frozenset()
        decode = self._interner.value_of
        return frozenset(decode(h) for h in self._pts_of.probe(symbol))

    def flows_to_pairs(self) -> Set[Tuple[str, str]]:
        """All ``(heap, node)`` pairs, including static-field nodes —
        comparable to :func:`repro.cfl.grammar.flows_to_pairs`."""
        return self.flowsto

    def variable_flows_to_pairs(self) -> Set[Tuple[str, str]]:
        """``(heap, variable)`` pairs only — comparable to the inverted
        ``pts_ci`` of the rule-based analysis."""
        globals_ = self.pag.static_field_nodes
        return {(h, n) for (h, n) in self.flowsto if n not in globals_}

    def static_field_pairs(self) -> Set[Tuple[str, str]]:
        """``(heap, static field)`` pairs — comparable to the rule-based
        analysis's ``spts`` projection."""
        globals_ = self.pag.static_field_nodes
        return {(h, n) for (h, n) in self.flowsto if n in globals_}

    def store_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-relation store counters — see
        :meth:`repro.store.TupleStore.describe`."""
        return self.store.describe()
