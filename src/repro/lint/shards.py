"""The shard-safety lint pass (DL4xx).

A thin lint-surface wrapper around the partition/communication
analysis of :mod:`repro.datalog.partition`: given a partition key (or
an explicit :class:`~repro.datalog.partition.PartitionSpec`), classify
every rule as shard-local / exchange / broadcast and report one coded
diagnostic per witness:

========  ========  ====================================================
``DL401``  note      head repartitioned (exchange edge)
``DL402``  note      co-partition violation — relation replicated
``DL403``  warning   replicated relation is recursive: frontier
                     broadcast every round (partitioning defeated)
``DL404``  note      no partitioned body atom — rule pinned to a shard
``DL405``  warning   negated literal probes a partitioned relation on a
                     non-anchor attribute
========  ========  ====================================================

Unlike the DL0xx–DL3xx passes this one is *advisory about the plan*,
not about program correctness, so it is not part of the default
:func:`repro.datalog.lint.lint_program` pass list; the CLI runs it
under ``repro lint --shard-plan`` and the parallel executor consumes
the same :class:`~repro.datalog.partition.ShardPlan` it reports on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.datalog.ast import Program
from repro.lint.diagnostics import Diagnostic

Builtins = Optional[Iterable[str]]


def check_partition(
    program: Program,
    builtins: Builtins = None,
    key: Optional[str] = None,
    spec=None,
) -> List[Diagnostic]:
    """DL4xx diagnostics for ``program`` under the given partitioning.

    ``spec`` overrides ``key`` when given.  Programs that fail
    stratification produce no DL4xx findings (DL201 already reports
    the reason a plan cannot exist).
    """
    return shard_plan_or_none(program, builtins, key, spec)[1]


def shard_plan_or_none(
    program: Program,
    builtins: Builtins = None,
    key: Optional[str] = None,
    spec=None,
) -> Tuple[Optional[object], List[Diagnostic]]:
    """``(ShardPlan, diagnostics)`` — or ``(None, [])`` when the
    program cannot be stratified (the DL201 pass owns that failure)."""
    from repro.datalog.partition import (
        DEFAULT_KEY, build_shard_plan, pointer_partition_spec,
    )
    from repro.datalog.stratify import StratificationError

    if key is None:
        key = DEFAULT_KEY
    names: Optional[Iterable[str]] = None
    if builtins is not None:
        names = list(builtins)  # engine mappings iterate to their names
    if spec is None:
        spec = pointer_partition_spec(program, key)
    try:
        plan = build_shard_plan(program, spec, names)
    except StratificationError:
        return None, []
    return plan, list(plan.diagnostics)
