"""Well-formedness verification of the frontend IR.

:func:`check_ir` inspects a :class:`repro.frontend.ir.Program` before
fact generation and reports structural defects that would otherwise
surface as silently-empty relations or dispatch failures during the
analysis:

* ``IR001`` — a variable is read but never defined (never a formal
  parameter, receiver, catch variable, or assignment target anywhere in
  the program; variables are globally qualified, so this is a whole-
  program check);
* ``IR002`` — a call target cannot resolve: a static call to a missing
  method, or a virtual call whose signature no class in the program
  implements (a warning: the receiver may be an undeclared library
  type such as ``Object``);
* ``IR003`` — an allocation-site or call-site label is reused; labels
  key heap abstractions and calling contexts, so duplicates silently
  merge distinct sites;
* ``IR004`` — class-hierarchy defects: an undeclared superclass or an
  inheritance cycle;
* ``IR005`` — the program's entry point is missing or malformed.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.frontend import ir
from repro.lint.diagnostics import Diagnostic, LintReport, Severity


def _defined_variables(program: ir.Program) -> Set[str]:
    defined: Set[str] = set()
    for method in program.all_methods():
        defined.update(method.params)
        if not method.is_static:
            defined.add(method.this_var)
        defined.update(method.catch_vars())
        for stmt in method.body:
            dst = getattr(stmt, "dst", None)
            if dst is not None:
                defined.add(dst)
    return defined


def _used_variables(method: ir.Method) -> List[Tuple[str, object]]:
    """Every variable *read* in ``method``, with the reading statement."""
    used: List[Tuple[str, object]] = []
    for stmt in method.body:
        for attribute in ("src", "base"):
            value = getattr(stmt, attribute, None)
            if value is not None:
                used.append((value, stmt))
        for arg in getattr(stmt, "args", ()):
            used.append((arg, stmt))
    return used


def check_ir(program: ir.Program, subject: str = "IR program") -> LintReport:
    """Verify structural invariants; returns a :class:`LintReport`."""
    report = LintReport(subject=subject)
    out = report.diagnostics

    # -- class hierarchy (IR004) -----------------------------------------
    hierarchy_ok = True
    for cls in program.classes.values():
        if cls.superclass is not None and cls.superclass not in program.classes:
            out.append(Diagnostic(
                "IR004", Severity.ERROR,
                f"class {cls.name!r} extends undeclared class"
                f" {cls.superclass!r}",
                where=cls.name,
            ))
            hierarchy_ok = False
    if hierarchy_ok:
        for cls in program.classes.values():
            try:
                program.superclass_chain(cls.name)
            except ValueError as error:
                out.append(Diagnostic(
                    "IR004", Severity.ERROR, str(error), where=cls.name,
                ))
                hierarchy_ok = False

    # -- declared-before-use variables (IR001) ---------------------------
    defined = _defined_variables(program)
    for method in program.all_methods():
        seen: Set[str] = set()
        for variable, stmt in _used_variables(method):
            if variable not in defined and variable not in seen:
                seen.add(variable)
                out.append(Diagnostic(
                    "IR001", Severity.ERROR,
                    f"variable {variable!r} is read by"
                    f" {type(stmt).__name__} but never defined",
                    where=method.qualified_name,
                ))

    # -- resolvable call targets (IR002) ---------------------------------
    signatures_implemented: Set[str] = {
        signature
        for cls in program.classes.values()
        for signature, method in cls.methods.items()
        if not method.is_static
    }
    for method in program.all_methods():
        for stmt in method.body:
            if isinstance(stmt, ir.StaticCall):
                signature = f"{stmt.name}/{len(stmt.args)}"
                if (
                    hierarchy_ok
                    and stmt.cls in program.classes
                    and program.resolve_method(stmt.cls, signature) is None
                ):
                    out.append(Diagnostic(
                        "IR002", Severity.ERROR,
                        f"static call {stmt.label!r} targets"
                        f" {stmt.cls}.{signature}, which no class in the"
                        " hierarchy defines",
                        where=method.qualified_name,
                    ))
                elif stmt.cls not in program.classes:
                    out.append(Diagnostic(
                        "IR002", Severity.ERROR,
                        f"static call {stmt.label!r} targets undeclared"
                        f" class {stmt.cls!r}",
                        where=method.qualified_name,
                    ))
            elif isinstance(stmt, ir.VirtualCall):
                signature = f"{stmt.name}/{len(stmt.args)}"
                if signature not in signatures_implemented:
                    out.append(Diagnostic(
                        "IR002", Severity.WARNING,
                        f"virtual call {stmt.label!r} to {signature}: no"
                        " class in the program implements that signature"
                        " (the call can never dispatch)",
                        where=method.qualified_name,
                    ))

    # -- site-label uniqueness (IR003) -----------------------------------
    sites: Dict[Tuple[str, str], List[str]] = {}
    for method in program.all_methods():
        for stmt in method.body:
            if isinstance(stmt, ir.New):
                kind = "allocation"
            elif isinstance(stmt, (ir.VirtualCall, ir.StaticCall)):
                kind = "call"
            else:
                continue
            sites.setdefault((kind, stmt.label), []).append(
                method.qualified_name
            )
    for (kind, label), methods in sorted(sites.items()):
        if len(methods) > 1:
            out.append(Diagnostic(
                "IR003", Severity.ERROR,
                f"{kind}-site label {label!r} used {len(methods)} times"
                f" (in {sorted(set(methods))}): labels must be unique"
                " program-wide",
                where=methods[0],
            ))

    # -- entry point (IR005) ---------------------------------------------
    if program.main_class is None:
        out.append(Diagnostic(
            "IR005", Severity.WARNING,
            "program has no main class: no analysis entry point",
        ))
    elif program.main_class not in program.classes:
        out.append(Diagnostic(
            "IR005", Severity.ERROR,
            f"main class {program.main_class!r} is not declared",
        ))
    elif "main/1" not in program.classes[program.main_class].methods:
        out.append(Diagnostic(
            "IR005", Severity.ERROR,
            f"main class {program.main_class!r} has no"
            " main(String[]) method",
            where=program.main_class,
        ))
    return report
