"""Static analysis (lint) over Datalog programs and the frontend IR.

The paper's Section 7 pipeline instantiates parameterized deduction
rules into plain Datalog; a bug anywhere in that pipeline historically
surfaced only as a silently-wrong points-to set or an opaque runtime
error deep inside the engine.  This package provides the pre-evaluation
correctness tooling — the analogue of the rule-level safety checks
Doop-style engines run before touching any tuples:

* :mod:`repro.lint.diagnostics` — the structured diagnostic model
  (codes, severities, locations) shared by every pass;
* :mod:`repro.lint.passes` — the multi-pass semantic analyzer over
  :class:`repro.datalog.ast.Program` (safety/range restriction under
  the engine's left-to-right join order, arity and sort inference,
  stratification explanation, dead-rule detection and elimination);
* :mod:`repro.lint.ircheck` — the well-formedness verifier for
  :class:`repro.frontend.ir.Program`.

The conventional entry points live in :mod:`repro.datalog.lint`
(programs) and :func:`repro.lint.ircheck.check_ir` (IR); the CLI
exposes both as ``python -m repro lint``.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)
from repro.lint.cost import check_cost, cost_plan_or_none
from repro.lint.ircheck import check_ir
from repro.lint.passes import binding_orders, eliminate_dead_rules, lint_program
from repro.lint.shards import check_partition, shard_plan_or_none

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "Severity",
    "binding_orders",
    "check_cost",
    "check_ir",
    "check_partition",
    "cost_plan_or_none",
    "eliminate_dead_rules",
    "lint_program",
    "shard_plan_or_none",
]
