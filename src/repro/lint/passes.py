"""The multi-pass semantic analyzer over Datalog programs.

Every pass maps a :class:`repro.datalog.ast.Program` to a list of
:class:`repro.lint.diagnostics.Diagnostic`; :func:`lint_program` runs
them all and returns the combined :class:`LintReport`.

The passes mirror what the evaluation engines actually require, so an
error-free report guarantees the engine will not fail mid-evaluation
for a rule-level reason:

* **safety / range restriction** (``DL001``–``DL004``) — every head
  variable bound by a positive body literal, and negated/builtin
  literals fully bound *given the engine's left-to-right join order*
  (the classical set-based check in :meth:`Rule.validate` accepts
  ``p(X) :- !q(X), r(X).`` which then crashes the engine mid-join;
  ``DL002`` rejects it up front and suggests the reorder);
* **schema** (``DL101``–``DL103``) — consistent predicate arities
  across rules, facts, and builtin signatures, and no predicate that is
  simultaneously a builtin and a stored relation;
* **sort inference** (``DL102``) — attribute sorts unified across all
  uses by a union-find over ``(predicate, column)`` slots, catching
  e.g. a packed context tuple flowing into a flattened string column
  (the signature failure mode of a mis-specialized configuration from
  :mod:`repro.compile.specialize`);
* **configurations** (``DL105``) — configuration-specialized relation
  names (a ``pts__xwe``-style suffix whose tag parses as the paper's
  ``x^a w? e^b`` shape) whose declared arity cannot even hold the
  flattened context letters, or whose base family mixes entity arities
  across configurations — both symptoms of a broken specialization or
  a hand-written rule drifting from the emitted schema;
* **stratification** (``DL201``) — negation through recursion, with
  the witness cycle and offending rule spelled out (structured data
  from :func:`repro.datalog.stratify.negative_cycle_edges`);
* **liveness** (``DL301``–``DL302``) — rules that can never fire
  because a positive body predicate is underivable, and derived
  relations nothing consumes.  :func:`eliminate_dead_rules` applies
  the former as a rewrite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.datalog.ast import Const, Literal, Program, Rule, Var
from repro.datalog.builtins import DEFAULT_BUILTINS, BuiltinSignature
from repro.lint.diagnostics import Diagnostic, LintReport, Severity

#: Builtins may be given as an engine-style ``{name: callable}`` mapping
#: (signatures are read off the callables) or as a bare name collection.
Builtins = Union[Mapping[str, object], Iterable[str], None]


def _normalize_builtins(builtins: Builtins) -> Dict[str, Optional[BuiltinSignature]]:
    """Name → signature (``None`` when the binding discipline is unknown)."""
    table: Dict[str, Optional[BuiltinSignature]] = {
        name: getattr(fn, "lint_signature", None)
        for name, fn in DEFAULT_BUILTINS.items()
    }
    if builtins is None:
        return table
    if isinstance(builtins, Mapping):
        for name, fn in builtins.items():
            table[name] = getattr(fn, "lint_signature", None)
    else:
        for name in builtins:
            table.setdefault(name, None)
    return table


# ---------------------------------------------------------------------------
# Binding order (shared with index planning).
# ---------------------------------------------------------------------------

def binding_orders(rule: Rule) -> List[Tuple[Literal, Tuple[int, ...]]]:
    """For each body literal, the argument positions bound when the
    engine reaches it under left-to-right join order.

    A position is bound when its term is a constant or a variable bound
    by an earlier literal.  Positive stored literals and (successful)
    positive builtins bind all their variables; negated literals bind
    nothing.  This is the binding discipline the safety pass (DL002)
    checks and both evaluation engines implement; the up-front index
    planner (:func:`repro.store.planner.plan_indices`) derives each
    join's probe columns from it.
    """
    bound: Set[Var] = set()
    out: List[Tuple[Literal, Tuple[int, ...]]] = []
    for literal in rule.body:
        positions = tuple(
            position
            for position, term in enumerate(literal.args)
            if isinstance(term, Const) or term in bound
        )
        out.append((literal, positions))
        if not literal.negated:
            bound |= literal.variables()
    return out


# ---------------------------------------------------------------------------
# Safety / range restriction (DL001–DL004).
# ---------------------------------------------------------------------------

def check_safety(
    program: Program, builtins: Builtins = None
) -> List[Diagnostic]:
    signatures = _normalize_builtins(builtins)
    out: List[Diagnostic] = []
    for index, rule in enumerate(program.rules):
        out.extend(_check_rule_safety(rule, index, signatures))
    return out


def _check_rule_safety(
    rule: Rule,
    index: int,
    signatures: Dict[str, Optional[BuiltinSignature]],
) -> List[Diagnostic]:
    out: List[Diagnostic] = []

    def diag(code: str, message: str, literal: Optional[Literal] = None,
             severity: Severity = Severity.ERROR) -> None:
        pos = (literal.pos if literal is not None else None) or rule.pos
        out.append(Diagnostic(
            code, severity, f"{message} in {rule!r}",
            rule_index=index, pos=pos, where=rule.head.pred,
        ))

    if rule.head.negated:
        diag("DL004", "negated head literal")

    # Walk the body in the engine's join order, tracking bound variables.
    bound: Set[Var] = set()
    all_positive: Set[Var] = set()
    for lit in rule.body:
        if not lit.negated and lit.pred not in signatures:
            all_positive |= lit.variables()
    for lit in rule.body:
        if lit.pred in signatures and not lit.negated:
            signature = signatures[lit.pred]
            if signature is not None:
                _check_builtin_binding(lit, bound, signature, diag)
            # After evaluation every argument of the builtin is bound.
            bound |= lit.variables()
            all_positive |= lit.variables()
        elif lit.negated:
            unbound = {v for v in lit.variables() if v not in bound}
            for var in sorted(unbound, key=lambda v: v.name):
                if var in all_positive:
                    diag(
                        "DL002",
                        f"negated literal {lit!r} reached before variable"
                        f" {var.name} is bound (a later positive literal"
                        " binds it: move the negation after it)",
                        lit,
                    )
                else:
                    diag(
                        "DL002",
                        f"variable {var.name} of negated literal {lit!r}"
                        " is not bound by any positive body literal",
                        lit,
                    )
        else:
            bound |= lit.variables()

    unsafe = sorted(
        (v for v in rule.head.variables() if v not in bound),
        key=lambda v: v.name,
    )
    if unsafe and not rule.body:
        diag(
            "DL001",
            f"non-ground fact: variables"
            f" {[v.name for v in unsafe]} in a body-less rule",
        )
    elif unsafe:
        diag(
            "DL001",
            f"head variables {[v.name for v in unsafe]} not bound by any"
            " positive body literal",
        )
    return out


def _check_builtin_binding(literal, bound, signature, diag) -> None:
    if signature.arity is not None and literal.arity != signature.arity:
        return  # reported by the schema pass (DL101)
    unbound = [
        position
        for position, term in enumerate(literal.args)
        if isinstance(term, Var) and term not in bound
    ]
    if signature.out_positions is None:
        bound_count = literal.arity - len(unbound)
        if bound_count < signature.min_bound:
            diag(
                "DL003",
                f"builtin {literal!r} requires at least"
                f" {signature.min_bound} bound argument(s), but only"
                f" {bound_count} are bound when it is reached",
                literal,
            )
        return
    stray = [p for p in unbound if p not in signature.out_positions]
    if stray:
        names = [literal.args[p].name for p in stray]
        diag(
            "DL003",
            f"builtin {literal!r} reached with unbound input"
            f" argument(s) {names} (outputs are positions"
            f" {sorted(signature.out_positions)})",
            literal,
        )


# ---------------------------------------------------------------------------
# Schema: arities and builtin collisions (DL101, DL103).
# ---------------------------------------------------------------------------

def check_schema(
    program: Program, builtins: Builtins = None
) -> List[Diagnostic]:
    signatures = _normalize_builtins(builtins)
    out: List[Diagnostic] = []
    arities: Dict[str, Tuple[int, str]] = {}
    for name, signature in signatures.items():
        if signature is not None and signature.arity is not None:
            arities[name] = (signature.arity, f"builtin {name}")

    def observe(pred: str, arity: int, rule_index: Optional[int],
                pos, detail: str) -> None:
        known = arities.setdefault(pred, (arity, detail))
        if known[0] != arity:
            out.append(Diagnostic(
                "DL101", Severity.ERROR,
                f"predicate {pred!r} used with arity {arity} in {detail},"
                f" but with arity {known[0]} in {known[1]}",
                rule_index=rule_index, pos=pos, where=pred,
            ))

    for index, rule in enumerate(program.rules):
        for lit in (rule.head, *rule.body):
            observe(lit.pred, lit.arity, index,
                    lit.pos or rule.pos, f"{rule!r}")
    for pred, rows in program.facts.items():
        for row in rows:
            observe(pred, len(row), None, None, f"fact {pred}{tuple(row)!r}")

    stored = program.idb_predicates() | set(program.facts)
    for pred in sorted(stored & set(signatures)):
        out.append(Diagnostic(
            "DL103", Severity.ERROR,
            f"predicate {pred!r} is both a builtin and a stored relation",
            where=pred,
        ))
    return out


# ---------------------------------------------------------------------------
# Configuration-specialized schemas (DL105).
# ---------------------------------------------------------------------------

def check_configurations(
    program: Program, builtins: Builtins = None
) -> List[Diagnostic]:
    """Arity discipline for configuration-specialized relations.

    A relation named ``base__tag`` whose tag parses as a configuration
    ``x^a w? e^b`` (see :func:`repro.compile.configurations.parse_tag`)
    declares ``a + b`` flattened context attributes after its entity
    attributes.  Two findings, both ``DL105``:

    * **error** — the declared arity is smaller than the tag's context
      arity, so the relation cannot even hold its context letters;
    * **warning** — relations of one base family disagree on entity
      arity (``arity − context_arity``): the specializer emits every
      configuration of a base with the same entity columns, so a mixed
      family means a rule drifted from the emitted schema.

    Names whose suffix does not parse as a tag are skipped — ``__`` is
    legal in ordinary predicate names.
    """
    from repro.compile.configurations import parse_tag

    signatures = _normalize_builtins(builtins)
    #: pred → (arity, first witness rule index, pos)
    arities: Dict[str, Tuple[int, Optional[int], object]] = {}
    for index, rule in enumerate(program.rules):
        for lit in (rule.head, *rule.body):
            if lit.pred in signatures:
                continue
            arities.setdefault(
                lit.pred, (lit.arity, index, lit.pos or rule.pos)
            )
    for pred, rows in program.facts.items():
        for row in rows:
            arities.setdefault(pred, (len(row), None, None))
            break

    out: List[Diagnostic] = []
    #: base → entity arity → member descriptions.
    families: Dict[str, Dict[int, List[str]]] = {}
    for pred in sorted(arities):
        arity, rule_index, pos = arities[pred]
        base, sep, tag = pred.partition("__")
        if not sep or not base:
            continue
        try:
            configuration = parse_tag(tag)
        except ValueError:
            continue
        context_arity = configuration.context_arity
        if arity < context_arity:
            out.append(Diagnostic(
                "DL105", Severity.ERROR,
                f"configuration-specialized relation {pred!r} has arity"
                f" {arity}, but its tag {tag!r} alone needs"
                f" {context_arity} context attribute(s)"
                f" (x^{configuration.pops} e^{configuration.pushes})",
                rule_index=rule_index, pos=pos, where=pred,
            ))
            continue
        families.setdefault(base, {}).setdefault(
            arity - context_arity, []
        ).append(f"{pred}/{arity}")
    for base in sorted(families):
        by_entity = families[base]
        if len(by_entity) > 1:
            details = "; ".join(
                f"entity arity {entity}: {', '.join(members)}"
                for entity, members in sorted(by_entity.items())
            )
            out.append(Diagnostic(
                "DL105", Severity.WARNING,
                f"configuration family {base!r} mixes entity arities"
                f" across its specialized relations ({details})",
                where=base,
            ))
    return out


# ---------------------------------------------------------------------------
# Sort inference (DL102).
# ---------------------------------------------------------------------------

class _SlotUnion:
    """Union-find over ``(predicate, column)`` attribute slots."""

    def __init__(self) -> None:
        self.parent: Dict[Tuple[str, int], Tuple[str, int]] = {}

    def find(self, slot: Tuple[str, int]) -> Tuple[str, int]:
        parent = self.parent.setdefault(slot, slot)
        if parent != slot:
            parent = self.find(parent)
            self.parent[slot] = parent
        return parent

    def union(self, left: Tuple[str, int], right: Tuple[str, int]) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            self.parent[root_left] = root_right


def _sort_of(value: object) -> str:
    return type(value).__name__


def check_sorts(
    program: Program, builtins: Builtins = None
) -> List[Diagnostic]:
    """Infer one sort per attribute-slot equivalence class.

    Slots joined by a shared rule variable must agree on the sort of
    the constants observed anywhere in the class; a class observed with
    two sorts (say ``str`` and ``tuple``) is a near-certain
    specialization or fact-encoding bug and is reported as ``DL102``.
    Builtin literals are skipped: their arguments are polymorphic.
    """
    signatures = _normalize_builtins(builtins)
    union = _SlotUnion()
    #: root slot → sort name → first witness description.
    observed: Dict[Tuple[str, int], Dict[str, str]] = {}

    def observe(slot: Tuple[str, int], sort: str, witness: str) -> None:
        root = union.find(slot)
        observed.setdefault(root, {}).setdefault(sort, witness)

    for index, rule in enumerate(program.rules):
        slots_of_var: Dict[Var, List[Tuple[str, int]]] = {}
        for lit in (rule.head, *rule.body):
            if lit.pred in signatures:
                continue
            for position, term in enumerate(lit.args):
                slot = (lit.pred, position)
                if isinstance(term, Var):
                    slots_of_var.setdefault(term, []).append(slot)
                else:
                    observe(slot, _sort_of(term.value),
                            f"constant {term!r} in rule #{index}")
        for slots in slots_of_var.values():
            for other in slots[1:]:
                union.union(slots[0], other)

    # Re-key observations to the final roots before adding fact sorts.
    merged: Dict[Tuple[str, int], Dict[str, str]] = {}
    for root, sorts in observed.items():
        target = merged.setdefault(union.find(root), {})
        for sort, witness in sorts.items():
            target.setdefault(sort, witness)
    observed = merged

    for pred, rows in program.facts.items():
        for row in rows:
            for position, value in enumerate(row):
                observe(
                    (pred, position), _sort_of(value),
                    f"fact {pred}{tuple(row)!r}",
                )

    out: List[Diagnostic] = []
    slots_by_root: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
    for slot in union.parent:
        slots_by_root.setdefault(union.find(slot), []).append(slot)
    for root in sorted(observed, key=lambda s: (s[0], s[1])):
        sorts = observed[root]
        if len(sorts) > 1:
            members = sorted(set(slots_by_root.get(root, [root])) | {root})
            columns = ", ".join(f"{p}[{i}]" for p, i in members[:6])
            details = "; ".join(
                f"{sort} from {witness}" for sort, witness in sorted(sorts.items())
            )
            out.append(Diagnostic(
                "DL102", Severity.WARNING,
                f"attribute slot class {{{columns}}} is used with"
                f" conflicting sorts: {details}",
                where=root[0],
            ))
    return out


# ---------------------------------------------------------------------------
# Stratification (DL201).
# ---------------------------------------------------------------------------

def check_stratification(program: Program) -> List[Diagnostic]:
    from repro.datalog.stratify import negative_cycle_edges

    out: List[Diagnostic] = []
    index_of = {id(rule): i for i, rule in enumerate(program.rules)}
    for violation in negative_cycle_edges(program):
        # describe() spells out the witness: the offending negated
        # literal, its source line/column when the program was parsed
        # from text, and the predicate cycle the edge closes.
        out.append(Diagnostic(
            "DL201", Severity.ERROR,
            f"negation through recursion: {violation.describe()};"
            " break the cycle or move the negated predicate to an"
            " earlier stratum",
            rule_index=index_of.get(id(violation.rule)),
            pos=violation.literal.pos or violation.rule.pos,
            where=violation.target,
        ))
    return out


# ---------------------------------------------------------------------------
# Liveness: dead rules and unused relations (DL301, DL302).
# ---------------------------------------------------------------------------

def _derivable_predicates(
    program: Program,
    signatures: Dict[str, Optional[BuiltinSignature]],
    assume_nonempty: Iterable[str] = (),
) -> Set[str]:
    """Predicates that can possibly hold at least one tuple.

    Fixpoint over: facts (and ``assume_nonempty`` predicates) are
    derivable; a rule head becomes derivable once every *positive,
    non-builtin* body predicate is (negated literals never block —
    negation over an empty relation succeeds).
    """
    derivable: Set[str] = {
        pred for pred, rows in program.facts.items() if rows
    }
    derivable.update(assume_nonempty)
    pending = [r for r in program.rules]
    progress = True
    while progress:
        progress = False
        remaining: List[Rule] = []
        for rule in pending:
            if all(
                lit.negated or lit.pred in signatures or lit.pred in derivable
                for lit in rule.body
            ):
                if rule.head.pred not in derivable:
                    derivable.add(rule.head.pred)
                    progress = True
            else:
                remaining.append(rule)
        pending = remaining
    return derivable


def _dead_rules(
    program: Program,
    signatures: Dict[str, Optional[BuiltinSignature]],
    assume_nonempty: Iterable[str] = (),
) -> List[Tuple[int, Rule, List[str]]]:
    derivable = _derivable_predicates(program, signatures, assume_nonempty)
    dead: List[Tuple[int, Rule, List[str]]] = []
    for index, rule in enumerate(program.rules):
        blockers = sorted({
            lit.pred
            for lit in rule.body
            if not lit.negated
            and lit.pred not in signatures
            and lit.pred not in derivable
        })
        if blockers:
            dead.append((index, rule, blockers))
    return dead


def check_liveness(
    program: Program, builtins: Builtins = None,
    edb: Iterable[str] = (),
) -> List[Diagnostic]:
    """Dead-rule and unused-relation findings.

    ``edb`` names input relations that are *declared* — empty in this
    particular fact set but legitimately populatable later — so their
    rules are not flagged as dead.
    """
    signatures = _normalize_builtins(builtins)
    out: List[Diagnostic] = []
    for index, rule, blockers in _dead_rules(program, signatures, edb):
        out.append(Diagnostic(
            "DL301", Severity.WARNING,
            f"rule can never fire: positive body predicate(s)"
            f" {blockers} have no facts and no live defining rule"
            f" in {rule!r}",
            rule_index=index, pos=rule.pos, where=rule.head.pred,
        ))
    consumed = {
        lit.pred for rule in program.rules for lit in rule.body
    }
    for pred in sorted(program.idb_predicates() - consumed):
        out.append(Diagnostic(
            "DL302", Severity.NOTE,
            f"derived relation {pred!r} is not consumed by any rule"
            " (kept: it may be an output)",
            where=pred,
        ))
    return out


def eliminate_dead_rules(
    program: Program, builtins: Builtins = None
) -> Tuple[Program, List[Rule]]:
    """Drop rules that can never fire; a safe pre-evaluation rewrite.

    Returns ``(optimized_program, removed_rules)``.  The optimized
    program shares no mutable state with the input.  Negated literals
    never make a rule dead (negation over an underivable predicate is
    vacuously true), so the rewrite preserves the stratified semantics
    exactly: removed rules could not have contributed a single tuple.
    """
    signatures = _normalize_builtins(builtins)
    dead_indices = {
        index for index, _, _ in _dead_rules(program, signatures)
    }
    kept = [r for i, r in enumerate(program.rules) if i not in dead_indices]
    removed = [r for i, r in enumerate(program.rules) if i in dead_indices]
    optimized = Program(
        rules=kept,
        facts={pred: set(rows) for pred, rows in program.facts.items()},
    )
    return optimized, removed


# ---------------------------------------------------------------------------
# The driver.
# ---------------------------------------------------------------------------

def lint_program(
    program: Program,
    builtins: Builtins = None,
    subject: str = "program",
    passes: Optional[Sequence[str]] = None,
    edb: Iterable[str] = (),
) -> LintReport:
    """Run the semantic analyzer; returns the aggregated report.

    ``builtins`` follows the engine convention: the default builtin
    table is always assumed, and an engine-style mapping adds to it.
    ``passes`` selects a subset by name (``safety``, ``schema``,
    ``configurations``, ``sorts``, ``stratification``, ``liveness``);
    default is all.
    ``edb`` declares input relations the liveness pass must assume
    populatable even when the installed fact set leaves them empty.
    """
    all_passes = {
        "safety": lambda: check_safety(program, builtins),
        "schema": lambda: check_schema(program, builtins),
        "configurations": lambda: check_configurations(program, builtins),
        "sorts": lambda: check_sorts(program, builtins),
        "stratification": lambda: check_stratification(program),
        "liveness": lambda: check_liveness(program, builtins, edb=edb),
    }
    selected = list(all_passes) if passes is None else list(passes)
    unknown = [name for name in selected if name not in all_passes]
    if unknown:
        raise ValueError(f"unknown lint pass(es) {unknown!r}")
    report = LintReport(subject=subject)
    for name in selected:
        report.extend(all_passes[name]())
    return report
