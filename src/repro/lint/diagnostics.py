"""Structured diagnostics for the lint passes.

A :class:`Diagnostic` is one finding: a stable code (``DL001``,
``IR003``, …), a :class:`Severity`, a human-readable message, and as
much location as the input carried — the rule index and source position
for Datalog programs, the enclosing method for IR checks.  A
:class:`LintReport` aggregates the findings of every pass and decides
overall success (errors are fatal; warnings and notes are not).

Diagnostic codes are namespaced by prefix:

* ``DL0xx`` — rule safety / binding-order errors;
* ``DL1xx`` — schema errors (arity, sorts, builtin collisions);
* ``DL2xx`` — stratification errors;
* ``DL3xx`` — liveness findings (dead rules, unused relations);
* ``IR0xx`` — frontend IR well-formedness.

The full code reference lives in ``docs/api.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.datalog.ast import SourcePos


class Severity(enum.IntEnum):
    """Ordered: higher is more severe."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    code: str
    severity: Severity
    message: str
    #: Index of the offending rule in ``program.rules`` (Datalog passes).
    rule_index: Optional[int] = None
    #: Source position, when the program was parsed from text.
    pos: Optional[SourcePos] = None
    #: Non-positional location context, e.g. a method or predicate name.
    where: Optional[str] = None

    def render(self) -> str:
        location = ""
        if self.pos is not None:
            location = f" at {self.pos!r}"
        elif self.rule_index is not None:
            location = f" in rule #{self.rule_index}"
        if self.where:
            location += f" ({self.where})"
        return f"{self.severity}[{self.code}]{location}: {self.message}"

    def __str__(self) -> str:
        return self.render()


@dataclass
class LintReport:
    """The aggregated findings of a lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: What was linted, for error messages (a description or file name).
    subject: str = "program"

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> "LintReport":
        self.diagnostics.extend(diagnostics)
        return self

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity diagnostic was produced."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def render(self, min_severity: Severity = Severity.NOTE) -> str:
        lines = [
            d.render()
            for d in sorted(
                self.diagnostics,
                key=lambda d: (-d.severity, d.rule_index or 0, d.code),
            )
            if d.severity >= min_severity
        ]
        return "\n".join(lines)

    def summary(self) -> str:
        errors, warnings = len(self.errors), len(self.warnings)
        if not self.diagnostics:
            return f"{self.subject}: clean"
        return (
            f"{self.subject}: {errors} error(s), {warnings} warning(s),"
            f" {len(self.diagnostics) - errors - warnings} note(s)"
        )

    def raise_if_errors(self) -> "LintReport":
        """Raise :class:`LintError` when any error diagnostic exists."""
        if not self.ok:
            raise LintError(self)
        return self


class LintError(ValueError):
    """A linted program has error-severity diagnostics.

    Carries the full :class:`LintReport` as ``report``; the message
    renders every error so the failure is self-explanatory.
    """

    def __init__(self, report: LintReport):
        self.report = report
        errors = report.errors
        rendered = "\n  ".join(d.render() for d in errors)
        super().__init__(
            f"{report.subject} failed lint with {len(errors)}"
            f" error(s):\n  {rendered}"
        )
