"""The static cost & cardinality lint pass (DL5xx).

A thin lint-surface wrapper around the join-order cost analysis of
:mod:`repro.datalog.cost`: profile the installed facts, propagate IDB
cardinality bounds, plan the cheapest legal body order for every rule,
and report one coded diagnostic per finding:

========  ========  ====================================================
``DL501``  warning   unbounded join — a positive stored literal is
                     probed with zero bound columns even under the best
                     legal order (cross product)
``DL502``  note      probe without usable index — the bound columns
                     carry no selectivity
``DL503``  note      cost-improving reorder available (order reported;
                     DL001–DL004 safety preserved by construction)
``DL504``  note      shared body prefix across rules — common-subplan
                     / caching opportunity
``DL505``  warning   uncovered kernel configuration (emitted by the
                     closure certifier, :mod:`repro.compile.closure`)
========  ========  ====================================================

Like the DL4xx shard pass, this is *advisory about the plan*, not about
program correctness, so it is not part of the default
:func:`repro.datalog.lint.lint_program` pass list; the CLI runs it
under ``repro lint --cost``, and the engines consume the same
:class:`~repro.datalog.cost.CostPlan` under ``cost_order=True``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.datalog.ast import Program
from repro.lint.diagnostics import Diagnostic

Builtins = Optional[Iterable[str]]


def check_cost(program: Program, builtins: Builtins = None) -> List[Diagnostic]:
    """DL5xx diagnostics for ``program``.

    Programs that fail stratification produce no DL5xx findings (DL201
    already reports the reason no plan can exist).
    """
    return cost_plan_or_none(program, builtins)[1]


def cost_plan_or_none(
    program: Program, builtins: Builtins = None
) -> Tuple[Optional[object], List[Diagnostic]]:
    """``(CostPlan, diagnostics)`` — or ``(None, [])`` when the program
    cannot be stratified (the DL201 pass owns that failure)."""
    from repro.datalog.cost import analyze_cost
    from repro.datalog.stratify import StratificationError

    try:
        plan = analyze_cost(program, builtins)
    except StratificationError:
        return None, []
    return plan, list(plan.diagnostics)
