"""Analysis service: persistent snapshots + a long-lived query server.

Every ``python -m repro query`` used to re-load facts and re-solve from
zero.  This package makes the memoized unit of reuse *durable and
servable* — the shape demand-driven CFL points-to (Sridharan et al.)
and value-context tabulation both argue for:

:mod:`repro.service.snapshot`
    A versioned on-disk format (``repro-snapshot/2``) serializing a
    solved :class:`~repro.store.TupleStore`, its interner, the input
    fact set and the analysis config, with a content digest and clear
    schema/config-mismatch errors.  Built on the store layer's
    serialization hooks (:mod:`repro.store.serialize`).

:mod:`repro.service.service`
    :class:`AnalysisService` — loads a snapshot (or solves once) and
    answers ``points_to`` / ``alias`` / ``callees`` / ``fields_of``
    queries behind an LRU result cache, falling back to the shared
    demand-driven analysis for entities outside the snapshot's
    coverage.  Thread-safe; per-query latency (p50/p95), cache
    hit-rate and warm/cold counters surface through ``stats()``.

:mod:`repro.service.server`
    ``python -m repro serve`` — a JSON-lines request/response protocol
    (``repro-serve/1``) over stdio, plus an optional stdlib TCP socket
    mode for concurrent clients.  Structured error responses (stable
    ``code`` field), bounded request lines, SIGTERM graceful drain.

The multi-tenant asyncio gateway (``repro serve --async``, protocol
``repro-serve/2``) lives one layer up in :mod:`repro.serve`.
"""

from repro.service.service import AnalysisService, QueryOutcome, ServiceStats
from repro.service.snapshot import (
    SNAPSHOT_SCHEMA,
    Snapshot,
    SnapshotError,
    describe_snapshot,
    document_byte_size,
    load_snapshot_document,
    read_snapshot,
    snapshot_from_document,
    write_snapshot,
)

__all__ = [
    "AnalysisService",
    "QueryOutcome",
    "SNAPSHOT_SCHEMA",
    "ServiceStats",
    "Snapshot",
    "SnapshotError",
    "describe_snapshot",
    "document_byte_size",
    "load_snapshot_document",
    "read_snapshot",
    "snapshot_from_document",
    "write_snapshot",
]
