"""The long-lived analysis service.

An :class:`AnalysisService` answers pointer-analysis queries for one
program repeatedly, amortizing the expensive part (solving) across the
whole session:

* **loads-or-solves once** — construct it from a snapshot
  (:meth:`AnalysisService.from_snapshot`, no solver run at all) or from
  a fact set (:meth:`AnalysisService.from_facts`, one exhaustive solve
  up front — or none, in demand-only mode);
* **LRU result cache** — repeated queries are dictionary lookups;
* **demand-driven fallback** — queries outside the snapshot's coverage
  route to one *shared* :class:`~repro.core.demand.DemandPointerAnalysis`
  whose slice grows monotonically, so even cold queries reuse work;
* **thread-safe** — one lock guards the cache, the metrics and the
  (mutable) demand engine, so the TCP server can point concurrent
  clients at a single instance;
* **live-updatable** — :meth:`AnalysisService.apply_delta` patches the
  installed result in place through the incremental engine
  (:class:`~repro.incremental.IncrementalSolver`), invalidates only the
  cache entries whose keys touch changed variables/sites/heaps, and
  bumps the service ``generation``;
* **measured** — per-query latency (p50/p95 per query kind), cache
  hit-rate and warm/cold counters, surfaced by :meth:`stats` in the
  same spirit as :class:`~repro.core.solver.SolverStats` and consumed
  by the query-latency benchmark's ``Measurement.counters``.

Query kinds (the JSON-lines protocol exposes exactly these):

``points_to(var)``
    Context-insensitive points-to set of a variable.
``alias(a, b)``
    May the two variables point to a common site?
``callees(site)``
    Methods an invocation site may dispatch to.
``fields_of(heap)``
    ``{field: pointee sites}`` for objects allocated at a site.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.config import AnalysisConfig
from repro.core.demand import DemandPointerAnalysis
from repro.core.results import AnalysisResult
from repro.core.solver import SolverStats
from repro.frontend.factgen import FactSet
from repro.service.snapshot import (
    DERIVED_RELATIONS,
    Snapshot,
    read_snapshot,
    snapshot_from_relations,
    write_snapshot,
)

#: The query operations the service (and the wire protocol) supports.
OPERATIONS = ("points_to", "alias", "callees", "fields_of")

#: Variable attribute positions per input relation, used to compute the
#: variable universe of a fact set (coverage checks, parity sweeps).
_VAR_POSITIONS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("actual", (0,)), ("assign", (0, 1)), ("assign_new", (1,)),
    ("assign_return", (1,)), ("formal", (0,)), ("load", (0, 2)),
    ("return_var", (0,)), ("store", (0, 2)), ("this_var", (0,)),
    ("static_load", (1,)), ("static_store", (0,)), ("throw_var", (0,)),
    ("catch_var", (0,)), ("virtual_invoke", (1,)),
)


def variables_of(facts: FactSet) -> FrozenSet[str]:
    """Every variable mentioned by the input relations."""
    out = set()
    for name, positions in _VAR_POSITIONS:
        for row in getattr(facts, name):
            for position in positions:
                out.add(row[position])
    return frozenset(out)


_MISS = object()
_LATENCY_CAP = 65536


class _LRUCache:
    """A bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int):
        self.capacity = max(0, int(capacity))
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        value = self._data.get(key, _MISS)
        if value is not _MISS:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        if self.capacity == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class ServiceStats:
    """Monotone service counters plus per-kind latency reservoirs."""

    def __init__(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        self.warm_queries = 0   # served from the pre-solved/snapshot result
        self.cold_queries = 0   # served by the demand-driven fallback
        self.solver_solves = 0  # exhaustive solves this service performed
        self.snapshot_loads = 0
        self.load_seconds = 0.0
        self.updates = 0            # fact deltas applied
        self.fallback_updates = 0   # of those, answered by a full solve
        self.update_seconds = 0.0
        self.entries_invalidated = 0  # cache entries dropped by updates
        self.check_runs = 0         # check() calls answered
        self.checkers_run = 0       # checkers actually executed
        self.checkers_reused = 0    # checkers served from the check cache
        self.check_seconds = 0.0
        self.queries_by_kind: Dict[str, int] = {}
        self._latencies: Dict[str, List[float]] = {}

    def record(self, kind: str, seconds: float, cached: bool,
               warm: bool) -> None:
        self.queries_by_kind[kind] = self.queries_by_kind.get(kind, 0) + 1
        if cached:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
            if warm:
                self.warm_queries += 1
            else:
                self.cold_queries += 1
        reservoir = self._latencies.setdefault(kind, [])
        if len(reservoir) < _LATENCY_CAP:
            reservoir.append(seconds)

    def percentile(self, kind: str, fraction: float) -> Optional[float]:
        """The ``fraction`` latency percentile for one kind (seconds)."""
        reservoir = self._latencies.get(kind)
        if not reservoir:
            return None
        ordered = sorted(reservoir)
        index = min(
            len(ordered) - 1,
            max(0, int(round(fraction * (len(ordered) - 1)))),
        )
        return ordered[index]

    def latency_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``{count, p50_us, p95_us}`` (microsecond ints)."""
        out: Dict[str, Dict[str, int]] = {}
        for kind, reservoir in self._latencies.items():
            out[kind] = {
                "count": self.queries_by_kind.get(kind, len(reservoir)),
                "p50_us": int(self.percentile(kind, 0.50) * 1e6),
                "p95_us": int(self.percentile(kind, 0.95) * 1e6),
            }
        return out

    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict:
        return {
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.hit_rate(),
            },
            "paths": {
                "warm": self.warm_queries,
                "cold": self.cold_queries,
            },
            "solver": {
                "solves": self.solver_solves,
                "snapshot_loads": self.snapshot_loads,
                "load_seconds": self.load_seconds,
            },
            "updates": {
                "applied": self.updates,
                "fallbacks": self.fallback_updates,
                "seconds": self.update_seconds,
                "entries_invalidated": self.entries_invalidated,
            },
            "queries": dict(self.queries_by_kind),
            "checks": {
                "runs": self.check_runs,
                "checkers_run": self.checkers_run,
                "checkers_reused": self.checkers_reused,
                "seconds": self.check_seconds,
            },
            "latency_us": self.latency_summary(),
        }


@dataclass
class QueryOutcome:
    """One answered query: the value plus how it was answered."""

    value: object
    kind: str
    cached: bool
    #: ``"cache"``, ``"snapshot"``, ``"solved"`` or ``"demand"``.
    path: str
    seconds: float


class AnalysisService:
    """Answers pointer-analysis queries against one program, forever."""

    def __init__(
        self,
        facts: FactSet,
        config: AnalysisConfig = AnalysisConfig(),
        cache_size: int = 1024,
    ):
        self.facts = facts
        self.config = config
        self.metrics = ServiceStats()
        self._lock = threading.RLock()
        self._cache = _LRUCache(cache_size)
        #: The pre-solved result (exhaustive solve or loaded snapshot).
        self._result: Optional[AnalysisResult] = None
        #: The relations behind ``_result`` (Solver or snapshot backend).
        self._backend = None
        #: ``None`` = the result covers every variable; else the set it
        #: is complete for (partial snapshots).
        self._coverage: Optional[FrozenSet[str]] = None
        self._warm_path = "solved"
        self._demand: Optional[DemandPointerAnalysis] = None
        #: The incremental engine, once the service has one (built up
        #: front with ``from_facts(incremental=True)`` or lazily by the
        #: first :meth:`apply_delta`).
        self._incremental = None
        #: Engine the cold solve ran on (``None`` until one has).
        self._solve_backend: Optional[str] = None
        #: Fact deltas applied since the initial solve/load.
        self.generation = 0
        #: Per-checker check cache: name -> (check-config key,
        #: findings tuple, metrics dict).  Entries are evicted by
        #: :meth:`apply_delta` when a delta touches one of the
        #: checker's declared input relations.
        self._check_cache: Dict[str, Tuple] = {}

    # -- constructors --------------------------------------------------

    @classmethod
    def from_facts(
        cls,
        facts: FactSet,
        config: AnalysisConfig = AnalysisConfig(),
        solve: bool = True,
        cache_size: int = 1024,
        incremental: bool = False,
        backend: str = "worklist",
    ) -> "AnalysisService":
        """A service over raw facts.

        ``solve=True`` runs the exhaustive solver once up front (every
        in-universe query is then warm); ``solve=False`` starts in
        demand-only mode — nothing is solved until the first query, and
        only its slice is.  ``incremental=True`` routes the up-front
        solve through the incremental engine (support tracking on), so
        the first :meth:`apply_delta` patches instead of re-solving.

        ``backend`` selects the cold-solve engine: ``"worklist"`` (the
        reference solver) or ``"kernel"`` (the fused columnar integer
        kernels — bit-identical results, much faster on large
        programs).  Configs the kernel compiler does not specialize
        (``eliminate_subsumed``, ``naive_transformer_index``,
        provenance tracking) fall back to the worklist solver; the
        engine actually used is reported as ``solve_backend`` in
        :meth:`stats`.  Incremental solves always use the worklist
        engine (the support index needs it).
        """
        if backend not in ("worklist", "kernel"):
            raise ValueError(
                f"unknown solve backend {backend!r}; expected"
                " 'worklist' or 'kernel'"
            )
        service = cls(facts, config, cache_size=cache_size)
        if solve and incremental:
            service._solve_incremental()
        elif solve:
            service._solve_exhaustive(backend=backend)
        return service

    @classmethod
    def from_snapshot(
        cls,
        path: str,
        expected_config: Optional[AnalysisConfig] = None,
        cache_size: int = 1024,
    ) -> "AnalysisService":
        """A service answering from a persisted snapshot — no solving.

        Raises :class:`~repro.service.snapshot.SnapshotError` on schema,
        digest or (with ``expected_config``) config mismatch.
        """
        start = time.perf_counter()
        snapshot = read_snapshot(path, expected_config)
        service = cls(snapshot.facts, snapshot.config, cache_size=cache_size)
        service._install_snapshot(snapshot, time.perf_counter() - start)
        service.generation = snapshot.generation
        return service

    @classmethod
    def from_snapshot_document(
        cls,
        document: Dict,
        expected_config: Optional[AnalysisConfig] = None,
        cache_size: int = 1024,
        path: str = "<document>",
    ) -> "AnalysisService":
        """A service from an already-loaded snapshot document.

        The in-memory twin of :meth:`from_snapshot`, for callers that
        keep parsed ``repro-snapshot/2`` documents around (the serving
        registry restores evicted tenants this way without re-reading
        or re-parsing the file).  ``path`` only labels errors.
        """
        from repro.service.snapshot import snapshot_from_document

        start = time.perf_counter()
        snapshot = snapshot_from_document(document, expected_config, path)
        service = cls(snapshot.facts, snapshot.config, cache_size=cache_size)
        service._install_snapshot(snapshot, time.perf_counter() - start)
        service.generation = snapshot.generation
        return service

    def _solve_exhaustive(self, backend: str = "worklist") -> None:
        from repro.core.analysis import PointerAnalysis

        if backend == "kernel" and self._kernel_compatible():
            with self._lock:
                self._result = AnalysisResult(
                    self.config, _kernel_solve(self.facts, self.config)
                )
                self._backend = self._result._solver
                self._coverage = None
                self._warm_path = "solved"
                self._solve_backend = "kernel"
                self.metrics.solver_solves += 1
            return
        with self._lock:
            self._result = PointerAnalysis(self.facts, self.config).run()
            self._backend = self._result._solver
            self._coverage = None
            self._warm_path = "solved"
            self._solve_backend = "worklist"
            self.metrics.solver_solves += 1

    def _kernel_compatible(self) -> bool:
        """Whether the kernel compiler can specialize this config.

        The Section 8 variants (subsumption elimination, the naive
        transformer index) and provenance tracking are worklist-only.
        """
        return not (
            self.config.eliminate_subsumed
            or self.config.naive_transformer_index
            or self.config.track_provenance
        )

    def _solve_incremental(self) -> None:
        # Imported lazily: repro.incremental pulls in the solver stack,
        # which snapshot-only users of this module never need.
        from repro.incremental import IncrementalSolver

        with self._lock:
            self._incremental = IncrementalSolver(self.facts, self.config)
            self._install_incremental()
            self._solve_backend = "worklist"
            self.metrics.solver_solves += 1

    def _install_incremental(self) -> None:
        """Point the warm path at the incremental engine's fixpoint."""
        self._backend = self._incremental.solver
        self._result = self._incremental.result()
        self._coverage = None
        self._warm_path = "solved"

    def _install_snapshot(self, snapshot: Snapshot, seconds: float) -> None:
        backend = _SnapshotBackend(snapshot, seconds)
        with self._lock:
            self._backend = backend
            self._result = AnalysisResult(snapshot.config, backend)
            self._coverage = snapshot.coverage
            self._warm_path = "snapshot"
            self.metrics.snapshot_loads += 1
            self.metrics.load_seconds += seconds

    # -- the query surface ---------------------------------------------

    def points_to(self, var: str) -> FrozenSet[str]:
        return self.query("points_to", var=var).value

    def alias(self, a: str, b: str) -> bool:
        return self.query("alias", a=a, b=b).value

    def callees(self, site: str) -> FrozenSet[str]:
        return self.query("callees", site=site).value

    def fields_of(self, heap: str) -> Dict[str, FrozenSet[str]]:
        return self.query("fields_of", heap=heap).value

    def query(self, op: str, **params) -> QueryOutcome:
        """Answer one query, going through cache → result → demand."""
        if op not in OPERATIONS:
            raise ValueError(
                f"unknown query op {op!r}; expected one of {OPERATIONS}"
            )
        key = (op,) + tuple(sorted(params.items()))
        start = time.perf_counter()
        with self._lock:
            value = self._cache.get(key)
            if value is not _MISS:
                seconds = time.perf_counter() - start
                self.metrics.record(op, seconds, cached=True, warm=True)
                return QueryOutcome(value, op, True, "cache", seconds)
            value, warm = self._compute(op, params)
            self._cache.put(key, value)
            seconds = time.perf_counter() - start
            self.metrics.record(op, seconds, cached=False, warm=warm)
            path = self._warm_path if warm else "demand"
            return QueryOutcome(value, op, False, path, seconds)

    # -- computation (lock held) ---------------------------------------

    def _covers(self, var: str) -> bool:
        return self._result is not None and (
            self._coverage is None or var in self._coverage
        )

    def _full_result(self) -> Optional[AnalysisResult]:
        """The pre-solved result if it covers the *whole* program."""
        if self._result is not None and self._coverage is None:
            return self._result
        return None

    def _demand_instance(self) -> DemandPointerAnalysis:
        if self._demand is None:
            self._demand = DemandPointerAnalysis(self.facts, self.config)
        return self._demand

    def _compute(self, op: str, params: Dict) -> Tuple[object, bool]:
        if op == "points_to":
            var = params["var"]
            if self._covers(var):
                return self._result.points_to(var), True
            return self._demand_instance().points_to(var), False
        if op == "alias":
            a, b = params["a"], params["b"]
            if self._covers(a) and self._covers(b):
                return self._result.may_alias(a, b), True
            return self._demand_instance().may_alias(a, b), False
        if op == "callees":
            site = params["site"]
            full = self._full_result()
            if full is not None:
                return frozenset(
                    method
                    for (inv, method) in full.call_graph()
                    if inv == site
                ), True
            return self._demand_instance().callees(site), False
        # fields_of
        heap = params["heap"]
        full = self._full_result()
        if full is not None:
            out: Dict[str, set] = {}
            for (base, field, pointee) in full.hpts_ci():
                if base == heap:
                    out.setdefault(field, set()).add(pointee)
            return {
                field: frozenset(sites) for field, sites in out.items()
            }, True
        return self._demand_instance().fields_of(heap), False

    # -- client checkers ------------------------------------------------

    def check(self, checks=None, check_config=None):
        """Run the client checkers; returns a
        :class:`~repro.checkers.CheckReport` stamped with the current
        ``generation``.

        The underlying result is whatever the service has — the
        exhaustive solve, a loaded snapshot, or (demand-only / partial
        coverage) the demand engine grown to the whole program — so the
        report body is identical across serving modes.  Per-checker
        findings are cached; after :meth:`apply_delta`, only checkers
        whose declared input relations the delta touched are re-run
        (the rest are served from the cache).
        """
        from repro.checkers import CheckConfig, CheckReport, get_checkers

        check_config = check_config or CheckConfig()
        with self._lock:
            start = time.perf_counter()
            checkers = get_checkers(checks)
            config_key = (
                tuple(sorted(check_config.thread_roots)),
                tuple(sorted(check_config.taint_sources)),
            )
            result = self._checkable_result()
            findings = []
            metrics = {}
            for checker in checkers:
                entry = self._check_cache.get(checker.name)
                if entry is not None and entry[0] == config_key:
                    checker_findings, checker_metrics = entry[1], entry[2]
                    self.metrics.checkers_reused += 1
                else:
                    checker_findings, checker_metrics = checker.run(
                        result, self.facts, check_config
                    )
                    checker_findings = tuple(checker_findings)
                    self._check_cache[checker.name] = (
                        config_key, checker_findings, dict(checker_metrics)
                    )
                    self.metrics.checkers_run += 1
                findings.extend(checker_findings)
                metrics[checker.name] = dict(checker_metrics)
            seconds = time.perf_counter() - start
            self.metrics.check_runs += 1
            self.metrics.check_seconds += seconds
            return CheckReport(
                config_description=self.config.describe(),
                checks=tuple(checker.name for checker in checkers),
                findings=tuple(findings),
                metrics=metrics,
                check_config=check_config,
                generation=self.generation,
                seconds=seconds,
            )

    def _checkable_result(self) -> AnalysisResult:
        """A whole-program result for the checkers (lock held).

        Full-coverage services answer from the installed result; a
        demand-only or partial-snapshot service grows the shared demand
        engine's slice to the whole program instead.
        """
        full = self._full_result()
        if full is not None:
            return full
        demand = self._demand_instance()
        demand.demand_all()
        return demand._solve()

    def _evict_check_cache(self, delta, result) -> None:
        """Drop cached checker findings a delta could have changed.

        A checker's entry survives iff the delta touched neither its
        declared input relations nor any derived relation it reads;
        fallback solves lose the change sets, so they clear everything.
        """
        if not self._check_cache:
            return
        if result.fallback:
            self._check_cache.clear()
            return
        from repro.checkers import all_checkers

        touched = set(result.changed_relations())
        for name, rows in list(delta.added.items()) + list(
            delta.removed.items()
        ):
            if rows:
                touched.add(name)
        if delta.class_of_added or delta.class_of_removed:
            touched.add("class_of")
        for checker in all_checkers():
            if touched & set(checker.inputs):
                self._check_cache.pop(checker.name, None)

    # -- live updates ---------------------------------------------------

    def apply_delta(self, delta):
        """Patch the service for one :class:`~repro.incremental.
        FactDelta`; returns the engine's ``DeltaResult``.

        The installed result is updated in place (DRed retraction +
        semi-naive additions), the demand engine is dropped (its slices
        answer for the old program), and only the cache entries whose
        keys touch a changed variable, call site or heap are evicted —
        everything else keeps serving from cache.  A service without an
        incremental engine (snapshot-loaded, plainly solved, or
        demand-only) is upgraded on its first update via one full solve
        of the patched program.  ``generation`` increments either way.
        """
        from repro.incremental import IncrementalSolver

        with self._lock:
            start = time.perf_counter()
            if self._incremental is None:
                before = None
                if self._backend is not None and self._coverage is None:
                    before = {
                        name: set(getattr(self._backend, name))
                        for name, _arity in DERIVED_RELATIONS
                    }
                delta.apply_to(self.facts)
                self._incremental = IncrementalSolver(
                    self.facts, self.config
                )
                result = self._upgrade_result(before, start)
                self.metrics.solver_solves += 1
            else:
                result = self._incremental.apply_delta(delta)
                if result.fallback:
                    self.metrics.solver_solves += 1
            self._install_incremental()
            # Demand slices were demanded against the old program.
            self._demand = None
            self._invalidate(result)
            self._evict_check_cache(delta, result)
            self.generation += 1
            self.metrics.updates += 1
            if result.fallback:
                self.metrics.fallback_updates += 1
            self.metrics.update_seconds += result.seconds
            return result

    def _upgrade_result(self, before, start: float):
        """A ``DeltaResult`` for the upgrade solve (diffed against the
        previous full-coverage rows when there were any)."""
        from repro.incremental.solver import DeltaResult

        after = self._incremental.relation_rows()
        added = {}
        removed = {}
        if before is not None:
            for kind, rows in after.items():
                gained = rows - before.get(kind, set())
                lost = before.get(kind, set()) - rows
                if gained:
                    added[kind] = gained
                if lost:
                    removed[kind] = lost
        total = sum(len(rows) for rows in after.values())
        net_added = sum(len(rows) for rows in added.values())
        return DeltaResult(
            added=added, removed=removed, rederived=0,
            deleted=sum(len(rows) for rows in removed.values()),
            reused=total - net_added,
            seconds=time.perf_counter() - start,
            fallback=True,
            reason="service had no incremental engine (first update)",
        )

    def _invalidate(self, result) -> None:
        """Evict exactly the cache entries an update could have changed.

        ``points_to``/``alias`` keys are stale iff they name a variable
        with changed ``pts`` rows, ``callees`` iff the site has changed
        ``call`` rows, ``fields_of`` iff the heap has changed ``hpts``
        rows.  Fallback solves lose the change sets, so they clear the
        whole cache.
        """
        data = self._cache._data
        if result.fallback:
            self.metrics.entries_invalidated += len(data)
            data.clear()
            return
        variables = result.changed_variables()
        sites = result.changed_sites()
        heaps = result.changed_heaps()
        if not (variables or sites or heaps):
            return
        for key in list(data):
            op = key[0]
            params = dict(key[1:])
            stale = (
                (op == "points_to" and params["var"] in variables)
                or (op == "alias" and (params["a"] in variables
                                       or params["b"] in variables))
                or (op == "callees" and params["site"] in sites)
                or (op == "fields_of" and params["heap"] in heaps)
            )
            if stale:
                del data[key]
                self.metrics.entries_invalidated += 1

    # -- persistence ----------------------------------------------------

    def save_snapshot(self, path: str) -> Snapshot:
        """Persist the current solved state as a snapshot.

        An exhaustively-solved (or full-snapshot-loaded) service writes
        full coverage; a demand-mode service writes the relations of its
        current slice with coverage pinned to the demanded variables —
        loading that snapshot serves those variables warm and falls back
        to demand for the rest.
        """
        with self._lock:
            if self._result is not None and self._coverage is None:
                relations = self._relations_of(self._backend)
                coverage = None
            elif self._result is not None:
                relations = self._relations_of(self._backend)
                coverage = self._coverage
            else:
                demand = self._demand_instance()
                result = demand._solve()
                relations = self._relations_of(result._solver)
                coverage = frozenset(demand.vars)
            snapshot = snapshot_from_relations(
                self.config, self.facts, relations, coverage,
                generation=self.generation,
            )
            write_snapshot(snapshot, path)
            return snapshot

    @staticmethod
    def _relations_of(backend) -> Dict[str, set]:
        return {
            name: getattr(backend, name) for name, _arity in DERIVED_RELATIONS
        }

    # -- statistics -----------------------------------------------------

    def coverage(self) -> Tuple[int, int]:
        """``(servable-warm variables, total variables)``."""
        universe = variables_of(self.facts)
        if self._result is None:
            covered = (
                frozenset() if self._demand is None
                else frozenset(self._demand.vars) & universe
            )
        elif self._coverage is None:
            covered = universe
        else:
            covered = self._coverage & universe
        return len(covered), len(universe)

    def stats(self) -> Dict:
        """The uniform statistics surface (also the ``stats`` wire op)."""
        with self._lock:
            covered, total = self.coverage()
            out = self.metrics.as_dict()
            out["config"] = self.config.describe()
            out["mode"] = (
                self._warm_path if self._result is not None else "demand"
            )
            out["coverage"] = {"vars": covered, "total_vars": total}
            out["generation"] = self.generation
            if self._solve_backend is not None:
                out["solve_backend"] = self._solve_backend
            if self._incremental is not None:
                out["delta"] = self._incremental.stats.as_dict()
            if self._demand is not None:
                out["demand"] = self._demand.stats()
            if self._backend is not None:
                out["relations"] = {
                    name: len(getattr(self._backend, name))
                    for name, _arity in DERIVED_RELATIONS
                }
            return out


class _SnapshotBackend:
    """Duck-types the solver surface :class:`AnalysisResult` reads.

    Exposes the derived relations as raw row sets plus a
    :class:`SolverStats` (seconds = load time; facts_derived = stored
    rows) and the store's ``describe()`` counters — so every downstream
    consumer (results projections, ``--stats`` tables, benchmarks)
    works identically on snapshot-served results.
    """

    def __init__(self, snapshot: Snapshot, seconds: float):
        self.store = snapshot.store
        self.provenance: Dict = {}
        self.stats = SolverStats()
        self.stats.seconds = seconds
        for name, arity in DERIVED_RELATIONS:
            rows = self.store.relation(name, arity).rows
            setattr(self, name, rows)
            self.stats.facts_derived += len(rows)
        self.stats.relations = self.store.describe()

    def store_stats(self) -> Dict[str, Dict[str, int]]:
        return self.store.describe()


def _kernel_solve(facts: FactSet, config: AnalysisConfig) -> "_KernelBackend":
    """Cold-solve through the fused columnar kernels.

    Compiles the configuration to plain Datalog (the Section 7
    specialization), evaluates it on the kernel engine, and wraps the
    decoded relations in a backend duck-typing the solver surface —
    bit-identical to the worklist result (tested), often much faster.
    """
    from repro.compile.emit import (
        compile_context_string_analysis,
        compile_transformer_analysis,
    )

    compiler = (
        compile_transformer_analysis
        if config.abstraction == "transformer-string"
        else compile_context_string_analysis
    )
    start = time.perf_counter()
    compiled = compiler(facts, config.flavour, config.m, config.h)
    outcome = compiled.run(backend="kernel")
    return _KernelBackend(outcome, time.perf_counter() - start)


class _KernelBackend:
    """Duck-types the solver surface for a kernel-engine solve.

    Same contract as :class:`_SnapshotBackend`: the derived relations
    as raw row sets, a :class:`SolverStats` (seconds = compile + run
    time; facts_derived = derived rows), and the kernel store's
    counters behind ``store_stats()``.
    """

    def __init__(self, outcome, seconds: float):
        self._engine = outcome.engine
        self.provenance: Dict = {}
        self.stats = SolverStats()
        self.stats.seconds = seconds
        for name, _arity in DERIVED_RELATIONS:
            rows = set(outcome.relations.get(name, ()))
            setattr(self, name, rows)
            self.stats.facts_derived += len(rows)
        self.stats.relations = self._engine.store_stats()

    def store_stats(self) -> Dict[str, Dict[str, int]]:
        return self._engine.store_stats()
