"""JSON-lines query server over stdio or a TCP socket.

Protocol ``repro-serve/1``: one JSON object per line in, one per line
out, answered in order.  Requests name an operation and its operands::

    {"id": 1, "op": "points_to", "var": "T.main/x1"}
    {"id": 2, "op": "alias", "a": "T.main/x1", "b": "T.main/x2"}
    {"id": 3, "op": "callees", "site": "i1"}
    {"id": 4, "op": "fields_of", "heap": "h1"}
    {"id": 5, "op": "stats"}
    {"id": 6, "op": "ping"}
    {"id": 7, "op": "shutdown"}
    {"id": 8, "op": "update", "delta": {"added": {...}, "removed": {...}}}
    {"id": 9, "op": "update", "source": "<program text>"}
    {"id": 10, "op": "check", "checks": ["races", "CK1"],
     "thread_roots": [], "taint_sources": []}

``check`` runs the client-checker suite (:mod:`repro.checkers`) over
the service's result — all checkers by default, or the named subset —
and returns the full ``repro-check/1`` document (findings, metrics,
content digest, service generation).  Re-checks after ``update`` only
re-run the checkers whose declared input relations the delta touched.

``update`` patches the running service in place through the
incremental engine: pass either a :class:`~repro.incremental.FactDelta`
JSON object (``FactDelta.to_json`` format) or the *full new program
text* (the server diffs it against the current facts).  The response
reports the net derived-row changes, whether the engine fell back to a
from-scratch solve, and the service generation after the update::

    {"id": 8, "ok": true,
     "result": {"changed": {"pts": {"added": 2, "removed": 1}},
                "fallback": false, "reason": null, "generation": 3,
                "cache_invalidated": 2, "micros": 214}}

Responses echo ``id`` and carry either a result with per-query serving
metadata or an error::

    {"id": 1, "ok": true, "result": ["h1"],
     "meta": {"path": "snapshot", "cached": false, "micros": 142}}
    {"id": 9, "ok": false, "error": "unknown op 'pointsto'"}

Sets serialize as sorted lists; ``fields_of`` as ``{field: [sites]}``.
``stats`` returns :meth:`AnalysisService.stats` (cache hit-rate,
warm/cold counters, p50/p95 latency per kind).  A malformed line yields
an ``ok: false`` response with ``id: null`` — the server never dies on
bad input.  ``shutdown`` acknowledges, then ends the session (stdio) or
closes the connection (TCP).

The TCP mode (`python -m repro serve --tcp HOST:PORT`) uses the stdlib
:class:`socketserver.ThreadingTCPServer`; concurrent connections share
the one thread-safe :class:`AnalysisService`.
"""

from __future__ import annotations

import json
import socketserver
import sys
from typing import Dict, IO, Optional, Tuple

from repro.service.service import OPERATIONS, AnalysisService

PROTOCOL = "repro-serve/1"

#: op -> required request fields (beyond "op").
_REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "points_to": ("var",),
    "alias": ("a", "b"),
    "callees": ("site",),
    "fields_of": ("heap",),
    "stats": (),
    "ping": (),
    "shutdown": (),
    # "update" takes *either* a "delta" object or a "source" program —
    # the alternative is validated in _handle_update, not here.
    "update": (),
    # "check" fields are all optional: "checks" (names/codes),
    # "thread_roots", "taint_sources".
    "check": (),
}


def _jsonable(value):
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in sorted(value.items())}
    return value


def handle_request(service: AnalysisService, request: Dict) -> Dict:
    """Answer one decoded request object (everything except transport)."""
    request_id = request.get("id") if isinstance(request, dict) else None
    if not isinstance(request, dict) or "op" not in request:
        return {
            "id": request_id, "ok": False,
            "error": "request must be an object with an 'op' field",
        }
    op = request["op"]
    required = _REQUIRED_FIELDS.get(op)
    if required is None:
        return {
            "id": request_id, "ok": False,
            "error": f"unknown op {op!r}; expected one of"
            f" {sorted(_REQUIRED_FIELDS)}",
        }
    missing = [field for field in required if field not in request]
    if missing:
        return {
            "id": request_id, "ok": False,
            "error": f"op {op!r} requires field(s) {missing}",
        }
    if op == "ping":
        return {"id": request_id, "ok": True, "result": PROTOCOL}
    if op == "shutdown":
        return {"id": request_id, "ok": True, "result": "bye"}
    if op == "stats":
        return {"id": request_id, "ok": True, "result": service.stats()}
    if op == "update":
        return _handle_update(service, request, request_id)
    if op == "check":
        return _handle_check(service, request, request_id)
    try:
        outcome = service.query(
            op, **{field: request[field] for field in required}
        )
    except Exception as error:  # a query must never kill the session
        return {"id": request_id, "ok": False, "error": str(error)}
    return {
        "id": request_id,
        "ok": True,
        "result": _jsonable(outcome.value),
        "meta": {
            "path": outcome.path,
            "cached": outcome.cached,
            "micros": int(outcome.seconds * 1e6),
        },
    }


def _handle_update(
    service: AnalysisService, request: Dict, request_id
) -> Dict:
    """Apply one live update: an explicit delta or a full new source."""
    from repro.incremental import FactDelta, diff_facts

    try:
        if "delta" in request:
            delta = FactDelta.from_json(request["delta"])
        elif "source" in request:
            from repro.core.analysis import _to_facts

            delta = diff_facts(service.facts, _to_facts(request["source"]))
        else:
            return {
                "id": request_id, "ok": False,
                "error": "op 'update' requires a 'delta' object or"
                " a 'source' program",
            }
        invalidated_before = service.metrics.entries_invalidated
        outcome = service.apply_delta(delta)
    except Exception as error:  # an update must never kill the session
        return {"id": request_id, "ok": False, "error": str(error)}
    return {
        "id": request_id,
        "ok": True,
        "result": {
            "changed": {
                kind: {
                    "added": len(outcome.added.get(kind, ())),
                    "removed": len(outcome.removed.get(kind, ())),
                }
                for kind in outcome.changed_relations()
            },
            "fallback": outcome.fallback,
            "reason": outcome.reason,
            "generation": service.generation,
            "cache_invalidated": (
                service.metrics.entries_invalidated - invalidated_before
            ),
            "micros": int(outcome.seconds * 1e6),
        },
    }


def _handle_check(
    service: AnalysisService, request: Dict, request_id
) -> Dict:
    """Run the client checkers; the result is the full
    ``repro-check/1`` document (see :mod:`repro.checkers`)."""
    from repro.checkers import CheckConfig

    try:
        config = CheckConfig(
            thread_roots=tuple(request.get("thread_roots", ())),
            taint_sources=tuple(request.get("taint_sources", ())),
        )
        report = service.check(
            checks=request.get("checks"), check_config=config
        )
    except Exception as error:  # a check must never kill the session
        return {"id": request_id, "ok": False, "error": str(error)}
    return {"id": request_id, "ok": True, "result": report.to_json()}


def handle_line(service: AnalysisService, line: str) -> Optional[Dict]:
    """Decode and answer one wire line; ``None`` for blank lines."""
    if not line.strip():
        return None
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        return {"id": None, "ok": False, "error": f"bad JSON: {error}"}
    return handle_request(service, request)


def serve_stdio(
    service: AnalysisService,
    in_stream: Optional[IO[str]] = None,
    out_stream: Optional[IO[str]] = None,
) -> int:
    """Serve JSON-lines until EOF or a ``shutdown`` op; returns the
    number of requests answered."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    answered = 0
    for line in in_stream:
        response = handle_line(service, line)
        if response is None:
            continue
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
        answered += 1
        if response.get("ok") and response.get("result") == "bye":
            break
    return answered


class ServiceTCPServer(socketserver.ThreadingTCPServer):
    """A threading TCP server bound to one shared analysis service."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: AnalysisService):
        self.service = service
        super().__init__(address, _ServiceHandler)


class _ServiceHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            response = handle_line(
                self.server.service, raw.decode("utf-8", "replace")
            )
            if response is None:
                continue
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if response.get("ok") and response.get("result") == "bye":
                break


def serve_tcp(service: AnalysisService, host: str, port: int) -> None:
    """Serve forever on ``host:port`` (Ctrl-C to stop)."""
    with ServiceTCPServer((host, port), service) as server:
        bound_host, bound_port = server.server_address[:2]
        print(
            f"repro serve: listening on {bound_host}:{bound_port}"
            f" ({PROTOCOL})",
            file=sys.stderr,
        )
        server.serve_forever()
