"""JSON-lines query server over stdio or a TCP socket.

Protocol ``repro-serve/1``: one JSON object per line in, one per line
out, answered in order.  Requests name an operation and its operands::

    {"id": 1, "op": "points_to", "var": "T.main/x1"}
    {"id": 2, "op": "alias", "a": "T.main/x1", "b": "T.main/x2"}
    {"id": 3, "op": "callees", "site": "i1"}
    {"id": 4, "op": "fields_of", "heap": "h1"}
    {"id": 5, "op": "stats"}
    {"id": 6, "op": "ping"}
    {"id": 7, "op": "shutdown"}
    {"id": 8, "op": "update", "delta": {"added": {...}, "removed": {...}}}
    {"id": 9, "op": "update", "source": "<program text>"}
    {"id": 10, "op": "check", "checks": ["races", "CK1"],
     "thread_roots": [], "taint_sources": []}

``check`` runs the client-checker suite (:mod:`repro.checkers`) over
the service's result — all checkers by default, or the named subset —
and returns the full ``repro-check/1`` document (findings, metrics,
content digest, service generation).  Re-checks after ``update`` only
re-run the checkers whose declared input relations the delta touched.

``update`` patches the running service in place through the
incremental engine: pass either a :class:`~repro.incremental.FactDelta`
JSON object (``FactDelta.to_json`` format) or the *full new program
text* (the server diffs it against the current facts).  The response
reports the net derived-row changes, whether the engine fell back to a
from-scratch solve, and the service generation after the update::

    {"id": 8, "ok": true,
     "result": {"changed": {"pts": {"added": 2, "removed": 1}},
                "fallback": false, "reason": null, "generation": 3,
                "cache_invalidated": 2, "micros": 214}}

Responses echo ``id`` and carry either a result with per-query serving
metadata or an error::

    {"id": 1, "ok": true, "result": ["h1"],
     "meta": {"path": "snapshot", "cached": false, "micros": 142}}
    {"id": 9, "ok": false, "code": "unknown-op",
     "error": "unknown op 'pointsto'"}

Sets serialize as sorted lists; ``fields_of`` as ``{field: [sites]}``.
``stats`` returns :meth:`AnalysisService.stats` (cache hit-rate,
warm/cold counters, p50/p95 latency per kind).  A malformed or
oversized line yields an ``ok: false`` response carrying a stable
``code`` (``bad-json`` / ``oversized`` / ``unknown-op`` / …, see
:data:`ERROR_CODES`) with ``id: null`` — the server never dies on bad
input and never silently drops a connection.  Request lines are
bounded by ``max_line_bytes`` (default 1 MiB); an over-long line is
consumed and answered with an ``oversized`` error instead of being
buffered without limit.  ``shutdown`` acknowledges, then ends the
session (stdio) or closes the connection (TCP).

The TCP mode (`python -m repro serve --tcp HOST:PORT`) uses the stdlib
:class:`socketserver.ThreadingTCPServer`; concurrent connections share
the one thread-safe :class:`AnalysisService`.  ``SIGTERM`` drains
gracefully: the listener stops accepting, every connection finishes its
in-flight request, and :func:`serve_tcp` returns.
"""

from __future__ import annotations

import json
import signal
import socketserver
import sys
import threading
import time
from typing import Callable, Dict, IO, Optional, Tuple

from repro.service.service import OPERATIONS, AnalysisService

PROTOCOL = "repro-serve/1"

#: Ceiling on one request line (bytes on the TCP wire, characters on
#: stdio).  Longer lines are answered with an ``oversized`` error.
MAX_LINE_BYTES = 1 << 20

#: Stable machine-readable error codes carried by ``ok: false``
#: responses.  The async gateway's ``repro-serve/2`` protocol reuses
#: these and adds its own admission-control codes (``overload``,
#: ``timeout``, ``draining``, ``unknown-tenant``).
ERROR_CODES = (
    "bad-json",       # the line is not valid JSON
    "bad-request",    # not an object, or no "op" field
    "unknown-op",     # "op" names no known operation
    "missing-field",  # a required operand is absent
    "oversized",      # the request line exceeds max_line_bytes
    "op-failed",      # the operation itself raised
)


def error_response(request_id, code: str, message: str) -> Dict:
    """One structured ``ok: false`` response (flat, protocol-stable)."""
    return {"id": request_id, "ok": False, "code": code, "error": message}

#: op -> required request fields (beyond "op").
_REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "points_to": ("var",),
    "alias": ("a", "b"),
    "callees": ("site",),
    "fields_of": ("heap",),
    "stats": (),
    "ping": (),
    "shutdown": (),
    # "update" takes *either* a "delta" object or a "source" program —
    # the alternative is validated in _handle_update, not here.
    "update": (),
    # "check" fields are all optional: "checks" (names/codes),
    # "thread_roots", "taint_sources".
    "check": (),
}


def _jsonable(value):
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in sorted(value.items())}
    return value


def handle_request(service: AnalysisService, request: Dict) -> Dict:
    """Answer one decoded request object (everything except transport)."""
    request_id = request.get("id") if isinstance(request, dict) else None
    if not isinstance(request, dict) or "op" not in request:
        return error_response(
            request_id, "bad-request",
            "request must be an object with an 'op' field",
        )
    op = request["op"]
    required = _REQUIRED_FIELDS.get(op)
    if required is None:
        return error_response(
            request_id, "unknown-op",
            f"unknown op {op!r}; expected one of {sorted(_REQUIRED_FIELDS)}",
        )
    missing = [field for field in required if field not in request]
    if missing:
        return error_response(
            request_id, "missing-field",
            f"op {op!r} requires field(s) {missing}",
        )
    if op == "ping":
        return {"id": request_id, "ok": True, "result": PROTOCOL}
    if op == "shutdown":
        return {"id": request_id, "ok": True, "result": "bye"}
    if op == "stats":
        return {"id": request_id, "ok": True, "result": service.stats()}
    if op == "update":
        return _handle_update(service, request, request_id)
    if op == "check":
        return _handle_check(service, request, request_id)
    try:
        outcome = service.query(
            op, **{field: request[field] for field in required}
        )
    except Exception as error:  # a query must never kill the session
        return error_response(request_id, "op-failed", str(error))
    return {
        "id": request_id,
        "ok": True,
        "result": _jsonable(outcome.value),
        "meta": {
            "path": outcome.path,
            "cached": outcome.cached,
            "micros": int(outcome.seconds * 1e6),
        },
    }


def _handle_update(
    service: AnalysisService, request: Dict, request_id
) -> Dict:
    """Apply one live update: an explicit delta or a full new source."""
    from repro.incremental import FactDelta, diff_facts

    try:
        if "delta" in request:
            delta = FactDelta.from_json(request["delta"])
        elif "source" in request:
            from repro.core.analysis import _to_facts

            delta = diff_facts(service.facts, _to_facts(request["source"]))
        else:
            return error_response(
                request_id, "missing-field",
                "op 'update' requires a 'delta' object or a 'source'"
                " program",
            )
        invalidated_before = service.metrics.entries_invalidated
        outcome = service.apply_delta(delta)
    except Exception as error:  # an update must never kill the session
        return error_response(request_id, "op-failed", str(error))
    return {
        "id": request_id,
        "ok": True,
        "result": {
            "changed": {
                kind: {
                    "added": len(outcome.added.get(kind, ())),
                    "removed": len(outcome.removed.get(kind, ())),
                }
                for kind in outcome.changed_relations()
            },
            "fallback": outcome.fallback,
            "reason": outcome.reason,
            "generation": service.generation,
            "cache_invalidated": (
                service.metrics.entries_invalidated - invalidated_before
            ),
            "micros": int(outcome.seconds * 1e6),
        },
    }


def _handle_check(
    service: AnalysisService, request: Dict, request_id
) -> Dict:
    """Run the client checkers; the result is the full
    ``repro-check/1`` document (see :mod:`repro.checkers`)."""
    from repro.checkers import CheckConfig

    try:
        config = CheckConfig(
            thread_roots=tuple(request.get("thread_roots", ())),
            taint_sources=tuple(request.get("taint_sources", ())),
        )
        report = service.check(
            checks=request.get("checks"), check_config=config
        )
    except Exception as error:  # a check must never kill the session
        return error_response(request_id, "op-failed", str(error))
    return {"id": request_id, "ok": True, "result": report.to_json()}


def handle_line(
    service: AnalysisService,
    line: str,
    max_line_bytes: int = MAX_LINE_BYTES,
) -> Optional[Dict]:
    """Decode and answer one wire line; ``None`` for blank lines."""
    if len(line) > max_line_bytes:
        return error_response(
            None, "oversized",
            f"request line of {len(line)} bytes exceeds the"
            f" {max_line_bytes}-byte limit",
        )
    if not line.strip():
        return None
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        return error_response(None, "bad-json", f"bad JSON: {error}")
    return handle_request(service, request)


def serve_stdio(
    service: AnalysisService,
    in_stream: Optional[IO[str]] = None,
    out_stream: Optional[IO[str]] = None,
    max_line_bytes: int = MAX_LINE_BYTES,
) -> int:
    """Serve JSON-lines until EOF or a ``shutdown`` op; returns the
    number of requests answered."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    answered = 0
    for line in in_stream:
        response = handle_line(service, line, max_line_bytes)
        if response is None:
            continue
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
        answered += 1
        if response.get("ok") and response.get("result") == "bye":
            break
    return answered


class ServiceTCPServer(socketserver.ThreadingTCPServer):
    """A threading TCP server bound to one shared analysis service.

    ``draining`` is the graceful-shutdown flag: once set (by SIGTERM or
    programmatically), every connection finishes the request it is on,
    answers it, and closes instead of reading further.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: AnalysisService,
        max_line_bytes: int = MAX_LINE_BYTES,
    ):
        self.service = service
        self.max_line_bytes = max_line_bytes
        self.draining = threading.Event()
        self.active_connections = 0
        self._active_lock = threading.Lock()
        super().__init__(address, _ServiceHandler)

    def handle_error(self, request, client_address) -> None:
        """A client hanging up mid-request is routine, not a stack trace."""
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return
        super().handle_error(request, client_address)


class _ServiceHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        with self.server._active_lock:
            self.server.active_connections += 1
        try:
            self._session()
        finally:
            with self.server._active_lock:
                self.server.active_connections -= 1

    def _session(self) -> None:
        limit = self.server.max_line_bytes
        while not self.server.draining.is_set():
            raw = self.rfile.readline(limit + 1)
            if not raw:
                break
            if len(raw) > limit:
                self._discard_rest_of_line(raw)
                response = error_response(
                    None, "oversized",
                    f"request line exceeds the {limit}-byte limit",
                )
            else:
                response = handle_line(
                    self.server.service,
                    raw.decode("utf-8", "replace"),
                    limit,
                )
            if response is None:
                continue
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if response.get("ok") and response.get("result") == "bye":
                break

    def _discard_rest_of_line(self, raw: bytes) -> None:
        """Consume up to the terminating newline of an over-long line."""
        limit = self.server.max_line_bytes
        while raw and not raw.endswith(b"\n"):
            raw = self.rfile.readline(limit + 1)


def install_sigterm_drain(
    server: ServiceTCPServer,
) -> Callable[[], None]:
    """Arrange for SIGTERM to drain ``server`` gracefully.

    Returns a restorer putting the previous handler back.  A no-op off
    the main thread (the stdlib only delivers signals there).
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    previous = signal.getsignal(signal.SIGTERM)

    def _drain(_signum, _frame) -> None:
        server.draining.set()
        print(
            "repro serve: SIGTERM — draining connections and shutting"
            " down",
            file=sys.stderr,
        )
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    return lambda: signal.signal(signal.SIGTERM, previous)


def serve_tcp(
    service: AnalysisService,
    host: str,
    port: int,
    max_line_bytes: int = MAX_LINE_BYTES,
    drain_seconds: float = 5.0,
) -> None:
    """Serve on ``host:port`` until Ctrl-C or SIGTERM.

    SIGTERM stops the accept loop, lets every live connection answer
    its in-flight request (waiting up to ``drain_seconds``), and
    returns — a supervisor rolling the fleet never sees a dropped
    response.
    """
    with ServiceTCPServer(
        (host, port), service, max_line_bytes=max_line_bytes
    ) as server:
        bound_host, bound_port = server.server_address[:2]
        print(
            f"repro serve: listening on {bound_host}:{bound_port}"
            f" ({PROTOCOL})",
            file=sys.stderr,
        )
        restore = install_sigterm_drain(server)
        try:
            server.serve_forever()
        finally:
            restore()
        if server.draining.is_set():
            deadline = time.monotonic() + drain_seconds
            while (
                server.active_connections and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            print(
                f"repro serve: drained"
                f" ({server.active_connections} connection(s) still"
                " open at exit)",
                file=sys.stderr,
            )
