"""The ``repro-snapshot/2`` persistent result format.

A snapshot is one JSON document holding everything a fresh process
needs to answer queries without re-solving:

* the **analysis config** (abstraction, flavour, m, h, switches);
* the **input fact set** (so out-of-coverage queries can fall back to
  the demand-driven analysis, and so ``coverage`` is meaningful);
* the **solved derived relations** (``pts``, ``hpts``, ``hload``,
  ``call``, ``reach``, ``spts``, ``texc``) with every attribute routed
  through one dense :class:`~repro.store.Interner` — entity names and
  transformer strings are stored once however many rows share them;
* the **coverage**: either full (an exhaustive solve) or the set of
  variables a demand-mode service had demanded when it saved;
* the **generation**: how many fact deltas the saving service had
  applied since its initial solve (``0`` for a fresh solve; lets a
  consumer tell two snapshots of the same evolving program apart);
* a **content digest** (SHA-256 over the canonical body) verified on
  load.

Layout::

    {"schema": "repro-snapshot/2", "digest": "<sha256 of body>",
     "body": {"config": {...}, "interner": [...],
              "facts": {...}, "relations": {...},
              "coverage": null | [var ids], "generation": 0,
              "counts": {...}}}

``repro-snapshot/1`` documents (no ``generation`` field) still load —
they read back as generation ``0``.

Integrity failures, schema mismatches and config mismatches all raise
:class:`SnapshotError` with a message naming the offending field —
a snapshot must never silently answer for the wrong analysis.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.config import AnalysisConfig
from repro.core.contexts import ERR, _ErrContext
from repro.core.sensitivity import Flavour
from repro.core.transformer_strings import TransformerString
from repro.frontend.factgen import FactSet
from repro.store import (
    Interner,
    SerializationError,
    TupleStore,
    canonical_bytes,
    interner_from_payload,
    interner_to_payload,
    register_value_codec,
    relation_from_payload,
    relation_to_payload,
)

SNAPSHOT_SCHEMA = "repro-snapshot/2"

#: Schemas this build can read.  ``/2`` added the additive
#: ``generation`` field; ``/1`` documents default it to zero.
COMPATIBLE_SCHEMAS = ("repro-snapshot/1", "repro-snapshot/2")

#: The derived relations of one solver run, with their arities.
DERIVED_RELATIONS: Tuple[Tuple[str, int], ...] = (
    ("pts", 3), ("hpts", 4), ("hload", 4), ("call", 3),
    ("reach", 2), ("spts", 3), ("texc", 3),
)

#: Config fields persisted and compared on load.
_CONFIG_FIELDS = (
    "abstraction", "flavour", "m", "h",
    "eliminate_subsumed", "naive_transformer_index",
)


class SnapshotError(ValueError):
    """A snapshot that cannot be trusted: bad schema, digest or config."""


# Domain codecs for the store-level value serializer.  Registration is
# idempotent, so importing this module twice is harmless.
register_value_codec(
    "ts",
    TransformerString,
    lambda t: [list(t.pops), 1 if t.wildcard else 0, list(t.pushes)],
    lambda p: TransformerString(tuple(p[0]), bool(p[1]), tuple(p[2])),
)
register_value_codec("err", _ErrContext, lambda _e: [], lambda _p: ERR)


@dataclass
class Snapshot:
    """An in-memory snapshot: config + facts + solved store + coverage.

    ``coverage`` is ``None`` for a full (exhaustive) solve, else the
    frozen set of variables whose answers the stored relations are
    complete for.
    """

    config: AnalysisConfig
    facts: FactSet
    store: TupleStore
    coverage: Optional[FrozenSet[str]] = None
    #: Fact-delta updates applied since the initial solve (0 = fresh).
    generation: int = 0

    def covers(self, var: str) -> bool:
        """True iff the stored relations fully answer for ``var``."""
        return self.coverage is None or var in self.coverage

    def relation_counts(self) -> Dict[str, int]:
        return {
            name: len(self.store.relation(name, arity))
            for name, arity in DERIVED_RELATIONS
        }


def snapshot_from_relations(
    config: AnalysisConfig,
    facts: FactSet,
    relations: Dict[str, Iterable[Tuple]],
    coverage: Optional[Iterable[str]] = None,
    generation: int = 0,
) -> Snapshot:
    """Build a snapshot from raw derived row sets (solver attributes)."""
    store = TupleStore()
    for name, arity in DERIVED_RELATIONS:
        relation = store.relation(name, arity, track_delta=False)
        for row in relations.get(name, ()):
            relation.load(row)
    return Snapshot(
        config=config,
        facts=facts,
        store=store,
        coverage=None if coverage is None else frozenset(coverage),
        generation=generation,
    )


# -- config ------------------------------------------------------------------


def _config_to_payload(config: AnalysisConfig) -> Dict:
    return {
        "abstraction": config.abstraction,
        "flavour": config.flavour.value,
        "m": config.m,
        "h": config.h,
        "eliminate_subsumed": config.eliminate_subsumed,
        "naive_transformer_index": config.naive_transformer_index,
    }


def _config_from_payload(payload: Dict) -> AnalysisConfig:
    try:
        return AnalysisConfig(
            abstraction=payload["abstraction"],
            flavour=Flavour(payload["flavour"]),
            m=payload["m"],
            h=payload["h"],
            eliminate_subsumed=payload.get("eliminate_subsumed", False),
            naive_transformer_index=payload.get(
                "naive_transformer_index", False
            ),
        )
    except (KeyError, ValueError) as error:
        raise SnapshotError(f"snapshot config is invalid: {error}") from error


def check_config(expected: AnalysisConfig, loaded: AnalysisConfig) -> None:
    """Raise :class:`SnapshotError` naming every differing config field."""
    expected_payload = _config_to_payload(expected)
    loaded_payload = _config_to_payload(loaded)
    mismatches = [
        f"{field}: snapshot has {loaded_payload[field]!r},"
        f" requested {expected_payload[field]!r}"
        for field in _CONFIG_FIELDS
        if expected_payload[field] != loaded_payload[field]
    ]
    if mismatches:
        raise SnapshotError(
            "snapshot config mismatch — " + "; ".join(mismatches)
        )


# -- facts -------------------------------------------------------------------


def _facts_to_payload(facts: FactSet, interner: Interner) -> Dict:
    out: Dict = {}
    for name in facts.relation_names():
        out[name] = sorted(
            [interner.intern(value) for value in row]
            for row in getattr(facts, name)
        )
    out["class_of"] = sorted(
        [interner.intern(k), interner.intern(v)]
        for k, v in facts.class_of.items()
    )
    out["invocation_parent"] = sorted(
        [interner.intern(k), interner.intern(v)]
        for k, v in facts.invocation_parent.items()
    )
    out["main_method"] = facts.main_method
    return out


def _facts_from_payload(payload: Dict, interner: Interner) -> FactSet:
    facts = FactSet()
    for name in facts.relation_names():
        setattr(facts, name, {
            tuple(interner.value_of(symbol) for symbol in row)
            for row in payload[name]
        })
    facts.class_of = {
        interner.value_of(k): interner.value_of(v)
        for k, v in payload["class_of"]
    }
    facts.invocation_parent = {
        interner.value_of(k): interner.value_of(v)
        for k, v in payload["invocation_parent"]
    }
    facts.main_method = payload["main_method"]
    return facts


# -- write / read ------------------------------------------------------------


def _digest(body: Dict) -> str:
    return hashlib.sha256(canonical_bytes(body)).hexdigest()


def document_byte_size(document: Dict) -> int:
    """The canonical serialized size of a snapshot document's body.

    This is what the serving registry charges against its byte budget:
    the same bytes the digest covers, independent of on-disk formatting.
    """
    return len(canonical_bytes(document.get("body", document)))


def snapshot_to_document(snapshot: Snapshot) -> Dict:
    """The full JSON document (schema header + digested body)."""
    interner = Interner()
    relations = {
        name: relation_to_payload(
            snapshot.store.relation(name, arity), interner
        )
        for name, arity in DERIVED_RELATIONS
    }
    facts = _facts_to_payload(snapshot.facts, interner)
    coverage = (
        None
        if snapshot.coverage is None
        else sorted(interner.intern(var) for var in snapshot.coverage)
    )
    body = {
        "config": _config_to_payload(snapshot.config),
        # Interner last: interning above populated it densely.
        "interner": interner_to_payload(interner),
        "facts": facts,
        "relations": relations,
        "coverage": coverage,
        "generation": snapshot.generation,
        "counts": snapshot.relation_counts(),
    }
    return {
        "schema": SNAPSHOT_SCHEMA,
        "digest": _digest(body),
        "body": body,
    }


def write_snapshot(snapshot: Snapshot, path: str) -> None:
    """Serialize ``snapshot`` to ``path`` (atomic enough: single write)."""
    document = snapshot_to_document(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")


def _load_document(path: str) -> Dict:
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    if not isinstance(document, dict) or "schema" not in document:
        raise SnapshotError(
            f"{path} is not a repro snapshot (no schema header)"
        )
    if document["schema"] not in COMPATIBLE_SCHEMAS:
        raise SnapshotError(
            f"unsupported snapshot schema {document['schema']!r} in {path}"
            f" (this build reads {', '.join(map(repr, COMPATIBLE_SCHEMAS))})"
        )
    body = document.get("body")
    if not isinstance(body, dict):
        raise SnapshotError(f"snapshot {path} has no body")
    recomputed = _digest(body)
    if recomputed != document.get("digest"):
        raise SnapshotError(
            f"snapshot {path} failed its integrity check: stored digest"
            f" {document.get('digest')!r} != recomputed {recomputed!r}"
            " (file truncated or edited?)"
        )
    return document


def load_snapshot_document(path: str) -> Dict:
    """Read and integrity-check a snapshot file, without restoring it.

    Returns the full verified document (schema header, digest, body).
    The serving registry uses this to learn a snapshot's digest, config
    and byte size up front, deferring the expensive restore
    (:func:`snapshot_from_document`) until the tenant is actually hit.
    """
    return _load_document(path)


def snapshot_from_document(
    document: Dict,
    expected_config: Optional[AnalysisConfig] = None,
    path: str = "<document>",
) -> Snapshot:
    """Restore a :class:`Snapshot` from an already-verified document."""
    return _restore(document["body"], expected_config, path)


def read_snapshot(
    path: str, expected_config: Optional[AnalysisConfig] = None
) -> Snapshot:
    """Load and verify a snapshot; optionally pin the expected config.

    Raises :class:`SnapshotError` on schema mismatch, digest mismatch,
    malformed payloads, or (when ``expected_config`` is given) a config
    that differs from the one the snapshot was solved under.
    """
    return _restore(_load_document(path)["body"], expected_config, path)


def _restore(
    body: Dict, expected_config: Optional[AnalysisConfig], path: str
) -> Snapshot:
    config = _config_from_payload(body["config"])
    if expected_config is not None:
        check_config(expected_config, config)
    try:
        interner = interner_from_payload(body["interner"])
        facts = _facts_from_payload(body["facts"], interner)
        store = TupleStore()
        for name, arity in DERIVED_RELATIONS:
            payload = body["relations"][name]
            if payload["arity"] != arity:
                raise SnapshotError(
                    f"snapshot relation {name!r} has arity"
                    f" {payload['arity']}, expected {arity}"
                )
            # Rebuild through the store hook, then adopt the relation
            # into the store under its name (relations() is the live
            # registry view).
            store.relations()[name] = relation_from_payload(
                payload, interner, counters=store.counters(name),
                track_delta=False,
            )
        coverage = body.get("coverage")
        if coverage is not None:
            coverage = frozenset(
                interner.value_of(symbol) for symbol in coverage
            )
        generation = int(body.get("generation", 0))
    except (KeyError, IndexError, SerializationError) as error:
        raise SnapshotError(
            f"snapshot {path} is malformed: {error}"
        ) from error
    return Snapshot(
        config=config, facts=facts, store=store, coverage=coverage,
        generation=generation,
    )


def describe_snapshot(path: str) -> Dict:
    """The self-check report for ``repro lint`` on a snapshot file.

    Verifies schema and digest (raising :class:`SnapshotError` on
    failure) and reports schema version, config, per-relation row
    counts, interner size, coverage mode and the digest.
    """
    document = _load_document(path)
    body = document["body"]
    config = _config_from_payload(body["config"])
    counts = {
        name: len(body["relations"][name]["rows"])
        for name, _arity in DERIVED_RELATIONS
        if name in body.get("relations", {})
    }
    declared = body.get("counts", {})
    if declared and declared != counts:
        raise SnapshotError(
            f"snapshot {path} declares counts {declared} but stores {counts}"
        )
    coverage = body.get("coverage")
    return {
        "schema": document["schema"],
        "digest": document["digest"],
        "config": config.describe(),
        "relations": counts,
        "interner_values": len(body["interner"]),
        "coverage": "full" if coverage is None else len(coverage),
        "generation": int(body.get("generation", 0)),
        "input_facts": sum(
            len(body["facts"][name]) for name in FactSet().relation_names()
        ),
    }
