"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so that the
package can be installed in environments without the ``wheel`` package
(``python setup.py develop`` / ``pip install -e . --no-build-isolation``
on older toolchains).
"""

from setuptools import setup

setup()
